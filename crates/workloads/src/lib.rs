//! # ia-workloads — synthetic data-intensive workload generators
//!
//! The paper's premise is that "important workloads … are all data
//! intensive". This crate supplies controlled synthetic equivalents of the
//! workload classes the paper names, so every experiment is reproducible
//! without proprietary traces:
//!
//! * trace generators ([`StreamGen`], [`RandomGen`], [`PointerChaseGen`],
//!   [`ZipfGen`], mixes) — stream, random, pointer-chase, Zipf, and
//!   multi-programmed mixes, with explicit locality/parallelism knobs.
//! * [`Graph`] — CSR graphs with uniform and R-MAT power-law generators,
//!   plus reference PageRank/BFS for validating the near-memory engine.
//! * [`genome`] — synthetic references and reads, seed indexing, banded
//!   edit distance, and the GRIM-Filter bin bitvectors.
//! * [`mobile`] — consumer-device workload phase models for the
//!   data-movement energy accounting experiment.
//!
//! ## Example
//!
//! ```
//! use ia_workloads::{StreamGen, TraceGenerator};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
//! let mut stream = StreamGen::new(0, 64, 1 << 20, 0.25)?;
//! let trace = stream.generate(1000, &mut rng);
//! assert_eq!(trace.len(), 1000);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
pub mod genome;
mod graph;
pub mod mobile;
mod trace;

pub use error::WorkloadError;
pub use genome::{
    edit_distance_banded, pack_kmer, random_genome, sample_reads, Base, GrimIndex, Read, SeedIndex,
};
pub use graph::Graph;
pub use mobile::{
    energy_breakdown, energy_with_pim, EnergyBreakdown, MobileWorkload, SystemEnergyModel,
};
pub use trace::{
    boxed, record_trace, trace_from_records, BoxedGenerator, HeterogeneousMix, MixGen, Op,
    PointerChaseGen, RandomGen, StreamGen, TraceGenerator, TraceRequest, ZipfGen,
};
