//! Memory-trace generators with controllable locality and parallelism.
//!
//! Scheduler, cache, and PIM results all hinge on three stream properties:
//! row-buffer locality, bank-level parallelism, and read/write mix. Each
//! generator here controls those knobs explicitly, which is what lets the
//! experiment harness reconstruct the workload classes of the cited papers
//! without their proprietary traces.

use rand::Rng;

use crate::WorkloadError;

/// Direction of a trace request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    /// A load.
    Read,
    /// A store.
    Write,
}

/// One request of a memory trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceRequest {
    /// Byte address.
    pub addr: u64,
    /// Load or store.
    pub op: Op,
    /// Originating thread (for multi-programmed interference studies).
    pub thread: usize,
}

impl TraceRequest {
    /// Creates a read request for thread 0.
    #[must_use]
    pub fn read(addr: u64) -> Self {
        TraceRequest {
            addr,
            op: Op::Read,
            thread: 0,
        }
    }

    /// Creates a write request for thread 0.
    #[must_use]
    pub fn write(addr: u64) -> Self {
        TraceRequest {
            addr,
            op: Op::Write,
            thread: 0,
        }
    }

    /// Returns the same request attributed to `thread`.
    #[must_use]
    pub fn on_thread(mut self, thread: usize) -> Self {
        self.thread = thread;
        self
    }
}

/// A source of trace requests.
///
/// Generators are infinite; take as many requests as the experiment needs
/// via [`TraceGenerator::generate`].
pub trait TraceGenerator {
    /// Produces the next request.
    fn next_request<R: Rng + ?Sized>(&mut self, rng: &mut R) -> TraceRequest;

    /// Collects `n` requests into a vector.
    fn generate<R: Rng + ?Sized>(&mut self, n: usize, rng: &mut R) -> Vec<TraceRequest>
    where
        Self: Sized,
    {
        (0..n).map(|_| self.next_request(rng)).collect()
    }
}

/// Sequential streaming access (copy/scan kernels): maximal row locality.
#[derive(Debug, Clone)]
pub struct StreamGen {
    base: u64,
    stride: u64,
    length: u64,
    pos: u64,
    write_ratio: f64,
}

impl StreamGen {
    /// Streams over `[base, base+length)` with the given stride in bytes,
    /// wrapping at the end. `write_ratio` in `[0, 1]` of requests are stores.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError`] if `stride == 0`, `length < stride`, or
    /// `write_ratio` is out of range.
    pub fn new(
        base: u64,
        stride: u64,
        length: u64,
        write_ratio: f64,
    ) -> Result<Self, WorkloadError> {
        if stride == 0 || length < stride {
            return Err(WorkloadError::invalid(
                "stream needs stride > 0 and length >= stride",
            ));
        }
        if !(0.0..=1.0).contains(&write_ratio) {
            return Err(WorkloadError::invalid("write_ratio must be in [0, 1]"));
        }
        Ok(StreamGen {
            base,
            stride,
            length,
            pos: 0,
            write_ratio,
        })
    }
}

impl TraceGenerator for StreamGen {
    fn next_request<R: Rng + ?Sized>(&mut self, rng: &mut R) -> TraceRequest {
        let addr = self.base + self.pos;
        self.pos = (self.pos + self.stride) % self.length;
        let op = if rng.gen::<f64>() < self.write_ratio {
            Op::Write
        } else {
            Op::Read
        };
        TraceRequest {
            addr,
            op,
            thread: 0,
        }
    }
}

/// Uniform random access over a region: minimal locality, the memory
/// scheduler's worst case.
#[derive(Debug, Clone)]
pub struct RandomGen {
    base: u64,
    region: u64,
    granule: u64,
    write_ratio: f64,
}

impl RandomGen {
    /// Random accesses in `[base, base+region)` at `granule`-byte alignment.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError`] on a zero granule/region or bad ratio.
    pub fn new(
        base: u64,
        region: u64,
        granule: u64,
        write_ratio: f64,
    ) -> Result<Self, WorkloadError> {
        if granule == 0 || region < granule {
            return Err(WorkloadError::invalid(
                "random gen needs granule > 0 and region >= granule",
            ));
        }
        if !(0.0..=1.0).contains(&write_ratio) {
            return Err(WorkloadError::invalid("write_ratio must be in [0, 1]"));
        }
        Ok(RandomGen {
            base,
            region,
            granule,
            write_ratio,
        })
    }
}

impl TraceGenerator for RandomGen {
    fn next_request<R: Rng + ?Sized>(&mut self, rng: &mut R) -> TraceRequest {
        let slots = self.region / self.granule;
        let addr = self.base + rng.gen_range(0..slots) * self.granule;
        let op = if rng.gen::<f64>() < self.write_ratio {
            Op::Write
        } else {
            Op::Read
        };
        TraceRequest {
            addr,
            op,
            thread: 0,
        }
    }
}

/// Pointer chasing over a random permutation cycle: every access depends
/// on the previous one (no memory-level parallelism), the workload class
/// the 3D-stacked pointer-chasing accelerator targets.
#[derive(Debug, Clone)]
pub struct PointerChaseGen {
    /// next[i] = index of the node the i-th node points to.
    next: Vec<u64>,
    node_bytes: u64,
    base: u64,
    current: u64,
}

impl PointerChaseGen {
    /// Builds a single random cycle over `nodes` nodes of `node_bytes`
    /// bytes starting at `base`.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError`] if `nodes < 2` or `node_bytes == 0`.
    pub fn new<R: Rng + ?Sized>(
        base: u64,
        nodes: u64,
        node_bytes: u64,
        rng: &mut R,
    ) -> Result<Self, WorkloadError> {
        if nodes < 2 || node_bytes == 0 {
            return Err(WorkloadError::invalid(
                "pointer chase needs >= 2 nodes and node_bytes > 0",
            ));
        }
        // Sattolo's algorithm: a uniformly random single cycle.
        let mut perm: Vec<u64> = (0..nodes).collect();
        for i in (1..nodes as usize).rev() {
            let j = rng.gen_range(0..i);
            perm.swap(i, j);
        }
        Ok(PointerChaseGen {
            next: perm,
            node_bytes,
            base,
            current: 0,
        })
    }

    /// Number of nodes in the chain.
    #[must_use]
    pub fn nodes(&self) -> u64 {
        self.next.len() as u64
    }
}

impl TraceGenerator for PointerChaseGen {
    fn next_request<R: Rng + ?Sized>(&mut self, _rng: &mut R) -> TraceRequest {
        let addr = self.base + self.current * self.node_bytes;
        self.current = self.next[self.current as usize];
        TraceRequest {
            addr,
            op: Op::Read,
            thread: 0,
        }
    }
}

/// Zipf-distributed page accesses: a hot set with a long tail, the shape
/// of database/key-value traffic.
#[derive(Debug, Clone)]
pub struct ZipfGen {
    /// Cumulative distribution over page ranks.
    cdf: Vec<f64>,
    page_bytes: u64,
    base: u64,
    write_ratio: f64,
}

impl ZipfGen {
    /// Zipf(`alpha`) over `pages` pages of `page_bytes` bytes.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError`] on zero pages/page size, a non-positive
    /// alpha, or a bad write ratio.
    pub fn new(
        base: u64,
        pages: usize,
        page_bytes: u64,
        alpha: f64,
        write_ratio: f64,
    ) -> Result<Self, WorkloadError> {
        if pages == 0 || page_bytes == 0 {
            return Err(WorkloadError::invalid(
                "zipf needs pages > 0 and page_bytes > 0",
            ));
        }
        if alpha <= 0.0 {
            return Err(WorkloadError::invalid("zipf alpha must be positive"));
        }
        if !(0.0..=1.0).contains(&write_ratio) {
            return Err(WorkloadError::invalid("write_ratio must be in [0, 1]"));
        }
        let mut cdf = Vec::with_capacity(pages);
        let mut acc = 0.0;
        for k in 1..=pages {
            acc += 1.0 / (k as f64).powf(alpha);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Ok(ZipfGen {
            cdf,
            page_bytes,
            base,
            write_ratio,
        })
    }
}

impl TraceGenerator for ZipfGen {
    fn next_request<R: Rng + ?Sized>(&mut self, rng: &mut R) -> TraceRequest {
        let u: f64 = rng.gen();
        let rank = self.cdf.partition_point(|&c| c < u);
        let page = rank.min(self.cdf.len() - 1) as u64;
        // Random line within the page keeps some intra-page variety.
        let line = rng.gen_range(0..self.page_bytes / 64) * 64;
        let op = if rng.gen::<f64>() < self.write_ratio {
            Op::Write
        } else {
            Op::Read
        };
        TraceRequest {
            addr: self.base + page * self.page_bytes + line,
            op,
            thread: 0,
        }
    }
}

/// Records `requests` into an `ia-tracefmt` writer: one record per
/// request, `stream` = originating thread, `at` = position in the trace.
/// The inverse is [`trace_from_records`]; together they make any
/// generated workload a replayable on-disk artifact.
pub fn record_trace(requests: &[TraceRequest], w: &mut ia_tracefmt::TraceWriter) {
    for (i, r) in requests.iter().enumerate() {
        let op = match r.op {
            Op::Read => ia_tracefmt::TraceOp::Read,
            Op::Write => ia_tracefmt::TraceOp::Write,
        };
        w.push(&ia_tracefmt::TraceRecord::new(
            r.addr,
            op,
            r.thread as u32,
            i as u64,
        ));
    }
}

/// Rebuilds a workload trace from decoded `ia-tracefmt` records,
/// preserving record order (`stream` becomes the thread attribution;
/// the `at` field is not consulted — file order is trace order).
#[must_use]
pub fn trace_from_records(records: &[ia_tracefmt::TraceRecord]) -> Vec<TraceRequest> {
    records
        .iter()
        .map(|rec| {
            let op = match rec.op {
                ia_tracefmt::TraceOp::Read => Op::Read,
                ia_tracefmt::TraceOp::Write => Op::Write,
            };
            TraceRequest {
                addr: rec.addr,
                op,
                thread: rec.stream as usize,
            }
        })
        .collect()
}

/// A probabilistic mix of generators, each attributed to its own thread —
/// the multi-programmed interference workloads of the scheduler papers.
#[derive(Debug)]
pub struct MixGen<G> {
    components: Vec<G>,
}

impl<G: TraceGenerator> MixGen<G> {
    /// Creates a mix; component `i` produces requests on thread `i`.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError`] if `components` is empty.
    pub fn new(components: Vec<G>) -> Result<Self, WorkloadError> {
        if components.is_empty() {
            return Err(WorkloadError::invalid("mix needs at least one component"));
        }
        Ok(MixGen { components })
    }

    /// Number of component threads.
    #[must_use]
    pub fn thread_count(&self) -> usize {
        self.components.len()
    }
}

impl<G: TraceGenerator> TraceGenerator for MixGen<G> {
    fn next_request<R: Rng + ?Sized>(&mut self, rng: &mut R) -> TraceRequest {
        let i = rng.gen_range(0..self.components.len());
        self.components[i].next_request(rng).on_thread(i)
    }
}

/// A boxed generator, for heterogeneous mixes.
pub type BoxedGenerator = Box<dyn FnMut(&mut dyn rand::RngCore) -> TraceRequest>;

/// Wraps any generator into a boxed closure (erasing the type), attributed
/// to `thread`.
pub fn boxed<G: TraceGenerator + 'static>(mut gen: G, thread: usize) -> BoxedGenerator {
    Box::new(move |rng| gen.next_request(rng).on_thread(thread))
}

/// Round-robin interleave of boxed heterogeneous generators.
pub struct HeterogeneousMix {
    components: Vec<BoxedGenerator>,
    turn: usize,
}

impl std::fmt::Debug for HeterogeneousMix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeterogeneousMix")
            .field("components", &self.components.len())
            .finish()
    }
}

impl HeterogeneousMix {
    /// Creates a round-robin mix.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError`] if `components` is empty.
    pub fn new(components: Vec<BoxedGenerator>) -> Result<Self, WorkloadError> {
        if components.is_empty() {
            return Err(WorkloadError::invalid("mix needs at least one component"));
        }
        Ok(HeterogeneousMix {
            components,
            turn: 0,
        })
    }

    /// Produces the next request (round-robin across components).
    pub fn next_request<R: Rng>(&mut self, rng: &mut R) -> TraceRequest {
        let i = self.turn;
        self.turn = (self.turn + 1) % self.components.len();
        (self.components[i])(rng)
    }

    /// Collects `n` requests.
    pub fn generate<R: Rng>(&mut self, n: usize, rng: &mut R) -> Vec<TraceRequest> {
        (0..n).map(|_| self.next_request(rng)).collect()
    }

    /// Number of components.
    #[must_use]
    pub fn thread_count(&self) -> usize {
        self.components.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(0x7EA5)
    }

    #[test]
    fn stream_is_sequential_and_wraps() {
        let mut g = StreamGen::new(0x1000, 64, 256, 0.0).unwrap();
        let mut r = rng();
        let t = g.generate(5, &mut r);
        let addrs: Vec<u64> = t.iter().map(|q| q.addr).collect();
        assert_eq!(addrs, vec![0x1000, 0x1040, 0x1080, 0x10C0, 0x1000]);
        assert!(t.iter().all(|q| q.op == Op::Read));
    }

    #[test]
    fn stream_write_ratio_controls_stores() {
        let mut g = StreamGen::new(0, 64, 1 << 20, 0.5).unwrap();
        let mut r = rng();
        let t = g.generate(2000, &mut r);
        let writes = t.iter().filter(|q| q.op == Op::Write).count();
        assert!((800..1200).contains(&writes), "got {writes}");
    }

    #[test]
    fn stream_validates() {
        assert!(StreamGen::new(0, 0, 64, 0.0).is_err());
        assert!(StreamGen::new(0, 128, 64, 0.0).is_err());
        assert!(StreamGen::new(0, 64, 128, 1.5).is_err());
    }

    #[test]
    fn random_stays_in_region_and_aligned() {
        let mut g = RandomGen::new(0x10_0000, 1 << 16, 64, 0.2).unwrap();
        let mut r = rng();
        for q in g.generate(1000, &mut r) {
            assert!(q.addr >= 0x10_0000 && q.addr < 0x10_0000 + (1 << 16));
            assert_eq!(q.addr % 64, 0);
        }
    }

    #[test]
    fn pointer_chase_visits_every_node_once_per_cycle() {
        let mut r = rng();
        let mut g = PointerChaseGen::new(0, 64, 64, &mut r).unwrap();
        let t = g.generate(64, &mut r);
        let mut seen: Vec<u64> = t.iter().map(|q| q.addr / 64).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(
            seen.len(),
            64,
            "a single cycle visits all nodes exactly once"
        );
        assert_eq!(g.nodes(), 64);
    }

    #[test]
    fn pointer_chase_rejects_tiny_inputs() {
        let mut r = rng();
        assert!(PointerChaseGen::new(0, 1, 64, &mut r).is_err());
        assert!(PointerChaseGen::new(0, 8, 0, &mut r).is_err());
    }

    #[test]
    fn zipf_concentrates_on_hot_pages() {
        let mut g = ZipfGen::new(0, 1000, 4096, 1.2, 0.0).unwrap();
        let mut r = rng();
        let t = g.generate(10_000, &mut r);
        let hot = t.iter().filter(|q| q.addr / 4096 < 10).count();
        assert!(hot > 3_000, "top-10 pages should dominate, got {hot}/10000");
    }

    #[test]
    fn zipf_validates() {
        assert!(ZipfGen::new(0, 0, 4096, 1.0, 0.0).is_err());
        assert!(ZipfGen::new(0, 10, 0, 1.0, 0.0).is_err());
        assert!(ZipfGen::new(0, 10, 4096, 0.0, 0.0).is_err());
    }

    #[test]
    fn mix_attributes_threads() {
        let comps = vec![
            StreamGen::new(0, 64, 1 << 16, 0.0).unwrap(),
            StreamGen::new(1 << 20, 64, 1 << 16, 0.0).unwrap(),
        ];
        let mut mix = MixGen::new(comps).unwrap();
        let mut r = rng();
        let t = mix.generate(500, &mut r);
        assert!(t.iter().any(|q| q.thread == 0));
        assert!(t.iter().any(|q| q.thread == 1));
        assert_eq!(mix.thread_count(), 2);
        for q in &t {
            let expected_base = if q.thread == 0 { 0 } else { 1 << 20 };
            assert!(q.addr >= expected_base && q.addr < expected_base + (1 << 16));
        }
    }

    #[test]
    fn heterogeneous_mix_round_robins() {
        let mut r = rng();
        let chase = PointerChaseGen::new(1 << 24, 16, 64, &mut r).unwrap();
        let stream = StreamGen::new(0, 64, 1 << 12, 0.0).unwrap();
        let mut mix = HeterogeneousMix::new(vec![boxed(stream, 0), boxed(chase, 1)]).unwrap();
        let t = mix.generate(10, &mut r);
        assert_eq!(t.iter().filter(|q| q.thread == 0).count(), 5);
        assert_eq!(t.iter().filter(|q| q.thread == 1).count(), 5);
    }

    #[test]
    fn record_and_rebuild_round_trips() {
        let mut g = StreamGen::new(0, 64, 1 << 12, 0.3).unwrap();
        let mut r = rng();
        let t: Vec<TraceRequest> = g
            .generate(50, &mut r)
            .into_iter()
            .enumerate()
            .map(|(i, q)| q.on_thread(i % 3))
            .collect();
        let mut w = ia_tracefmt::TraceWriter::new(9);
        record_trace(&t, &mut w);
        let reader = ia_tracefmt::TraceReader::from_bytes(&w.finish()).unwrap();
        assert_eq!(reader.seed(), 9);
        assert_eq!(trace_from_records(reader.records()), t);
    }

    #[test]
    fn empty_mix_is_an_error() {
        assert!(MixGen::<StreamGen>::new(vec![]).is_err());
        assert!(HeterogeneousMix::new(vec![]).is_err());
    }
}
