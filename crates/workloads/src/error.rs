//! Error type for workload generators.

use std::error::Error;
use std::fmt;

/// An invalid argument to a workload generator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadError {
    msg: &'static str,
}

impl WorkloadError {
    pub(crate) fn invalid(msg: &'static str) -> Self {
        WorkloadError { msg }
    }
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.msg)
    }
}

impl Error for WorkloadError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_is_nonempty_and_send_sync() {
        fn check<T: Error + Send + Sync>() {}
        check::<WorkloadError>();
        assert!(!WorkloadError::invalid("bad").to_string().is_empty());
    }
}
