//! Consumer-device workload models for the data-movement energy
//! experiment (E1), after Boroumand+ (ASPLOS 2018): four Google consumer
//! workloads in which 62.7% of total system energy is spent moving data
//! through the memory hierarchy.
//!
//! Substitution note: the original study instruments real workloads on a
//! Chromebook; here each workload is a phase model — event counts per
//! hierarchy level — with per-event energies taken from the standard
//! technology ballpark (compute op ≪ L1 ≪ LLC ≪ off-chip DRAM). The 60%+
//! movement share is then an accounting consequence of realistic event
//! mixes, which is precisely the paper's point.

use crate::WorkloadError;

/// Per-event energy costs in picojoules for a mobile SoC-class system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SystemEnergyModel {
    /// One ALU/FPU operation.
    pub op_pj: f64,
    /// One L1 access.
    pub l1_pj: f64,
    /// One L2/LLC access.
    pub llc_pj: f64,
    /// One off-chip DRAM access (cache-line, including I/O and DRAM core).
    pub dram_pj: f64,
    /// Interconnect energy per byte moved between units.
    pub interconnect_pj_per_byte: f64,
}

impl Default for SystemEnergyModel {
    /// Ballpark 28 nm mobile values: 70 pJ per instruction of core
    /// pipeline energy, 50 pJ L1, 500 pJ LLC, 10 nJ per off-chip DRAM
    /// line, 1 pJ/B interconnect.
    fn default() -> Self {
        SystemEnergyModel {
            op_pj: 70.0,
            l1_pj: 50.0,
            llc_pj: 500.0,
            dram_pj: 10_000.0,
            interconnect_pj_per_byte: 1.0,
        }
    }
}

/// Event counts characterizing one consumer workload.
#[derive(Debug, Clone, PartialEq)]
pub struct MobileWorkload {
    /// Workload name.
    pub name: String,
    /// Compute operations executed.
    pub ops: u64,
    /// L1 accesses.
    pub l1_accesses: u64,
    /// LLC accesses.
    pub llc_accesses: u64,
    /// Off-chip DRAM accesses.
    pub dram_accesses: u64,
    /// Bytes per DRAM access (line size).
    pub line_bytes: u64,
}

impl MobileWorkload {
    /// Creates a workload model.
    ///
    /// # Errors
    ///
    /// Returns [`WorkloadError`] if `ops == 0`.
    pub fn new(
        name: impl Into<String>,
        ops: u64,
        l1_accesses: u64,
        llc_accesses: u64,
        dram_accesses: u64,
        line_bytes: u64,
    ) -> Result<Self, WorkloadError> {
        if ops == 0 {
            return Err(WorkloadError::invalid(
                "workload must execute at least one op",
            ));
        }
        Ok(MobileWorkload {
            name: name.into(),
            ops,
            l1_accesses,
            llc_accesses,
            dram_accesses,
            line_bytes,
        })
    }

    /// The four consumer workload classes of the ASPLOS'18 study, with
    /// event mixes shaped like the published characterization (memory
    /// intensities: ML inference and video are DRAM-heavy; browsing is
    /// moderately so).
    #[must_use]
    pub fn consumer_suite(scale: u64) -> Vec<MobileWorkload> {
        let m = scale.max(1);
        vec![
            // ML inference: streams weights, little reuse (≈5.5 DRAM MPKI).
            MobileWorkload {
                name: "tensorflow-inference".into(),
                ops: 10_000_000 * m,
                l1_accesses: 7_000_000 * m,
                llc_accesses: 600_000 * m,
                dram_accesses: 55_000 * m,
                line_bytes: 64,
            },
            // Video playback: decode + frame buffers.
            MobileWorkload {
                name: "video-playback".into(),
                ops: 8_000_000 * m,
                l1_accesses: 6_000_000 * m,
                llc_accesses: 500_000 * m,
                dram_accesses: 48_000 * m,
                line_bytes: 64,
            },
            // Video capture: encode pipeline, heavy frame movement.
            MobileWorkload {
                name: "video-capture".into(),
                ops: 9_000_000 * m,
                l1_accesses: 6_500_000 * m,
                llc_accesses: 550_000 * m,
                dram_accesses: 52_000 * m,
                line_bytes: 64,
            },
            // Web browsing: pointer-heavy, moderate DRAM traffic.
            MobileWorkload {
                name: "chrome-browsing".into(),
                ops: 12_000_000 * m,
                l1_accesses: 9_000_000 * m,
                llc_accesses: 650_000 * m,
                dram_accesses: 40_000 * m,
                line_bytes: 64,
            },
        ]
    }
}

/// Energy breakdown of a workload under a system model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyBreakdown {
    /// Compute energy (pJ).
    pub compute_pj: f64,
    /// Data-movement energy: caches + interconnect + DRAM (pJ).
    pub movement_pj: f64,
}

impl EnergyBreakdown {
    /// Total energy.
    #[must_use]
    pub fn total_pj(&self) -> f64 {
        self.compute_pj + self.movement_pj
    }

    /// Fraction of total energy spent on data movement.
    #[must_use]
    pub fn movement_fraction(&self) -> f64 {
        let t = self.total_pj();
        if t == 0.0 {
            0.0
        } else {
            self.movement_pj / t
        }
    }
}

/// Computes the compute-vs-movement energy split for a workload.
#[must_use]
pub fn energy_breakdown(w: &MobileWorkload, model: &SystemEnergyModel) -> EnergyBreakdown {
    let compute_pj = w.ops as f64 * model.op_pj;
    let cache_pj = w.l1_accesses as f64 * model.l1_pj + w.llc_accesses as f64 * model.llc_pj;
    let dram_pj = w.dram_accesses as f64 * model.dram_pj;
    let interconnect_pj = (w.llc_accesses + w.dram_accesses) as f64
        * w.line_bytes as f64
        * model.interconnect_pj_per_byte;
    EnergyBreakdown {
        compute_pj,
        movement_pj: cache_pj + dram_pj + interconnect_pj,
    }
}

/// Recomputes the breakdown assuming a fraction of DRAM traffic is served
/// by processing-in-memory (no off-chip crossing): the mitigation the
/// ASPLOS'18 study evaluates.
#[must_use]
pub fn energy_with_pim(
    w: &MobileWorkload,
    model: &SystemEnergyModel,
    offloaded_fraction: f64,
) -> EnergyBreakdown {
    let f = offloaded_fraction.clamp(0.0, 1.0);
    let offloaded = (w.dram_accesses as f64 * f) as u64;
    let remaining = MobileWorkload {
        dram_accesses: w.dram_accesses - offloaded,
        ..w.clone()
    };
    let mut b = energy_breakdown(&remaining, model);
    // Offloaded accesses still pay the DRAM array cost (~20% of the line
    // energy) but no off-chip I/O or interconnect.
    b.movement_pj += offloaded as f64 * model.dram_pj * 0.2;
    b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_validates() {
        assert!(MobileWorkload::new("x", 0, 0, 0, 0, 64).is_err());
        assert!(MobileWorkload::new("x", 10, 5, 1, 1, 64).is_ok());
    }

    #[test]
    fn consumer_suite_movement_exceeds_sixty_percent() {
        let model = SystemEnergyModel::default();
        let suite = MobileWorkload::consumer_suite(1);
        assert_eq!(suite.len(), 4);
        let mut total = 0.0;
        let mut movement = 0.0;
        for w in &suite {
            let b = energy_breakdown(w, &model);
            assert!(
                b.movement_fraction() > 0.5,
                "{} movement fraction {:.2}",
                w.name,
                b.movement_fraction()
            );
            total += b.total_pj();
            movement += b.movement_pj;
        }
        let overall = movement / total;
        assert!(
            (0.55..0.80).contains(&overall),
            "suite-wide movement share should be ≈62.7%, got {:.1}%",
            overall * 100.0
        );
    }

    #[test]
    fn pim_offload_reduces_movement_energy() {
        let model = SystemEnergyModel::default();
        let w = &MobileWorkload::consumer_suite(1)[0];
        let base = energy_breakdown(w, &model);
        let pim = energy_with_pim(w, &model, 0.8);
        assert!(pim.movement_pj < base.movement_pj);
        assert!(pim.total_pj() < base.total_pj());
        assert_eq!(pim.compute_pj, base.compute_pj);
    }

    #[test]
    fn full_offload_beats_partial() {
        let model = SystemEnergyModel::default();
        let w = &MobileWorkload::consumer_suite(1)[1];
        let half = energy_with_pim(w, &model, 0.5);
        let full = energy_with_pim(w, &model, 1.0);
        assert!(full.total_pj() < half.total_pj());
    }

    #[test]
    fn breakdown_handles_zero_division() {
        let b = EnergyBreakdown {
            compute_pj: 0.0,
            movement_pj: 0.0,
        };
        assert_eq!(b.movement_fraction(), 0.0);
    }

    #[test]
    fn scale_multiplies_counts() {
        let one = MobileWorkload::consumer_suite(1);
        let ten = MobileWorkload::consumer_suite(10);
        assert_eq!(ten[0].ops, 10 * one[0].ops);
        assert_eq!(ten[3].dram_accesses, 10 * one[3].dram_accesses);
    }
}
