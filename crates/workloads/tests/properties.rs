//! Property-based tests of the workload substrate.

use ia_workloads::{
    edit_distance_banded, pack_kmer, random_genome, sample_reads, Graph, GrimIndex,
    PointerChaseGen, RandomGen, SeedIndex, StreamGen, TraceGenerator, ZipfGen,
};
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    /// Every generator stays inside its configured address region.
    #[test]
    fn generators_respect_regions(seed in any::<u64>(), n in 1usize..200) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut stream = StreamGen::new(0x1000, 64, 4096, 0.5).unwrap();
        for r in stream.generate(n, &mut rng) {
            prop_assert!((0x1000..0x1000 + 4096).contains(&r.addr));
        }
        let mut random = RandomGen::new(1 << 20, 1 << 16, 64, 0.5).unwrap();
        for r in random.generate(n, &mut rng) {
            prop_assert!(((1 << 20)..(1 << 20) + (1 << 16)).contains(&r.addr));
            prop_assert_eq!(r.addr % 64, 0);
        }
        let mut zipf = ZipfGen::new(0, 64, 4096, 1.0, 0.5).unwrap();
        for r in zipf.generate(n, &mut rng) {
            prop_assert!(r.addr < 64 * 4096);
        }
    }

    /// A pointer chase over N nodes visits all N exactly once per lap,
    /// for any seed and size.
    #[test]
    fn pointer_chase_is_a_single_cycle(seed in any::<u64>(), nodes in 2u64..128) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut gen = PointerChaseGen::new(0, nodes, 64, &mut rng).unwrap();
        let trace = gen.generate(nodes as usize, &mut rng);
        let mut seen: Vec<u64> = trace.iter().map(|r| r.addr / 64).collect();
        seen.sort_unstable();
        seen.dedup();
        prop_assert_eq!(seen.len() as u64, nodes);
    }

    /// pack_kmer is injective for fixed k ≤ 8.
    #[test]
    fn pack_kmer_injective(a in prop::collection::vec(0u8..4, 8), b in prop::collection::vec(0u8..4, 8)) {
        if a != b {
            prop_assert_ne!(pack_kmer(&a), pack_kmer(&b));
        } else {
            prop_assert_eq!(pack_kmer(&a), pack_kmer(&b));
        }
    }

    /// Edit distance is symmetric and zero iff equal (within the band).
    #[test]
    fn edit_distance_symmetry(
        a in prop::collection::vec(0u8..4, 1..40),
        b in prop::collection::vec(0u8..4, 1..40),
    ) {
        let d_ab = edit_distance_banded(&a, &b, 10);
        let d_ba = edit_distance_banded(&b, &a, 10);
        prop_assert_eq!(d_ab, d_ba);
        prop_assert_eq!(edit_distance_banded(&a, &a, 10), Some(0));
        if let Some(d) = d_ab {
            prop_assert!((d as usize) <= 10);
            if d == 0 {
                prop_assert_eq!(&a, &b);
            }
        }
    }

    /// A single substitution always yields distance exactly 1.
    #[test]
    fn single_substitution_is_distance_one(
        mut a in prop::collection::vec(0u8..4, 2..50),
        idx in any::<prop::sample::Index>(),
    ) {
        let b = a.clone();
        let i = idx.index(a.len());
        a[i] = (a[i] + 1) % 4;
        prop_assert_eq!(edit_distance_banded(&a, &b, 5), Some(1));
    }

    /// Error-free reads always locate their true position via the index,
    /// and the GRIM bin at the true position always passes a reasonable
    /// threshold.
    #[test]
    fn mapping_pipeline_finds_truth(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let genome = random_genome(16 * 1024, &mut rng);
        let reads = sample_reads(&genome, 5, 64, 0.0, &mut rng).unwrap();
        let idx = SeedIndex::build(&genome, 10).unwrap();
        let grim = GrimIndex::build(&genome, 8, 2048).unwrap();
        for read in &reads {
            let cands = idx.candidates(&read.seq, 4);
            prop_assert!(cands.contains(&(read.true_pos as u32)));
            let bv = grim.read_bitvector(&read.seq);
            // An error-free read's span-bins jointly contain every one of
            // its distinct tokens (duplicates collapse in the bitvector).
            let distinct: u32 = bv.iter().map(|w| w.count_ones()).sum();
            let first = read.true_pos / grim.bin_size();
            let last = (read.true_pos + read.seq.len() - 1) / grim.bin_size();
            let total: u32 = (first..=last.min(grim.bin_count() - 1))
                .map(|b| grim.match_count(&bv, b))
                .sum();
            prop_assert!(total >= distinct, "tokens {total} < distinct {distinct}");
        }
    }

    /// Graph CSR construction preserves the edge multiset.
    #[test]
    fn graph_preserves_edges(edges in prop::collection::vec((0u32..32, 0u32..32), 0..100)) {
        let g = Graph::from_edges(32, &edges).unwrap();
        prop_assert_eq!(g.edge_count(), edges.len());
        let mut rebuilt: Vec<(u32, u32)> = (0..32u32)
            .flat_map(|v| g.neighbors(v).iter().map(move |&w| (v, w)))
            .collect();
        let mut original = edges.clone();
        rebuilt.sort_unstable();
        original.sort_unstable();
        prop_assert_eq!(rebuilt, original);
    }

    /// PageRank is always a probability distribution.
    #[test]
    fn pagerank_is_a_distribution(seed in any::<u64>(), iters in 1usize..30) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = Graph::uniform_random(64, 256, &mut rng).unwrap();
        let pr = g.pagerank(0.85, iters);
        let sum: f64 = pr.iter().sum();
        prop_assert!((sum - 1.0).abs() < 1e-9);
        prop_assert!(pr.iter().all(|&x| x >= 0.0));
    }

    /// BFS distances satisfy the triangle property along edges:
    /// d(w) ≤ d(v) + 1 for every edge (v, w).
    #[test]
    fn bfs_distances_are_consistent(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = Graph::uniform_random(48, 128, &mut rng).unwrap();
        let d = g.bfs(0);
        for v in 0..48u32 {
            if d[v as usize] == u32::MAX {
                continue;
            }
            for &w in g.neighbors(v) {
                prop_assert!(d[w as usize] <= d[v as usize] + 1);
            }
        }
    }
}
