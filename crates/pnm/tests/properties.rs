//! Property-based tests for the processing-near-memory models.

use ia_pnm::{
    concurrent_traversals, host_pagerank_ns, traverse_host, traverse_pnm, LinkedChain,
    OffloadPolicy, PeiCosts, PeiEngine, PnmGraphEngine, StackConfig,
};
use ia_workloads::Graph;
use proptest::prelude::*;
use rand::rngs::SmallRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Near-memory PageRank is bit-identical to the host reference on any
    /// random graph and vault count.
    #[test]
    fn pagerank_is_location_independent(seed in any::<u64>(), vaults in 1usize..32) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = Graph::uniform_random(128, 512, &mut rng).unwrap();
        let stack = StackConfig::hmc_like().with_vaults(vaults).unwrap();
        let engine = PnmGraphEngine::new(stack, &g).unwrap();
        let (ranks, report) = engine.pagerank(0.85, 8);
        prop_assert_eq!(ranks, g.pagerank(0.85, 8));
        prop_assert!(report.total_ns > 0.0);
        prop_assert!((0.0..=1.0).contains(&report.remote_edge_fraction));
        if vaults == 1 {
            prop_assert_eq!(report.remote_edge_fraction, 0.0);
        }
    }

    /// More vaults never slows the engine down (bulk-synchronous, load
    /// balanced by LPT).
    #[test]
    fn vault_scaling_is_monotone(seed in any::<u64>()) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = Graph::rmat(512, 4096, &mut rng).unwrap();
        let mut last = f64::INFINITY;
        for vaults in [1usize, 2, 4, 8, 16] {
            let stack = StackConfig::hmc_like().with_vaults(vaults).unwrap();
            let (_, report) = PnmGraphEngine::new(stack, &g).unwrap().pagerank(0.85, 4);
            prop_assert!(
                report.total_ns <= last * 1.05,
                "{vaults} vaults: {} vs previous {last}",
                report.total_ns
            );
            last = report.total_ns;
        }
    }

    /// Pointer traversal: host and in-memory walkers always agree, the
    /// in-memory walker is never slower, and hop counts are exact.
    #[test]
    fn traversal_agreement(seed in any::<u64>(), start in 0u32..512, hops in 1u64..5000) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let chain = LinkedChain::random_cycle(512, &mut rng).unwrap();
        let stack = StackConfig::hmc_like();
        let h = traverse_host(&chain, &stack, start, hops);
        let p = traverse_pnm(&chain, &stack, start, hops);
        prop_assert_eq!(h.end, p.end);
        prop_assert_eq!(h.hops, hops);
        prop_assert!(p.ns <= h.ns + stack.external_latency_ns);
    }

    /// Concurrent traversal times are monotone in streams and hops.
    #[test]
    fn concurrency_model_is_monotone(streams in 1u64..128, hops in 1u64..10_000) {
        let stack = StackConfig::hmc_like();
        let (h1, p1) = concurrent_traversals(&stack, streams, hops);
        let (h2, p2) = concurrent_traversals(&stack, streams + 1, hops);
        prop_assert!(h2 >= h1 * 0.99);
        prop_assert!(p2 >= p1 * 0.99);
        prop_assert!(h1 > 0.0 && p1 > 0.0);
    }

    /// Host PageRank time grows with iterations and edge count.
    #[test]
    fn host_model_is_monotone(seed in any::<u64>(), iters in 1usize..20) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let g = Graph::uniform_random(64, 256, &mut rng).unwrap();
        let stack = StackConfig::hmc_like();
        let a = host_pagerank_ns(&stack, &g, iters);
        let b = host_pagerank_ns(&stack, &g, iters + 1);
        prop_assert!(b > a);
    }

    /// The PEI locality-aware policy never does worse than the worst of
    /// the two static policies on cyclic working sets.
    #[test]
    fn pei_adaptive_is_never_worst(lines in 1u64..100_000, ops in 100u64..2000) {
        let costs = PeiCosts::from_stack(&StackConfig::hmc_like());
        let run = |policy| {
            let mut e = PeiEngine::new(costs, policy, 1024).unwrap();
            for i in 0..ops {
                e.execute(i % lines);
            }
            e.avg_ns()
        };
        let host = run(OffloadPolicy::AlwaysHost);
        let memory = run(OffloadPolicy::AlwaysMemory);
        let adaptive = run(OffloadPolicy::LocalityAware);
        let worst = host.max(memory);
        prop_assert!(
            adaptive <= worst * 1.01,
            "adaptive {adaptive:.1} must not exceed the worst static {worst:.1}"
        );
    }
}
