//! Error type for the processing-near-memory models.

use std::error::Error;
use std::fmt;

/// An invalid argument to a PNM model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PnmError {
    msg: &'static str,
}

impl PnmError {
    pub(crate) fn invalid(msg: &'static str) -> Self {
        PnmError { msg }
    }
}

impl fmt::Display for PnmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.msg)
    }
}

impl Error for PnmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn message_is_nonempty_and_send_sync() {
        fn check<T: Error + Send + Sync>() {}
        check::<PnmError>();
        assert!(!PnmError::invalid("bad").to_string().is_empty());
    }
}
