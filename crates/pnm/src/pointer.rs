//! Pointer-chasing acceleration in 3D-stacked memory (Hsieh+, ICCD 2016):
//! dependent loads cannot be pipelined, so each hop costs a full memory
//! round trip — from the host that is the external latency; from a walker
//! in the logic layer it is the internal latency.

use crate::stack::StackConfig;
use crate::PnmError;

/// A linked structure laid out in memory as an index chain.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LinkedChain {
    next: Vec<u32>,
}

impl LinkedChain {
    /// Builds a chain from explicit links.
    ///
    /// # Errors
    ///
    /// Returns [`PnmError`] if empty or any link is out of range.
    pub fn new(next: Vec<u32>) -> Result<Self, PnmError> {
        if next.is_empty() {
            return Err(PnmError::invalid("chain needs at least one node"));
        }
        let n = next.len() as u32;
        if next.iter().any(|&x| x >= n) {
            return Err(PnmError::invalid("link out of range"));
        }
        Ok(LinkedChain { next })
    }

    /// Builds a single random cycle over `nodes` nodes (Sattolo).
    ///
    /// # Errors
    ///
    /// Returns [`PnmError`] if `nodes < 2`.
    pub fn random_cycle<R: rand::Rng + ?Sized>(nodes: u32, rng: &mut R) -> Result<Self, PnmError> {
        if nodes < 2 {
            return Err(PnmError::invalid("cycle needs at least two nodes"));
        }
        let mut perm: Vec<u32> = (0..nodes).collect();
        for i in (1..nodes as usize).rev() {
            let j = rng.gen_range(0..i);
            perm.swap(i, j);
        }
        Ok(LinkedChain { next: perm })
    }

    /// Number of nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.next.len()
    }

    /// True if the chain is empty (never: construction forbids it).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.next.is_empty()
    }

    /// Walks `hops` links from `start`, returning the final node.
    ///
    /// # Panics
    ///
    /// Panics if `start` is out of range.
    #[must_use]
    pub fn walk(&self, start: u32, hops: u64) -> u32 {
        let mut cur = start;
        for _ in 0..hops {
            cur = self.next[cur as usize];
        }
        cur
    }
}

/// Result of a costed traversal.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraversalReport {
    /// Final node reached.
    pub end: u32,
    /// Total time, ns.
    pub ns: f64,
    /// Hops performed.
    pub hops: u64,
}

/// Walks the chain from the host: every hop is a dependent external-memory
/// round trip (caches are useless for a random cycle larger than they are).
#[must_use]
pub fn traverse_host(
    chain: &LinkedChain,
    stack: &StackConfig,
    start: u32,
    hops: u64,
) -> TraversalReport {
    TraversalReport {
        end: chain.walk(start, hops),
        ns: hops as f64 * stack.external_latency_ns,
        hops,
    }
}

/// Walks the chain with an in-memory walker in the logic layer: hops pay
/// only the internal latency, and only the final result crosses the link.
#[must_use]
pub fn traverse_pnm(
    chain: &LinkedChain,
    stack: &StackConfig,
    start: u32,
    hops: u64,
) -> TraversalReport {
    TraversalReport {
        end: chain.walk(start, hops),
        ns: hops as f64 * stack.internal_latency_ns + stack.external_latency_ns,
        hops,
    }
}

/// Concurrent traversals (e.g., B-tree lookups): the host can overlap a
/// few via its miss handling, an in-memory walker engine runs one walker
/// per vault. Returns `(host_ns, pnm_ns)` for `streams` independent
/// traversals of `hops` hops each.
#[must_use]
pub fn concurrent_traversals(stack: &StackConfig, streams: u64, hops: u64) -> (f64, f64) {
    // The host overlaps at most ~10 outstanding misses (MSHR-bound).
    let host_parallel = 10.0_f64.min(streams as f64);
    let host_ns = streams as f64 * hops as f64 * stack.external_latency_ns / host_parallel;
    let pnm_parallel = (stack.vaults as f64).min(streams as f64);
    let pnm_ns = streams as f64 * hops as f64 * stack.internal_latency_ns / pnm_parallel
        + stack.external_latency_ns;
    (host_ns, pnm_ns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn chain_validation() {
        assert!(LinkedChain::new(vec![]).is_err());
        assert!(LinkedChain::new(vec![5]).is_err());
        assert!(LinkedChain::new(vec![0]).is_ok());
        let mut rng = SmallRng::seed_from_u64(3);
        assert!(LinkedChain::random_cycle(1, &mut rng).is_err());
    }

    #[test]
    fn walk_follows_links() {
        let c = LinkedChain::new(vec![1, 2, 0]).unwrap();
        assert_eq!(c.walk(0, 1), 1);
        assert_eq!(c.walk(0, 3), 0, "3-cycle returns to start");
        assert_eq!(c.walk(2, 2), 1);
        assert!(!c.is_empty());
        assert_eq!(c.len(), 3);
    }

    #[test]
    fn random_cycle_visits_every_node() {
        let mut rng = SmallRng::seed_from_u64(4);
        let c = LinkedChain::random_cycle(64, &mut rng).unwrap();
        let mut cur = 0u32;
        let mut seen = [false; 64];
        for _ in 0..64 {
            assert!(!seen[cur as usize], "premature cycle");
            seen[cur as usize] = true;
            cur = c.walk(cur, 1);
        }
        assert_eq!(cur, 0, "single cycle of length 64");
    }

    #[test]
    fn pnm_and_host_agree_functionally() {
        let mut rng = SmallRng::seed_from_u64(5);
        let c = LinkedChain::random_cycle(128, &mut rng).unwrap();
        let s = StackConfig::hmc_like();
        let h = traverse_host(&c, &s, 7, 100);
        let p = traverse_pnm(&c, &s, 7, 100);
        assert_eq!(h.end, p.end);
        assert_eq!(h.hops, p.hops);
    }

    #[test]
    fn pnm_traversal_is_latency_bound_faster() {
        let mut rng = SmallRng::seed_from_u64(6);
        let c = LinkedChain::random_cycle(1024, &mut rng).unwrap();
        let s = StackConfig::hmc_like();
        let h = traverse_host(&c, &s, 0, 10_000);
        let p = traverse_pnm(&c, &s, 0, 10_000);
        let speedup = h.ns / p.ns;
        let expected = s.external_latency_ns / s.internal_latency_ns;
        assert!(
            (speedup - expected).abs() / expected < 0.05,
            "speedup {speedup:.2} should approach the latency ratio {expected:.2}"
        );
    }

    #[test]
    fn concurrent_walkers_widen_the_gap() {
        let s = StackConfig::hmc_like();
        let (h1, p1) = concurrent_traversals(&s, 1, 1000);
        let (h16, p16) = concurrent_traversals(&s, 16, 1000);
        assert!(
            h1 / p1 < h16 / p16,
            "vault-parallel walkers scale past host MSHRs"
        );
    }
}
