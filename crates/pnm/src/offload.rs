//! PIM-Enabled Instructions (Ahn+, ISCA 2015): single-instruction offload
//! with *locality-aware* execution — each PIM-capable operation executes
//! at the host when its data is cache-resident, and in memory when it is
//! not, so PIM never loses to the cache.

use std::collections::HashMap;

use crate::stack::StackConfig;
use crate::PnmError;

/// Where a PIM-enabled instruction executed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExecSite {
    /// Executed on the host core (data was cached).
    Host,
    /// Executed in the memory stack.
    Memory,
}

/// Cost parameters for one PIM-enabled operation (e.g., an atomic update).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeiCosts {
    /// Host execution when the line hits in cache, ns.
    pub host_hit_ns: f64,
    /// Host execution on a cache miss (full external round trip), ns.
    pub host_miss_ns: f64,
    /// In-memory execution, ns (internal latency, no fill).
    pub memory_ns: f64,
}

impl PeiCosts {
    /// Derives costs from a stack configuration.
    #[must_use]
    pub fn from_stack(stack: &StackConfig) -> Self {
        PeiCosts {
            host_hit_ns: 2.0,
            host_miss_ns: stack.external_latency_ns,
            memory_ns: stack.internal_latency_ns,
        }
    }
}

/// Execution policy for PIM-enabled instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OffloadPolicy {
    /// Always execute at the host.
    AlwaysHost,
    /// Always execute in memory.
    AlwaysMemory,
    /// Locality-aware: execute at the host iff the line is predicted
    /// cache-resident (the PEI design point).
    LocalityAware,
}

/// A simple cache-residency tracker: an LRU set of recently-touched lines
/// standing in for the host tag array probe the PEI paper performs.
#[derive(Debug, Clone)]
struct ResidencyTracker {
    capacity: usize,
    stamp: u64,
    lines: HashMap<u64, u64>,
}

impl ResidencyTracker {
    fn new(capacity: usize) -> Self {
        ResidencyTracker {
            capacity,
            stamp: 0,
            lines: HashMap::new(),
        }
    }

    fn probe(&self, line: u64) -> bool {
        self.lines.contains_key(&line)
    }

    fn touch(&mut self, line: u64) {
        self.stamp += 1;
        if self.lines.len() >= self.capacity && !self.lines.contains_key(&line) {
            if let Some((&victim, _)) = self.lines.iter().min_by_key(|(_, &s)| s) {
                self.lines.remove(&victim);
            }
        }
        self.lines.insert(line, self.stamp);
    }
}

/// The offload engine: executes a stream of PIM-enabled operations under a
/// policy and accounts time per site.
#[derive(Debug)]
pub struct PeiEngine {
    costs: PeiCosts,
    policy: OffloadPolicy,
    tracker: ResidencyTracker,
    /// Operations executed at each site.
    pub host_ops: u64,
    /// Operations executed in memory.
    pub memory_ops: u64,
    /// Total time, ns.
    pub total_ns: f64,
}

impl PeiEngine {
    /// Creates an engine with a host-cache model of `cache_lines` lines.
    ///
    /// # Errors
    ///
    /// Returns [`PnmError`] if `cache_lines == 0`.
    pub fn new(
        costs: PeiCosts,
        policy: OffloadPolicy,
        cache_lines: usize,
    ) -> Result<Self, PnmError> {
        if cache_lines == 0 {
            return Err(PnmError::invalid("cache model needs at least one line"));
        }
        Ok(PeiEngine {
            costs,
            policy,
            tracker: ResidencyTracker::new(cache_lines),
            host_ops: 0,
            memory_ops: 0,
            total_ns: 0.0,
        })
    }

    /// Executes one operation on `line` (a cache-line address), returning
    /// where it ran.
    pub fn execute(&mut self, line: u64) -> ExecSite {
        let resident = self.tracker.probe(line);
        let site = match self.policy {
            OffloadPolicy::AlwaysHost => ExecSite::Host,
            OffloadPolicy::AlwaysMemory => ExecSite::Memory,
            OffloadPolicy::LocalityAware => {
                if resident {
                    ExecSite::Host
                } else {
                    ExecSite::Memory
                }
            }
        };
        match site {
            ExecSite::Host => {
                self.host_ops += 1;
                self.total_ns += if resident {
                    self.costs.host_hit_ns
                } else {
                    self.costs.host_miss_ns
                };
                // Host execution fills the cache.
                self.tracker.touch(line);
            }
            ExecSite::Memory => {
                self.memory_ops += 1;
                self.total_ns += self.costs.memory_ns;
                // PEI's locality monitor observes the access even when it
                // executes in memory, so repeatedly-touched lines migrate
                // toward host execution (the "PIM never loses to the
                // cache" property).
                if self.policy == OffloadPolicy::LocalityAware {
                    self.tracker.touch(line);
                }
            }
        }
        site
    }

    /// Mean ns per operation so far.
    #[must_use]
    pub fn avg_ns(&self) -> f64 {
        let n = self.host_ops + self.memory_ops;
        if n == 0 {
            0.0
        } else {
            self.total_ns / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn costs() -> PeiCosts {
        PeiCosts::from_stack(&StackConfig::hmc_like())
    }

    /// Runs `ops` operations over `lines` distinct lines cycled in order
    /// (locality controlled by lines vs cache capacity).
    fn run(policy: OffloadPolicy, lines: u64, ops: u64) -> f64 {
        let mut e = PeiEngine::new(costs(), policy, 1024).unwrap();
        for i in 0..ops {
            e.execute(i % lines);
        }
        e.avg_ns()
    }

    #[test]
    fn construction_validates() {
        assert!(PeiEngine::new(costs(), OffloadPolicy::AlwaysHost, 0).is_err());
    }

    #[test]
    fn high_locality_favours_host() {
        // Working set of 64 lines fits the 1024-line cache.
        let host = run(OffloadPolicy::AlwaysHost, 64, 10_000);
        let memory = run(OffloadPolicy::AlwaysMemory, 64, 10_000);
        assert!(host < memory, "cached data is fastest at the host");
    }

    #[test]
    fn low_locality_favours_memory() {
        // Working set of 1M lines thrashes any cache.
        let host = run(OffloadPolicy::AlwaysHost, 1 << 20, 20_000);
        let memory = run(OffloadPolicy::AlwaysMemory, 1 << 20, 20_000);
        assert!(memory < host, "uncached data is fastest in memory");
    }

    #[test]
    fn locality_aware_matches_the_better_side_everywhere() {
        for lines in [64u64, 4096, 1 << 20] {
            let host = run(OffloadPolicy::AlwaysHost, lines, 20_000);
            let memory = run(OffloadPolicy::AlwaysMemory, lines, 20_000);
            let adaptive = run(OffloadPolicy::LocalityAware, lines, 20_000);
            let best = host.min(memory);
            assert!(
                adaptive <= best * 1.15,
                "adaptive ({adaptive:.1}) must track the best ({best:.1}) at {lines} lines"
            );
        }
    }

    #[test]
    fn sites_are_recorded() {
        let mut e = PeiEngine::new(costs(), OffloadPolicy::LocalityAware, 16).unwrap();
        assert_eq!(
            e.execute(1),
            ExecSite::Memory,
            "first touch is not resident"
        );
        // The locality monitor saw the touch: the repeat runs at the host.
        assert_eq!(e.execute(1), ExecSite::Host);
        assert_eq!(e.memory_ops, 1);
        assert_eq!(e.host_ops, 1);
        assert!(e.avg_ns() > 0.0);
    }
}
