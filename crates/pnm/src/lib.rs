//! # ia-pnm — processing *near* memory
//!
//! The paper's second PIM approach "involves adding or integrating
//! computation units … in the logic layer of 3D-stacked memories". This
//! crate models that hardware and the three acceleration idioms the talk
//! highlights:
//!
//! * [`StackConfig`] — vaults, internal vs. external bandwidth, latency.
//! * [`PnmGraphEngine`] — Tesseract-style vertex-centric graph processing
//!   (functional PageRank/BFS + bandwidth-model timing), with the
//!   processor-centric baseline [`host_pagerank_ns`].
//! * [`traverse_pnm`] / [`traverse_host`] — in-memory pointer-chasing
//!   walkers vs. dependent external round trips.
//! * [`PeiEngine`] — PIM-enabled instructions with locality-aware
//!   host/memory offload.
//!
//! Unlike the DRAM/controller/NoC simulators, these models are
//! *analytic*: they compute bandwidth-model timing in closed form rather
//! than ticking a clock, so there is no per-cycle loop to port onto the
//! workspace's `ia-sim` event-driven engine.
//!
//! ## Example
//!
//! ```
//! use ia_pnm::{host_pagerank_ns, PnmGraphEngine, StackConfig};
//! use ia_workloads::Graph;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
//! let g = Graph::rmat(256, 2048, &mut rng)?;
//! let stack = StackConfig::hmc_like();
//! let engine = PnmGraphEngine::new(stack, &g)?;
//! let (_, report) = engine.pagerank(0.85, 5);
//! assert!(report.total_ns < host_pagerank_ns(&stack, &g, 5));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
mod graph;
mod offload;
mod pointer;
mod stack;

pub use error::PnmError;
pub use graph::{host_pagerank_ns, PnmGraphEngine, PnmRunReport};
pub use offload::{ExecSite, OffloadPolicy, PeiCosts, PeiEngine};
pub use pointer::{
    concurrent_traversals, traverse_host, traverse_pnm, LinkedChain, TraversalReport,
};
pub use stack::StackConfig;
