//! The 3D-stacked memory substrate: vaults, internal vs. external
//! bandwidth, and near-memory core parameters.
//!
//! The entire PNM value proposition is a ratio: logic in the stack sees
//! the *aggregate internal* bandwidth of all vaults through TSVs, while
//! the host sees only the *external link*. Tesseract-class speedups are
//! first-order consequences of that ratio plus lower access latency.

use crate::PnmError;

/// Physical parameters of a 3D-stacked memory + logic-layer system.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StackConfig {
    /// Number of vaults (vertical slices with their own TSV bus).
    pub vaults: usize,
    /// Internal bandwidth per vault, GB/s.
    pub internal_gbps_per_vault: f64,
    /// External host link bandwidth, GB/s (total).
    pub external_gbps: f64,
    /// Memory access latency from the logic layer, ns.
    pub internal_latency_ns: f64,
    /// Memory access latency from the host (link + controller + DRAM), ns.
    pub external_latency_ns: f64,
    /// Clock of each in-order near-memory core, GHz.
    pub core_ghz: f64,
    /// Host core clock, GHz (host cores are beefier).
    pub host_ghz: f64,
    /// Host core count.
    pub host_cores: usize,
}

impl StackConfig {
    /// An HMC-like stack: 16 vaults × 16 GB/s internal vs. a 40 GB/s
    /// external link; 2 GHz simple cores in the logic layer vs. 4 × 4 GHz
    /// host cores — the Tesseract evaluation's shape.
    #[must_use]
    pub fn hmc_like() -> Self {
        StackConfig {
            vaults: 16,
            internal_gbps_per_vault: 16.0,
            external_gbps: 40.0,
            internal_latency_ns: 50.0,
            external_latency_ns: 120.0,
            core_ghz: 2.0,
            host_ghz: 4.0,
            host_cores: 4,
        }
    }

    /// Aggregate internal bandwidth across vaults, GB/s.
    #[must_use]
    pub fn internal_gbps_total(&self) -> f64 {
        self.vaults as f64 * self.internal_gbps_per_vault
    }

    /// The bandwidth advantage of computing inside the stack.
    #[must_use]
    pub fn bandwidth_ratio(&self) -> f64 {
        self.internal_gbps_total() / self.external_gbps
    }

    /// Returns a copy with a different vault count (bandwidth per vault
    /// unchanged — more vaults, more aggregate bandwidth).
    ///
    /// # Errors
    ///
    /// Returns [`PnmError`] if `vaults == 0`.
    pub fn with_vaults(mut self, vaults: usize) -> Result<Self, PnmError> {
        if vaults == 0 {
            return Err(PnmError::invalid("stack needs at least one vault"));
        }
        self.vaults = vaults;
        Ok(self)
    }

    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns [`PnmError`] on zero vaults/cores or non-positive rates.
    pub fn validate(&self) -> Result<(), PnmError> {
        if self.vaults == 0 || self.host_cores == 0 {
            return Err(PnmError::invalid("vaults and host cores must be non-zero"));
        }
        if self.internal_gbps_per_vault <= 0.0
            || self.external_gbps <= 0.0
            || self.core_ghz <= 0.0
            || self.host_ghz <= 0.0
            || self.internal_latency_ns <= 0.0
            || self.external_latency_ns <= 0.0
        {
            return Err(PnmError::invalid("rates and latencies must be positive"));
        }
        Ok(())
    }
}

impl Default for StackConfig {
    fn default() -> Self {
        StackConfig::hmc_like()
    }
}

impl ia_telemetry::MetricSource for StackConfig {
    /// Publishes the vault/bandwidth shape of the stack — the ratio that
    /// drives every PNM result in the paper.
    fn export_into(&self, scope: &mut ia_telemetry::Scope<'_>) {
        scope.set_gauge("vaults", self.vaults as f64);
        scope.set_gauge("internal_gbps_per_vault", self.internal_gbps_per_vault);
        scope.set_gauge("internal_gbps_total", self.internal_gbps_total());
        scope.set_gauge("external_gbps", self.external_gbps);
        scope.set_gauge("bandwidth_ratio", self.bandwidth_ratio());
        scope.set_gauge("internal_latency_ns", self.internal_latency_ns);
        scope.set_gauge("external_latency_ns", self.external_latency_ns);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hmc_preset_is_valid_and_bandwidth_rich() {
        let s = StackConfig::hmc_like();
        s.validate().unwrap();
        assert!((s.internal_gbps_total() - 256.0).abs() < 1e-9);
        assert!(
            s.bandwidth_ratio() > 6.0,
            "internal bandwidth should dwarf the link"
        );
        assert!(s.internal_latency_ns < s.external_latency_ns);
    }

    #[test]
    fn export_publishes_vault_bandwidth() {
        let mut reg = ia_telemetry::Registry::new();
        reg.collect("stack", &StackConfig::hmc_like());
        let snap = reg.snapshot(0);
        assert_eq!(snap.gauge("stack.vaults"), Some(16.0));
        assert_eq!(snap.gauge("stack.internal_gbps_total"), Some(256.0));
        assert!(snap.gauge("stack.bandwidth_ratio").unwrap() > 6.0);
    }

    #[test]
    fn with_vaults_scales_bandwidth() {
        let s = StackConfig::hmc_like().with_vaults(32).unwrap();
        assert!((s.internal_gbps_total() - 512.0).abs() < 1e-9);
        assert!(StackConfig::hmc_like().with_vaults(0).is_err());
    }

    #[test]
    fn validation_rejects_degenerate_configs() {
        let mut s = StackConfig::hmc_like();
        s.external_gbps = 0.0;
        assert!(s.validate().is_err());
        let mut s = StackConfig::hmc_like();
        s.host_cores = 0;
        assert!(s.validate().is_err());
    }
}
