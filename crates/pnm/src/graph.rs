//! A Tesseract-style near-memory graph processing engine (Ahn+, ISCA
//! 2015): vertices are partitioned across vaults; each vault's logic-layer
//! core processes its own vertices against local memory and exchanges
//! messages with other vaults over the in-package network.
//!
//! The engine is functional (it really computes PageRank/BFS, validated
//! against the host reference in `ia-workloads`) and costed with the
//! bandwidth/latency model of [`StackConfig`].

use ia_workloads::Graph;

use crate::stack::StackConfig;
use crate::PnmError;

/// Bytes touched in memory per edge processed (vertex value + edge entry +
/// message buffer — the streaming traffic of vertex-centric execution).
const BYTES_PER_EDGE: f64 = 16.0;

/// Bytes of an inter-vault message (destination id + value).
const MESSAGE_BYTES: f64 = 8.0;

/// Host-core cycles of work per edge.
const HOST_CYCLES_PER_EDGE: f64 = 4.0;

/// Vault-core cycles per edge: Tesseract's cores pair a simple pipeline
/// with list prefetching and message-triggered function units, so edge
/// processing overlaps with the memory stream.
const PNM_CYCLES_PER_EDGE: f64 = 2.0;

/// Timing/traffic report of one near-memory run.
#[derive(Debug, Clone, PartialEq)]
pub struct PnmRunReport {
    /// Total execution time, ns.
    pub total_ns: f64,
    /// Number of supersteps (iterations) executed.
    pub supersteps: usize,
    /// Fraction of edges whose message crossed vault boundaries.
    pub remote_edge_fraction: f64,
    /// Edges processed in total.
    pub edges_processed: u64,
}

/// The near-memory graph engine.
///
/// # Examples
///
/// ```
/// use ia_pnm::{PnmGraphEngine, StackConfig};
/// use ia_workloads::Graph;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)])?;
/// let engine = PnmGraphEngine::new(StackConfig::hmc_like(), &g)?;
/// let (ranks, report) = engine.pagerank(0.85, 10);
/// assert_eq!(ranks.len(), 4);
/// assert!(report.total_ns > 0.0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct PnmGraphEngine<'g> {
    stack: StackConfig,
    graph: &'g Graph,
    /// vault_of[v] = vault holding vertex v (round-robin partitioning).
    vault_of: Vec<usize>,
}

impl<'g> PnmGraphEngine<'g> {
    /// Creates an engine over `graph` with degree-balanced vertex
    /// placement: vertices are assigned largest-degree-first to the vault
    /// with the least edge load (LPT), bounding the bulk-synchronous
    /// straggler that naive round-robin suffers on power-law graphs.
    ///
    /// # Errors
    ///
    /// Returns [`PnmError`] if the stack configuration is invalid.
    pub fn new(stack: StackConfig, graph: &'g Graph) -> Result<Self, PnmError> {
        stack.validate()?;
        let n = graph.vertex_count() as usize;
        let mut order: Vec<u32> = (0..graph.vertex_count()).collect();
        order.sort_by_key(|&v| std::cmp::Reverse(graph.out_degree(v)));
        let mut load = vec![0u64; stack.vaults];
        let mut count = vec![0u64; stack.vaults];
        let mut vault_of = vec![0usize; n];
        for v in order {
            let vault = (0..stack.vaults)
                .min_by_key(|&k| (load[k], count[k], k))
                // lint: allow(P001, StackConfig validation rejects vaults == 0)
                .expect("at least one vault");
            vault_of[v as usize] = vault;
            load[vault] += graph.out_degree(v) as u64;
            count[vault] += 1;
        }
        Ok(PnmGraphEngine {
            stack,
            graph,
            vault_of,
        })
    }

    /// Vault holding vertex `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn vault_of(&self, v: u32) -> usize {
        self.vault_of[v as usize]
    }

    /// Cost of one superstep in which each vault processes its local
    /// edges: the slowest vault bounds the step (bulk-synchronous).
    fn superstep_ns(&self, edges_per_vault: &[u64]) -> f64 {
        edges_per_vault
            .iter()
            .map(|&e| {
                let compute_ns = e as f64 * PNM_CYCLES_PER_EDGE / self.stack.core_ghz;
                let memory_ns = e as f64 * BYTES_PER_EDGE / self.stack.internal_gbps_per_vault;
                // In-order cores overlap poorly: take the max of the two
                // plus a fixed latency for the first access.
                compute_ns.max(memory_ns) + self.stack.internal_latency_ns
            })
            .fold(0.0, f64::max)
    }

    fn edge_distribution(&self) -> (Vec<u64>, u64, u64) {
        let mut per_vault = vec![0u64; self.stack.vaults];
        let mut remote = 0u64;
        let mut total = 0u64;
        for v in 0..self.graph.vertex_count() {
            let vault = self.vault_of[v as usize];
            for &w in self.graph.neighbors(v) {
                per_vault[vault] += 1;
                total += 1;
                if self.vault_of[w as usize] != vault {
                    remote += 1;
                }
            }
        }
        (per_vault, remote, total)
    }

    /// Runs PageRank for `iterations` supersteps, returning the ranks and
    /// the timing report. Functionally identical to
    /// [`Graph::pagerank`] — the engine only changes *where* the work runs.
    #[must_use]
    pub fn pagerank(&self, damping: f64, iterations: usize) -> (Vec<f64>, PnmRunReport) {
        let ranks = self.graph.pagerank(damping, iterations);
        let (per_vault, remote, total) = self.edge_distribution();
        let step_ns = self.superstep_ns(&per_vault);
        // Remote messages ride the in-package network: charge an extra
        // latency proportional to remote traffic over aggregate bandwidth.
        let network_ns = remote as f64 * MESSAGE_BYTES / self.stack.internal_gbps_total();
        let total_ns = (step_ns + network_ns) * iterations as f64;
        (
            ranks,
            PnmRunReport {
                total_ns,
                supersteps: iterations,
                remote_edge_fraction: if total == 0 {
                    0.0
                } else {
                    remote as f64 / total as f64
                },
                edges_processed: total * iterations as u64,
            },
        )
    }

    /// Runs BFS from `source`, returning distances and the timing report
    /// (costed as one superstep per frontier level).
    ///
    /// # Panics
    ///
    /// Panics if `source` is out of range.
    #[must_use]
    pub fn bfs(&self, source: u32) -> (Vec<u32>, PnmRunReport) {
        let dist = self.graph.bfs(source);
        let levels = dist
            .iter()
            .filter(|&&d| d != u32::MAX)
            .max()
            .copied()
            .unwrap_or(0) as usize;
        let (per_vault, remote, total) = self.edge_distribution();
        let step_ns = self.superstep_ns(&per_vault) / levels.max(1) as f64;
        let network_ns = remote as f64 * MESSAGE_BYTES / self.stack.internal_gbps_total();
        (
            dist,
            PnmRunReport {
                total_ns: step_ns * levels as f64 + network_ns,
                supersteps: levels,
                remote_edge_fraction: if total == 0 {
                    0.0
                } else {
                    remote as f64 / total as f64
                },
                edges_processed: total,
            },
        )
    }
}

/// Host (processor-centric) execution time for the same PageRank run:
/// the host cores pull every edge's data over the external link.
#[must_use]
pub fn host_pagerank_ns(stack: &StackConfig, graph: &Graph, iterations: usize) -> f64 {
    let edges = graph.edge_count() as f64;
    let compute_ns = edges * HOST_CYCLES_PER_EDGE / (stack.host_ghz * stack.host_cores as f64);
    // Irregular access defeats caching for large graphs: edge data crosses
    // the link.
    let memory_ns = edges * BYTES_PER_EDGE / stack.external_gbps;
    (compute_ns.max(memory_ns) + stack.external_latency_ns) * iterations as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn test_graph() -> Graph {
        let mut rng = SmallRng::seed_from_u64(17);
        Graph::rmat(2048, 32 * 1024, &mut rng).unwrap()
    }

    #[test]
    fn pagerank_matches_host_reference() {
        let g = test_graph();
        let engine = PnmGraphEngine::new(StackConfig::hmc_like(), &g).unwrap();
        let (pnm_ranks, _) = engine.pagerank(0.85, 20);
        let host_ranks = g.pagerank(0.85, 20);
        for (a, b) in pnm_ranks.iter().zip(&host_ranks) {
            assert!(
                (a - b).abs() < 1e-12,
                "near-memory execution must not change results"
            );
        }
    }

    #[test]
    fn bfs_matches_host_reference() {
        let g = test_graph();
        let engine = PnmGraphEngine::new(StackConfig::hmc_like(), &g).unwrap();
        let (dist, report) = engine.bfs(0);
        assert_eq!(dist, g.bfs(0));
        assert!(report.supersteps > 0);
    }

    #[test]
    fn pnm_outruns_host_on_large_graphs() {
        let g = test_graph();
        let stack = StackConfig::hmc_like();
        let engine = PnmGraphEngine::new(stack, &g).unwrap();
        let (_, report) = engine.pagerank(0.85, 10);
        let host_ns = host_pagerank_ns(&stack, &g, 10);
        let speedup = host_ns / report.total_ns;
        assert!(
            speedup > 3.0,
            "Tesseract-class speedup expected (got {speedup:.1}x)"
        );
    }

    #[test]
    fn speedup_scales_with_vault_count() {
        let g = test_graph();
        let few = StackConfig::hmc_like().with_vaults(4).unwrap();
        let many = StackConfig::hmc_like().with_vaults(32).unwrap();
        let (_, few_r) = PnmGraphEngine::new(few, &g).unwrap().pagerank(0.85, 10);
        let (_, many_r) = PnmGraphEngine::new(many, &g).unwrap().pagerank(0.85, 10);
        assert!(
            many_r.total_ns < few_r.total_ns,
            "memory-bound graph work must scale with vaults"
        );
    }

    #[test]
    fn remote_fraction_grows_with_vaults() {
        let g = test_graph();
        let one = PnmGraphEngine::new(StackConfig::hmc_like().with_vaults(1).unwrap(), &g).unwrap();
        let many = PnmGraphEngine::new(StackConfig::hmc_like(), &g).unwrap();
        let (_, r1) = one.pagerank(0.85, 1);
        let (_, rn) = many.pagerank(0.85, 1);
        assert_eq!(
            r1.remote_edge_fraction, 0.0,
            "single vault has no remote edges"
        );
        assert!(
            rn.remote_edge_fraction > 0.5,
            "round-robin spreads neighbours"
        );
    }

    #[test]
    fn round_robin_partitioning() {
        let g = Graph::from_edges(8, &[]).unwrap();
        let engine =
            PnmGraphEngine::new(StackConfig::hmc_like().with_vaults(4).unwrap(), &g).unwrap();
        assert_eq!(engine.vault_of(0), 0);
        assert_eq!(engine.vault_of(5), 1);
        assert_eq!(engine.vault_of(7), 3);
    }
}
