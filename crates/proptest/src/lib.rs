//! # ia-proptest — offline drop-in subset of the `proptest` API
//!
//! The build must work with **no registry access** (see README, "Offline
//! builds"), so the workspace renames this crate to `proptest` via a path
//! dependency. It implements the surface the in-tree property tests use:
//!
//! * the [`proptest!`] macro (with optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header),
//! * range / tuple / `any::<T>()` / [`collection::vec`] strategies,
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`],
//! * [`sample::Index`].
//!
//! Unlike real proptest there is **no shrinking** and no persisted
//! regression files: each test runs `cases` deterministic random inputs
//! (seeded from the test's module path, so failures reproduce exactly).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

use rand::rngs::SmallRng;
use rand::{Rng as _, RngCore, SeedableRng};

/// Per-test configuration: number of random cases to run.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of generated inputs per test.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

impl ProptestConfig {
    /// A config running `cases` inputs per test.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Builds the deterministic generator for one property test, seeded from
/// the test's fully-qualified name so every test draws an independent,
/// reproducible stream.
#[must_use]
pub fn rng_for(test_path: &str) -> SmallRng {
    // FNV-1a over the path.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in test_path.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    SmallRng::seed_from_u64(h)
}

/// A value generator. The subset of `proptest::strategy::Strategy` the
/// in-tree tests need: plain generation, no shrinking.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn generate<R: RngCore>(&self, rng: &mut R) -> Self::Value;
}

macro_rules! strategy_for_ranges {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate<R: RngCore>(&self, rng: &mut R) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate<R: RngCore>(&self, rng: &mut R) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
strategy_for_ranges!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! strategy_for_range_from {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::RangeFrom<$t> {
            type Value = $t;
            fn generate<R: RngCore>(&self, rng: &mut R) -> $t {
                rng.gen_range(self.start..=<$t>::MAX)
            }
        }
    )*};
}
strategy_for_range_from!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Types generatable over their whole domain via [`any`].
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! arbitrary_via_gen {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary<R: RngCore>(rng: &mut R) -> Self {
                rng.gen::<$t>()
            }
        }
    )*};
}
arbitrary_via_gen!(bool, u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64, f32);

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(PhantomData<T>);

/// A strategy producing any value of `T` (full domain for integers and
/// `bool`, unit interval for floats — matching how the in-tree tests use
/// `any`).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate<R: RngCore>(&self, rng: &mut R) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! strategy_for_tuples {
    ($(($($n:ident $i:tt),+))*) => {$(
        impl<$($n: Strategy),+> Strategy for ($($n,)+) {
            type Value = ($($n::Value,)+);
            fn generate<R: RngCore>(&self, rng: &mut R) -> Self::Value {
                ($(self.$i.generate(rng),)+)
            }
        }
    )*};
}
strategy_for_tuples! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
    (A 0, B 1, C 2, D 3, E 4)
}

/// Collection strategies (`prop::collection::vec`).
pub mod collection {
    use super::{Range, RngCore, Strategy};
    use rand::Rng as _;

    /// Vector lengths: a fixed size or a size range.
    #[derive(Debug, Clone)]
    pub enum SizeRange {
        /// Exactly this many elements.
        Fixed(usize),
        /// A uniformly drawn length in `[start, end)`.
        Span(usize, usize),
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange::Fixed(n)
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange::Span(r.start, r.end)
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> Self {
            SizeRange::Span(*r.start(), r.end().saturating_add(1))
        }
    }

    /// Strategy for `Vec<S::Value>` with a random or fixed length.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// A vector strategy: `size` may be a `usize` or a `Range<usize>`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate<R: RngCore>(&self, rng: &mut R) -> Self::Value {
            let len = match self.size {
                SizeRange::Fixed(n) => n,
                SizeRange::Span(lo, hi) => {
                    assert!(lo < hi, "empty vec size range");
                    rng.gen_range(lo..hi)
                }
            };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `HashSet`s: generates up to the requested number of
    /// elements, deduplicated (the size bound is an upper bound, matching
    /// proptest's semantics of "size" as a target, not a guarantee).
    #[derive(Debug, Clone)]
    pub struct HashSetStrategy<S> {
        inner: VecStrategy<S>,
    }

    /// A `HashSet` strategy.
    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: std::hash::Hash + Eq,
    {
        HashSetStrategy {
            inner: vec(element, size),
        }
    }

    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: std::hash::Hash + Eq,
    {
        type Value = std::collections::HashSet<S::Value>;
        fn generate<R: RngCore>(&self, rng: &mut R) -> Self::Value {
            self.inner.generate(rng).into_iter().collect()
        }
    }

    /// Strategy for `BTreeSet`s; same size semantics as [`hash_set`].
    #[derive(Debug, Clone)]
    pub struct BTreeSetStrategy<S> {
        inner: VecStrategy<S>,
    }

    /// A `BTreeSet` strategy.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy {
            inner: vec(element, size),
        }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = std::collections::BTreeSet<S::Value>;
        fn generate<R: RngCore>(&self, rng: &mut R) -> Self::Value {
            self.inner.generate(rng).into_iter().collect()
        }
    }
}

/// Fixed-size array strategies (`prop::array::uniform32`).
pub mod array {
    use super::{RngCore, Strategy};

    /// Strategy producing `[S::Value; N]`.
    #[derive(Debug, Clone)]
    pub struct UniformArrayStrategy<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for UniformArrayStrategy<S, N> {
        type Value = [S::Value; N];
        fn generate<R: RngCore>(&self, rng: &mut R) -> Self::Value {
            std::array::from_fn(|_| self.element.generate(rng))
        }
    }

    macro_rules! uniform_arrays {
        ($($name:ident => $n:literal),*) => {$(
            /// An array strategy of this fixed length.
            pub fn $name<S: Strategy>(element: S) -> UniformArrayStrategy<S, $n> {
                UniformArrayStrategy { element }
            }
        )*};
    }
    uniform_arrays!(uniform4 => 4, uniform8 => 8, uniform16 => 16,
                    uniform32 => 32, uniform64 => 64);
}

/// Sampling helpers (`prop::sample::Index`).
pub mod sample {
    use super::{Arbitrary, RngCore};
    use rand::Rng as _;

    /// An index into a collection of yet-unknown length, resolved with
    /// [`Index::index`]. Mirrors `proptest::sample::Index`.
    #[derive(Debug, Clone, Copy)]
    pub struct Index {
        raw: usize,
    }

    impl Index {
        /// Resolves against a collection of `len` elements (`len > 0`).
        #[must_use]
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            self.raw % len
        }
    }

    impl Arbitrary for Index {
        fn arbitrary<R: RngCore>(rng: &mut R) -> Self {
            Index {
                raw: rng.gen::<usize>(),
            }
        }
    }
}

/// Everything the tests import with `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{Arbitrary, ProptestConfig, Strategy};
    pub use rand::Rng as _;
}

/// Asserts a condition inside a property test (panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test (panics like `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test (panics like `assert_ne!`).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return;
        }
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `cases` random inputs.
#[macro_export]
macro_rules! proptest {
    (@run ($cfg:expr) $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng =
                    $crate::rng_for(concat!(module_path!(), "::", stringify!($name)));
                for _case in 0..config.cases {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    // The closure gives `prop_assume!` an early-exit that
                    // skips just this case. `mut` is only exercised when
                    // the body mutates a capture, which varies per test.
                    #[allow(unused_mut)]
                    let mut case = || $body;
                    case();
                }
            }
        )*
    };
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@run ($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@run ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn ranges_hold(a in 3u64..10, b in -2i32..=2, f in 0.5f64..1.0) {
            prop_assert!((3..10).contains(&a));
            prop_assert!((-2..=2).contains(&b));
            prop_assert!((0.5..1.0).contains(&f));
        }

        #[test]
        fn vec_and_tuple_strategies(
            v in prop::collection::vec((0u32..4, any::<bool>()), 2..6),
            w in prop::collection::vec(0u8..8, 3),
            idx in any::<prop::sample::Index>(),
        ) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert_eq!(w.len(), 3);
            prop_assert!(v.iter().all(|(x, _)| *x < 4));
            prop_assert!(idx.index(v.len()) < v.len());
        }

        #[test]
        fn assume_skips(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn rng_for_is_deterministic_and_distinct() {
        use rand::RngCore as _;
        let mut a = crate::rng_for("x::y");
        let mut b = crate::rng_for("x::y");
        let mut c = crate::rng_for("x::z");
        let (va, vb, vc) = (a.next_u64(), b.next_u64(), c.next_u64());
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }
}
