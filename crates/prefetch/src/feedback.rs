//! Feedback-directed prefetching (Srinath+, HPCA 2007): measure prefetch
//! accuracy online and throttle aggressiveness accordingly — one of the
//! earliest controllers to make a *data-driven* decision about its own
//! policy.

use crate::stride::StridePrefetcher;
use crate::Prefetcher;

/// A stride prefetcher whose degree is governed by measured accuracy.
#[derive(Debug, Clone)]
pub struct FeedbackDirected {
    inner: StridePrefetcher,
    useful: u64,
    useless: u64,
    /// Feedback events per adjustment interval.
    interval: u64,
    seen: u64,
    /// Accuracy thresholds: above `hi` grow the degree, below `lo` shrink.
    hi: f64,
    lo: f64,
    adjustments: u64,
}

impl FeedbackDirected {
    /// Creates a feedback-directed prefetcher starting at `degree`.
    #[must_use]
    pub fn new(degree: u64) -> Self {
        FeedbackDirected {
            inner: StridePrefetcher::new(degree),
            useful: 0,
            useless: 0,
            interval: 128,
            seen: 0,
            hi: 0.75,
            lo: 0.40,
            adjustments: 0,
        }
    }

    /// Current degree.
    #[must_use]
    pub fn degree(&self) -> u64 {
        self.inner.degree()
    }

    /// Number of degree adjustments made so far.
    #[must_use]
    pub fn adjustments(&self) -> u64 {
        self.adjustments
    }

    /// Accuracy over the current interval.
    #[must_use]
    pub fn interval_accuracy(&self) -> f64 {
        let total = self.useful + self.useless;
        if total == 0 {
            0.0
        } else {
            self.useful as f64 / total as f64
        }
    }
}

impl Prefetcher for FeedbackDirected {
    fn name(&self) -> &'static str {
        "feedback-directed"
    }

    fn observe(&mut self, line: u64, miss: bool) -> Vec<u64> {
        self.inner.observe(line, miss)
    }

    fn feedback(&mut self, _line: u64, useful: bool) {
        if useful {
            self.useful += 1;
        } else {
            self.useless += 1;
        }
        self.seen += 1;
        if self.seen >= self.interval {
            let acc = self.interval_accuracy();
            let d = self.inner.degree();
            if acc > self.hi {
                self.inner.set_degree(d * 2);
            } else if acc < self.lo {
                self.inner.set_degree(d / 2);
            }
            if self.inner.degree() != d {
                self.adjustments += 1;
            }
            self.useful = 0;
            self.useless = 0;
            self.seen = 0;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accurate_feedback_grows_the_degree() {
        let mut p = FeedbackDirected::new(2);
        for i in 0..200 {
            p.feedback(i, true);
        }
        assert!(
            p.degree() > 2,
            "high accuracy should raise degree, got {}",
            p.degree()
        );
        assert!(p.adjustments() >= 1);
    }

    #[test]
    fn useless_feedback_shrinks_the_degree() {
        let mut p = FeedbackDirected::new(8);
        for i in 0..300 {
            p.feedback(i, false);
        }
        assert!(
            p.degree() < 8,
            "low accuracy should cut degree, got {}",
            p.degree()
        );
    }

    #[test]
    fn mixed_feedback_holds_steady() {
        let mut p = FeedbackDirected::new(4);
        for i in 0..256 {
            p.feedback(i, i % 2 == 0); // 50% accuracy: between thresholds
        }
        assert_eq!(p.degree(), 4);
    }

    #[test]
    fn degree_never_leaves_bounds() {
        let mut p = FeedbackDirected::new(1);
        for i in 0..10_000 {
            p.feedback(i, true);
        }
        assert!(p.degree() <= 64);
        let mut p = FeedbackDirected::new(64);
        for i in 0..10_000 {
            p.feedback(i, false);
        }
        assert!(p.degree() >= 1);
    }

    #[test]
    fn observe_delegates_to_stride_core() {
        let mut p = FeedbackDirected::new(1);
        p.observe(10, true);
        p.observe(11, true);
        assert_eq!(p.observe(12, true), vec![13]);
        assert_eq!(p.name(), "feedback-directed");
    }
}
