//! Fixed-heuristic prefetchers: next-line and region-based stride
//! detection.

use crate::Prefetcher;

/// Prefetches the next `degree` sequential lines on every miss.
#[derive(Debug, Clone)]
pub struct NextLinePrefetcher {
    degree: u64,
}

impl NextLinePrefetcher {
    /// Creates a next-line prefetcher of the given degree (≥ 1).
    #[must_use]
    pub fn new(degree: u64) -> Self {
        NextLinePrefetcher {
            degree: degree.max(1),
        }
    }
}

impl Prefetcher for NextLinePrefetcher {
    fn name(&self) -> &'static str {
        "next-line"
    }

    fn observe(&mut self, line: u64, miss: bool) -> Vec<u64> {
        if miss {
            (1..=self.degree).map(|d| line + d).collect()
        } else {
            Vec::new()
        }
    }
}

/// Region-based stride detection (a reference-prediction table keyed by
/// 4 KiB region in lieu of a PC): after two accesses with a repeating
/// delta in the same region, prefetch `degree` lines ahead along it.
#[derive(Debug, Clone)]
pub struct StridePrefetcher {
    degree: u64,
    /// region → (last line, last delta, confidence).
    table: std::collections::HashMap<u64, (u64, i64, u8)>,
    capacity: usize,
}

impl StridePrefetcher {
    /// Creates a stride prefetcher of the given degree.
    #[must_use]
    pub fn new(degree: u64) -> Self {
        StridePrefetcher {
            degree: degree.max(1),
            table: std::collections::HashMap::new(),
            capacity: 256,
        }
    }

    /// Current prefetch degree.
    #[must_use]
    pub fn degree(&self) -> u64 {
        self.degree
    }

    /// Adjusts the degree (used by feedback-directed control).
    pub fn set_degree(&mut self, degree: u64) {
        self.degree = degree.clamp(1, 64);
    }
}

impl Prefetcher for StridePrefetcher {
    fn name(&self) -> &'static str {
        "stride"
    }

    fn observe(&mut self, line: u64, _miss: bool) -> Vec<u64> {
        let region = line >> 6; // 64 lines = 4 KiB regions
        if self.table.len() >= self.capacity && !self.table.contains_key(&region) {
            self.table.clear(); // cheap bulk invalidation, as hardware does
        }
        let entry = self.table.entry(region).or_insert((line, 0, 0));
        let delta = line as i64 - entry.0 as i64;
        let (confident, stride) = if delta != 0 && delta == entry.1 {
            entry.2 = entry.2.saturating_add(1);
            (entry.2 >= 1, delta)
        } else {
            entry.2 = 0;
            (false, 0)
        };
        entry.0 = line;
        entry.1 = delta;
        if confident && stride != 0 {
            (1..=self.degree)
                .filter_map(|d| {
                    let target = line as i64 + stride * d as i64;
                    (target >= 0).then_some(target as u64)
                })
                .collect()
        } else {
            Vec::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_line_prefetches_on_miss_only() {
        let mut p = NextLinePrefetcher::new(2);
        assert_eq!(p.observe(10, true), vec![11, 12]);
        assert!(p.observe(10, false).is_empty());
        assert_eq!(p.name(), "next-line");
    }

    #[test]
    fn stride_detects_unit_stride() {
        let mut p = StridePrefetcher::new(2);
        assert!(p.observe(100, true).is_empty(), "first access trains");
        assert!(p.observe(101, true).is_empty(), "second sets the delta");
        let out = p.observe(102, true);
        assert_eq!(out, vec![103, 104], "third confirms and prefetches");
    }

    #[test]
    fn stride_detects_negative_and_large_strides() {
        let mut p = StridePrefetcher::new(1);
        p.observe(100, true);
        p.observe(97, true);
        let out = p.observe(94, true);
        assert_eq!(out, vec![91]);
    }

    #[test]
    fn stride_resets_on_broken_pattern() {
        let mut p = StridePrefetcher::new(1);
        p.observe(10, true);
        p.observe(11, true);
        assert!(!p.observe(12, true).is_empty());
        assert!(p.observe(40, true).is_empty(), "pattern broken");
        assert!(p.observe(41, true).is_empty(), "retraining");
        assert!(!p.observe(42, true).is_empty());
    }

    #[test]
    fn regions_are_independent() {
        let mut p = StridePrefetcher::new(1);
        // Interleave two regions with different strides.
        p.observe(0, true);
        p.observe(1000, true);
        p.observe(1, true);
        p.observe(1002, true);
        assert_eq!(p.observe(2, true), vec![3]);
        assert_eq!(p.observe(1004, true), vec![1006]);
    }

    #[test]
    fn degree_is_clamped() {
        let mut p = StridePrefetcher::new(4);
        p.set_degree(0);
        assert_eq!(p.degree(), 1);
        p.set_degree(1000);
        assert_eq!(p.degree(), 64);
    }
}
