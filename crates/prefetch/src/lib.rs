//! # ia-prefetch — hardware prefetchers, fixed and adaptive
//!
//! The paper (§III) lists the prefetch controller alongside the memory
//! controller as a component that "sees a vast amount of data and makes a
//! vast number of decisions … yet is incapable of learning from that
//! data". This crate implements the lineage the paper cites:
//!
//! * [`NextLinePrefetcher`], [`StridePrefetcher`] — fixed heuristics.
//! * [`GhbPrefetcher`] — Global History Buffer delta correlation
//!   (Nesbit & Smith, HPCA 2004).
//! * [`FeedbackDirected`] — accuracy-driven aggressiveness control
//!   (Srinath+, HPCA 2007): an early data-driven controller.
//! * [`PerceptronFilter`] — perceptron-based prefetch filtering
//!   (Bhatia+, ISCA 2019): the learning generation.
//! * [`PrefetchHarness`] — drives any prefetcher against a demand stream
//!   through a real cache and measures coverage/accuracy.
//!
//! ## Example
//!
//! ```
//! use ia_prefetch::{PrefetchHarness, StridePrefetcher};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut h = PrefetchHarness::new(16 * 1024, 64, 4, Box::new(StridePrefetcher::new(4)))?;
//! for i in 0..2000u64 {
//!     h.demand(i * 64);
//! }
//! assert!(h.metrics().coverage() > 0.5, "a stride prefetcher must cover a stream");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod feedback;
mod ghb;
mod harness;
pub mod runahead;
mod stride;

pub use feedback::FeedbackDirected;
pub use ghb::GhbPrefetcher;
pub use harness::{PrefetchHarness, PrefetchMetrics};
pub use stride::{NextLinePrefetcher, StridePrefetcher};

use ia_learn::Perceptron;

/// A hardware prefetcher observing the demand-miss address stream.
pub trait Prefetcher: std::fmt::Debug {
    /// Name for reports.
    fn name(&self) -> &'static str;

    /// Observes a demand access (line address) and whether it missed;
    /// returns line addresses to prefetch.
    fn observe(&mut self, line: u64, miss: bool) -> Vec<u64>;

    /// Feedback: a previously-issued prefetch for `line` proved useful
    /// (`true`) or was evicted unused (`false`).
    fn feedback(&mut self, _line: u64, _useful: bool) {}
}

/// Perceptron-based prefetch filter: wraps any prefetcher and suppresses
/// the prefetches the perceptron predicts to be useless, learning from
/// the harness's usefulness feedback.
#[derive(Debug)]
pub struct PerceptronFilter<P> {
    inner: P,
    perceptron: Perceptron,
    /// Suppressed prefetch count.
    pub suppressed: u64,
    /// Features of in-flight prefetches, by line.
    inflight: std::collections::HashMap<u64, Vec<bool>>,
}

impl<P: Prefetcher> PerceptronFilter<P> {
    /// Wraps `inner` with a freshly-initialized filter.
    ///
    /// # Panics
    ///
    /// Never panics; the feature width is static.
    #[must_use]
    pub fn new(inner: P) -> Self {
        PerceptronFilter {
            inner,
            // lint: allow(P001, static width 8 is always a valid perceptron size)
            perceptron: Perceptron::new(8).expect("static width"),
            suppressed: 0,
            inflight: std::collections::HashMap::new(),
        }
    }

    fn features(line: u64, distance: i64) -> Vec<bool> {
        // Low line bits + distance sign/magnitude: the compact feature set
        // hardware filters hash from the request.
        let mut f = Vec::with_capacity(8);
        for i in 0..4 {
            f.push(line >> i & 1 == 1);
        }
        f.push(distance > 0);
        f.push(distance.unsigned_abs() > 1);
        f.push(distance.unsigned_abs() > 4);
        f.push(distance.unsigned_abs() > 16);
        f
    }
}

impl<P: Prefetcher> Prefetcher for PerceptronFilter<P> {
    fn name(&self) -> &'static str {
        "perceptron-filtered"
    }

    fn observe(&mut self, line: u64, miss: bool) -> Vec<u64> {
        let candidates = self.inner.observe(line, miss);
        candidates
            .into_iter()
            .filter(|&c| {
                let features = Self::features(c, c as i64 - line as i64);
                let keep = self.perceptron.predict(&features).taken
                    || self.perceptron.predict(&features).output.abs() < 20;
                if keep {
                    self.inflight.insert(c, features);
                } else {
                    self.suppressed += 1;
                }
                keep
            })
            .collect()
    }

    fn feedback(&mut self, line: u64, useful: bool) {
        if let Some(features) = self.inflight.remove(&line) {
            self.perceptron.train(&features, useful);
        }
        self.inner.feedback(line, useful);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_learns_to_suppress_useless_prefetches() {
        // Inner prefetcher that always suggests a useless far line and a
        // useful next line.
        #[derive(Debug)]
        struct Noisy;
        impl Prefetcher for Noisy {
            fn name(&self) -> &'static str {
                "noisy"
            }
            fn observe(&mut self, line: u64, _miss: bool) -> Vec<u64> {
                vec![line + 1, line + 1000]
            }
        }
        let mut f = PerceptronFilter::new(Noisy);
        for i in 0..3000u64 {
            let issued = f.observe(i * 2, true);
            for p in issued {
                // The +1 prefetches are useful, the +1000 ones never are.
                f.feedback(p, p == i * 2 + 1);
            }
        }
        assert!(
            f.suppressed > 500,
            "filter should learn to drop the far line: {}",
            f.suppressed
        );
        // After training, a fresh observation should keep the near line.
        let kept = f.observe(1 << 20, true);
        assert!(
            kept.contains(&((1 << 20) + 1)),
            "useful near prefetch survived: {kept:?}"
        );
    }

    #[test]
    fn filter_name() {
        #[derive(Debug)]
        struct Nop;
        impl Prefetcher for Nop {
            fn name(&self) -> &'static str {
                "nop"
            }
            fn observe(&mut self, _line: u64, _miss: bool) -> Vec<u64> {
                vec![]
            }
        }
        assert_eq!(PerceptronFilter::new(Nop).name(), "perceptron-filtered");
    }
}
