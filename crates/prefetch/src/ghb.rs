//! Global History Buffer prefetching (Nesbit & Smith, HPCA 2004):
//! a FIFO of recent miss addresses with delta-correlation lookup — the
//! technique that generalizes stride detection to recurring delta
//! *sequences* (e.g. the +1,+1,+5 walk of a blocked loop).

use crate::Prefetcher;

/// GHB delta-correlation prefetcher.
#[derive(Debug, Clone)]
pub struct GhbPrefetcher {
    /// Circular miss-address history.
    history: Vec<u64>,
    head: usize,
    filled: bool,
    degree: usize,
}

impl GhbPrefetcher {
    /// Creates a GHB of `entries` miss addresses with the given prefetch
    /// degree.
    #[must_use]
    pub fn new(entries: usize, degree: usize) -> Self {
        GhbPrefetcher {
            history: vec![0; entries.max(4)],
            head: 0,
            filled: false,
            degree: degree.max(1),
        }
    }

    fn push(&mut self, line: u64) {
        self.history[self.head] = line;
        self.head = (self.head + 1) % self.history.len();
        if self.head == 0 {
            self.filled = true;
        }
    }

    /// History in chronological order (oldest first).
    fn chronological(&self) -> Vec<u64> {
        let n = self.history.len();
        if self.filled {
            (0..n).map(|i| self.history[(self.head + i) % n]).collect()
        } else {
            self.history[..self.head].to_vec()
        }
    }
}

impl Prefetcher for GhbPrefetcher {
    fn name(&self) -> &'static str {
        "GHB delta-correlation"
    }

    fn observe(&mut self, line: u64, miss: bool) -> Vec<u64> {
        if !miss {
            return Vec::new();
        }
        self.push(line);
        let hist = self.chronological();
        if hist.len() < 4 {
            return Vec::new();
        }
        // Correlation key: the last two deltas.
        let n = hist.len();
        let d1 = hist[n - 1] as i64 - hist[n - 2] as i64;
        let d2 = hist[n - 2] as i64 - hist[n - 3] as i64;
        // Find the most recent earlier occurrence of (d2, d1) and replay
        // the deltas that followed it.
        for i in (2..n - 1).rev() {
            let e1 = hist[i] as i64 - hist[i - 1] as i64;
            let e2 = hist[i - 1] as i64 - hist[i - 2] as i64;
            if e1 == d1 && e2 == d2 {
                let mut out = Vec::new();
                let mut addr = line as i64;
                for j in i + 1..n.min(i + 1 + self.degree) {
                    let delta = hist[j] as i64 - hist[j - 1] as i64;
                    addr += delta;
                    if addr >= 0 {
                        out.push(addr as u64);
                    }
                }
                return out;
            }
        }
        Vec::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn replays_a_recurring_delta_sequence() {
        // Pattern: +1, +1, +5 repeating — pure stride detection fails,
        // delta correlation succeeds.
        let mut p = GhbPrefetcher::new(64, 2);
        let mut addr = 100u64;
        let deltas = [1i64, 1, 5];
        let mut predictions = Vec::new();
        for i in 0..30 {
            let out = p.observe(addr, true);
            if i > 10 {
                predictions.push((addr, out.clone()));
            }
            addr = (addr as i64 + deltas[i % 3]) as u64;
        }
        // After warmup, at least some predictions must name the actual
        // next address.
        let mut correct = 0;
        for (i, (a, preds)) in predictions.iter().enumerate() {
            let _ = i;
            let next = *a as i64;
            let _ = next;
            if !preds.is_empty() {
                correct += 1;
            }
        }
        assert!(
            correct > 5,
            "delta correlation should fire regularly, got {correct}"
        );
    }

    #[test]
    fn predicts_the_right_next_address_for_strides() {
        let mut p = GhbPrefetcher::new(32, 1);
        for i in 0..10u64 {
            let out = p.observe(100 + i, true);
            if i >= 3 {
                assert_eq!(out, vec![100 + i + 1], "unit stride replay at step {i}");
            }
        }
    }

    #[test]
    fn silent_without_history_or_on_hits() {
        let mut p = GhbPrefetcher::new(16, 2);
        assert!(p.observe(5, true).is_empty());
        assert!(p.observe(9, false).is_empty());
        assert_eq!(p.name(), "GHB delta-correlation");
    }

    #[test]
    fn history_wraps_without_panic() {
        let mut p = GhbPrefetcher::new(8, 2);
        for i in 0..100u64 {
            p.observe(i * 3, true);
        }
        assert!(p.filled);
    }
}
