//! The prefetch evaluation harness: demand stream → cache + prefetcher,
//! measuring the standard coverage/accuracy metrics.

use std::collections::HashSet;

use ia_cache::{Cache, CacheError, CacheOp};

use crate::Prefetcher;

/// Standard prefetcher quality metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct PrefetchMetrics {
    /// Demand accesses observed.
    pub demands: u64,
    /// Demand misses that went to memory (not covered by a prefetch).
    pub uncovered_misses: u64,
    /// Demand misses avoided because a prefetch brought the line early.
    pub covered_misses: u64,
    /// Prefetches issued.
    pub issued: u64,
    /// Prefetches that were used by a demand before eviction.
    pub useful: u64,
    /// Prefetches evicted unused.
    pub useless: u64,
}

impl PrefetchMetrics {
    /// Coverage: fraction of would-be misses eliminated, in [0, 1].
    #[must_use]
    pub fn coverage(&self) -> f64 {
        let total = self.covered_misses + self.uncovered_misses;
        if total == 0 {
            0.0
        } else {
            self.covered_misses as f64 / total as f64
        }
    }

    /// Accuracy: fraction of issued prefetches that proved useful.
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        let resolved = self.useful + self.useless;
        if resolved == 0 {
            0.0
        } else {
            self.useful as f64 / resolved as f64
        }
    }
}

/// Drives a prefetcher against a cache with a demand stream.
#[derive(Debug)]
pub struct PrefetchHarness {
    cache: Cache,
    prefetcher: Box<dyn Prefetcher>,
    /// Lines currently resident because of an (unused) prefetch.
    prefetched: HashSet<u64>,
    line_bytes: u64,
    metrics: PrefetchMetrics,
}

impl PrefetchHarness {
    /// Creates a harness over a cache of the given geometry.
    ///
    /// # Errors
    ///
    /// Propagates [`CacheError`] from cache construction.
    pub fn new(
        cache_bytes: u64,
        line_bytes: u64,
        ways: usize,
        prefetcher: Box<dyn Prefetcher>,
    ) -> Result<Self, CacheError> {
        Ok(PrefetchHarness {
            cache: Cache::new(cache_bytes, line_bytes, ways)?,
            prefetcher,
            prefetched: HashSet::new(),
            line_bytes,
            metrics: PrefetchMetrics::default(),
        })
    }

    /// The prefetcher's name.
    #[must_use]
    pub fn prefetcher_name(&self) -> &'static str {
        self.prefetcher.name()
    }

    /// Metrics so far.
    #[must_use]
    pub fn metrics(&self) -> &PrefetchMetrics {
        &self.metrics
    }

    fn note_evictions(&mut self, evicted: Option<u64>) {
        if let Some(addr) = evicted {
            let line = addr / self.line_bytes;
            if self.prefetched.remove(&line) {
                self.metrics.useless += 1;
                self.prefetcher.feedback(line, false);
            }
        }
    }

    /// Issues one demand access (byte address).
    pub fn demand(&mut self, addr: u64) {
        let line = addr / self.line_bytes;
        self.metrics.demands += 1;
        let was_prefetched = self.prefetched.remove(&line);
        let resident = self.cache.contains(addr);
        match (resident, was_prefetched) {
            (true, true) => {
                self.metrics.covered_misses += 1;
                self.metrics.useful += 1;
                self.prefetcher.feedback(line, true);
            }
            (true, false) => {}
            (false, _) => {
                self.metrics.uncovered_misses += 1;
            }
        }
        let access = self.cache.access(addr, CacheOp::Read);
        self.note_evictions(access.evicted);

        // The prefetcher sees the demand stream with hit/miss outcome.
        for target in self.prefetcher.observe(line, !resident) {
            let target_addr = target * self.line_bytes;
            if self.cache.contains(target_addr) || self.prefetched.contains(&target) {
                continue;
            }
            self.metrics.issued += 1;
            self.prefetched.insert(target);
            let fill = self
                .cache
                .access_with_priority(target_addr, CacheOp::Read, Some(false));
            self.note_evictions(fill.evicted);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{FeedbackDirected, GhbPrefetcher, NextLinePrefetcher, StridePrefetcher};

    fn run_stream(prefetcher: Box<dyn Prefetcher>, n: u64) -> PrefetchMetrics {
        let mut h = PrefetchHarness::new(8 * 1024, 64, 4, prefetcher).expect("valid cache");
        for i in 0..n {
            h.demand(i * 64);
        }
        *h.metrics()
    }

    #[test]
    fn stride_prefetcher_covers_a_stream() {
        let m = run_stream(Box::new(StridePrefetcher::new(4)), 2000);
        assert!(m.coverage() > 0.7, "coverage {:.2}", m.coverage());
        assert!(m.accuracy() > 0.8, "accuracy {:.2}", m.accuracy());
    }

    #[test]
    fn next_line_covers_a_stream_with_degree_cost() {
        let m = run_stream(Box::new(NextLinePrefetcher::new(2)), 2000);
        assert!(m.coverage() > 0.5, "coverage {:.2}", m.coverage());
    }

    #[test]
    fn ghb_covers_a_stream() {
        let m = run_stream(Box::new(GhbPrefetcher::new(64, 4)), 2000);
        assert!(m.coverage() > 0.5, "coverage {:.2}", m.coverage());
    }

    #[test]
    fn random_traffic_yields_low_accuracy_for_next_line() {
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
        let mut h = PrefetchHarness::new(8 * 1024, 64, 4, Box::new(NextLinePrefetcher::new(2)))
            .expect("valid cache");
        for _ in 0..4000 {
            h.demand(rng.gen_range(0u64..(1 << 24)) & !63);
        }
        assert!(
            h.metrics().accuracy() < 0.2,
            "accuracy {:.2}",
            h.metrics().accuracy()
        );
        assert!(h.metrics().coverage() < 0.2);
    }

    #[test]
    fn feedback_directed_throttles_on_random_traffic() {
        use rand::Rng;
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(4);
        let mut h = PrefetchHarness::new(8 * 1024, 64, 4, Box::new(FeedbackDirected::new(8)))
            .expect("valid cache");
        for _ in 0..2000 {
            // Short runs of 3 then a jump: some prefetches fire, most are
            // useless, accuracy feedback should shrink the degree.
            let base = rng.gen_range(0u64..(1 << 24)) & !63;
            for k in 0..3 {
                h.demand(base + k * 64);
            }
        }
        // We can't reach into the box; re-run with a concrete instance.
        let mut fd = FeedbackDirected::new(8);
        let mut h2 = PrefetchHarness::new(8 * 1024, 64, 4, Box::new(fd.clone())).expect("valid");
        let _ = &mut fd;
        for _ in 0..2000 {
            let base = rng.gen_range(0u64..(1 << 24)) & !63;
            for k in 0..3 {
                h2.demand(base + k * 64);
            }
        }
        // The observable consequence of throttling: fewer issued
        // prefetches per demand than the stream case.
        let per_demand = h2.metrics().issued as f64 / h2.metrics().demands as f64;
        assert!(per_demand < 2.0, "issued/demand {per_demand:.2}");
    }

    #[test]
    fn metrics_bounds() {
        let m = run_stream(Box::new(StridePrefetcher::new(2)), 500);
        assert!(m.coverage() <= 1.0 && m.coverage() >= 0.0);
        assert!(m.accuracy() <= 1.0 && m.accuracy() >= 0.0);
        assert_eq!(m.demands, 500);
        assert!(m.useful + m.useless <= m.issued);
    }
}
