//! Runahead execution (Mutlu+, HPCA 2003 — the paper's own "top-down
//! pull" citation \[154\]): when the core stalls on a long-latency miss,
//! keep executing speculatively past it; independent loads discovered in
//! the runahead window become prefetches, converting serialized misses
//! into overlapped ones.
//!
//! The model executes an instruction trace in which some instructions are
//! memory loads, each either *independent* or *dependent on the previous
//! load's value* (dependent loads cannot be prefetched by runahead —
//! exactly why pointer chasing needs the PNM walkers instead).

/// One instruction of the synthetic trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// Non-memory work (1 cycle).
    Compute,
    /// A load that misses the caches; `dependent` = needs the previous
    /// load's result to compute its address.
    MissLoad {
        /// Whether the address depends on the previous load.
        dependent: bool,
    },
}

/// Core model parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CoreModel {
    /// Memory latency of a miss, cycles.
    pub miss_latency: u64,
    /// Instructions the core can examine while in runahead mode
    /// (0 = runahead disabled: a plain in-order stall-on-miss core).
    pub runahead_window: usize,
}

/// Executes the trace and returns total cycles.
///
/// Stall-on-miss semantics: each miss costs `miss_latency` serially.
/// With runahead, the window following a miss is scanned; every
/// *independent* miss found there is prefetched and later costs nothing
/// (its latency fully overlaps the triggering miss).
#[must_use]
pub fn execute(trace: &[Instr], core: CoreModel) -> u64 {
    let mut cycles = 0u64;
    let mut prefetched = vec![false; trace.len()];
    let mut i = 0usize;
    while i < trace.len() {
        match trace[i] {
            Instr::Compute => cycles += 1,
            Instr::MissLoad { .. } => {
                if prefetched[i] {
                    // Data already in flight from an earlier runahead.
                    cycles += 1;
                } else {
                    cycles += core.miss_latency;
                    // Enter runahead under the stall: scan ahead, marking
                    // independent misses as prefetched. A dependent load
                    // ends the useful part of the chain behind it but the
                    // scan continues (runahead skips invalid results).
                    let mut scanned = 0usize;
                    let mut j = i + 1;
                    while scanned < core.runahead_window && j < trace.len() {
                        if let Instr::MissLoad { dependent } = trace[j] {
                            if !dependent {
                                prefetched[j] = true;
                            }
                        }
                        scanned += 1;
                        j += 1;
                    }
                }
            }
        }
        i += 1;
    }
    cycles
}

/// Convenience: builds a trace of `loads` misses separated by `gap`
/// compute instructions, with the given fraction of dependent loads
/// (deterministically interleaved).
#[must_use]
pub fn build_trace(loads: usize, gap: usize, dependent_per_mille: u32) -> Vec<Instr> {
    let mut t = Vec::with_capacity(loads * (gap + 1));
    let mut acc = 0u32;
    for _ in 0..loads {
        for _ in 0..gap {
            t.push(Instr::Compute);
        }
        acc += dependent_per_mille;
        let dependent = acc >= 1000;
        if dependent {
            acc -= 1000;
        }
        t.push(Instr::MissLoad { dependent });
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    const CORE: CoreModel = CoreModel {
        miss_latency: 200,
        runahead_window: 64,
    };
    const STALLING: CoreModel = CoreModel {
        miss_latency: 200,
        runahead_window: 0,
    };

    #[test]
    fn stall_core_serializes_every_miss() {
        let trace = build_trace(10, 5, 0);
        let cycles = execute(&trace, STALLING);
        assert_eq!(cycles, 10 * 200 + 10 * 5);
    }

    #[test]
    fn runahead_overlaps_independent_misses() {
        let trace = build_trace(100, 5, 0);
        let stall = execute(&trace, STALLING);
        let runahead = execute(&trace, CORE);
        let speedup = stall as f64 / runahead as f64;
        assert!(
            speedup > 5.0,
            "independent misses within the window should collapse: {speedup:.1}x"
        );
    }

    #[test]
    fn dependent_chains_defeat_runahead() {
        let trace = build_trace(100, 5, 1000); // every load dependent
        let stall = execute(&trace, STALLING);
        let runahead = execute(&trace, CORE);
        assert_eq!(stall, runahead, "runahead cannot prefetch dependent loads");
    }

    #[test]
    fn benefit_degrades_smoothly_with_dependence() {
        let core = CORE;
        let mut last = 0u64;
        for dep in [0u32, 250, 500, 750, 1000] {
            let trace = build_trace(200, 5, dep);
            let cycles = execute(&trace, core);
            assert!(cycles >= last, "more dependence, more cycles ({dep}/1000)");
            last = cycles;
        }
    }

    #[test]
    fn window_size_bounds_the_mlp() {
        // Misses spaced farther apart than a small window gain nothing.
        let trace = build_trace(50, 100, 0);
        let small = execute(
            &trace,
            CoreModel {
                miss_latency: 200,
                runahead_window: 10,
            },
        );
        let large = execute(
            &trace,
            CoreModel {
                miss_latency: 200,
                runahead_window: 256,
            },
        );
        assert!(large < small, "a larger window reaches the next miss");
    }

    #[test]
    fn trace_builder_shapes() {
        let t = build_trace(4, 2, 500);
        assert_eq!(t.len(), 4 * 3);
        let deps = t
            .iter()
            .filter(|i| matches!(i, Instr::MissLoad { dependent: true }))
            .count();
        assert_eq!(deps, 2, "half the loads are dependent");
    }
}
