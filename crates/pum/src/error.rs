//! Error type for processing-using-memory operations.

use std::error::Error;
use std::fmt;

use ia_dram::IssueError;

/// Failures of in-memory compute operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PumError {
    /// Invalid argument (geometry constraint, zero size, …).
    Invalid(&'static str),
    /// A bitwise operand row has not been written.
    MissingRow(u64),
    /// Underlying DRAM command failure.
    Issue(IssueError),
}

impl PumError {
    pub(crate) fn invalid(msg: &'static str) -> Self {
        PumError::Invalid(msg)
    }
}

impl fmt::Display for PumError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PumError::Invalid(msg) => f.write_str(msg),
            PumError::MissingRow(r) => write!(f, "operand row {r} has no data"),
            PumError::Issue(e) => write!(f, "dram command failed: {e}"),
        }
    }
}

impl Error for PumError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            PumError::Issue(e) => Some(e),
            _ => None,
        }
    }
}

impl From<IssueError> for PumError {
    fn from(e: IssueError) -> Self {
        PumError::Issue(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        fn check<T: Error + Send + Sync>() {}
        check::<PumError>();
        assert!(!PumError::invalid("x").to_string().is_empty());
        assert!(PumError::MissingRow(9).to_string().contains('9'));
    }
}
