//! Gather-Scatter DRAM (Seshadri+, MICRO 2015): in-DRAM address
//! translation gathers strided elements into *dense* cache lines, so a
//! column access over a field of an array-of-structs moves only the
//! useful bytes across the channel — conventional systems drag the whole
//! cache line per element.

use ia_dram::DramConfig;

use crate::PumError;

/// Cost/traffic report of one strided gather.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GatherReport {
    /// Stride between elements, in bytes.
    pub stride: u64,
    /// Useful bytes gathered.
    pub useful_bytes: u64,
    /// Bytes that actually crossed the memory channel.
    pub bytes_moved: u64,
    /// Transfer time at peak channel bandwidth, ns.
    pub ns: f64,
    /// Off-chip I/O energy, pJ.
    pub io_energy_pj: f64,
}

impl GatherReport {
    /// Fraction of moved bytes that were useful (1.0 = perfectly dense).
    #[must_use]
    pub fn efficiency(&self) -> f64 {
        if self.bytes_moved == 0 {
            0.0
        } else {
            self.useful_bytes as f64 / self.bytes_moved as f64
        }
    }
}

fn transfer_cost(config: &DramConfig, bytes: u64) -> (f64, f64) {
    let t = config.timing;
    let line = config.geometry.column_bytes;
    let bursts = bytes.div_ceil(line);
    let cycles = bursts * t.t_bl / config.geometry.channels as u64;
    let ns = cycles as f64 * t.tck_ns();
    let io = bursts as f64 * config.energy.io_pj_per_bit * (line * 8) as f64;
    (ns, io)
}

/// A conventional strided read of `elements` elements of `element_bytes`
/// at `stride_bytes`: each element drags its whole cache line over the
/// channel.
///
/// # Errors
///
/// Returns [`PumError`] if any size is zero or the stride is smaller than
/// the element.
pub fn conventional_gather(
    config: &DramConfig,
    elements: u64,
    element_bytes: u64,
    stride_bytes: u64,
) -> Result<GatherReport, PumError> {
    validate(elements, element_bytes, stride_bytes)?;
    let line = config.geometry.column_bytes;
    // Lines touched: with stride ≥ line, one line per element; smaller
    // strides share lines.
    let lines = if stride_bytes >= line {
        elements
    } else {
        (elements * stride_bytes).div_ceil(line)
    };
    let moved = lines * line;
    let (ns, io) = transfer_cost(config, moved);
    Ok(GatherReport {
        stride: stride_bytes,
        useful_bytes: elements * element_bytes,
        bytes_moved: moved,
        ns,
        io_energy_pj: io,
    })
}

/// A GS-DRAM gather of the same pattern: the in-DRAM shuffle packs the
/// elements into dense lines before they cross the channel (plus a small
/// per-line translation overhead of one extra burst per 64 gathered
/// lines, for the pattern descriptors).
///
/// # Errors
///
/// Returns [`PumError`] on the same invalid inputs as
/// [`conventional_gather`].
pub fn gs_dram_gather(
    config: &DramConfig,
    elements: u64,
    element_bytes: u64,
    stride_bytes: u64,
) -> Result<GatherReport, PumError> {
    validate(elements, element_bytes, stride_bytes)?;
    let line = config.geometry.column_bytes;
    let useful = elements * element_bytes;
    let dense_lines = useful.div_ceil(line);
    let overhead_lines = dense_lines.div_ceil(64);
    let moved = (dense_lines + overhead_lines) * line;
    let (ns, io) = transfer_cost(config, moved);
    Ok(GatherReport {
        stride: stride_bytes,
        useful_bytes: useful,
        bytes_moved: moved,
        ns,
        io_energy_pj: io,
    })
}

/// Functional reference: gathers stride-separated elements from a byte
/// array (what both hardware paths compute).
///
/// # Errors
///
/// Returns [`PumError`] if the pattern runs past the end of `data`.
pub fn gather_elements(
    data: &[u8],
    elements: u64,
    element_bytes: u64,
    stride_bytes: u64,
) -> Result<Vec<u8>, PumError> {
    validate(elements, element_bytes, stride_bytes)?;
    let need = (elements - 1) * stride_bytes + element_bytes;
    if need > data.len() as u64 {
        return Err(PumError::Invalid("gather pattern exceeds the buffer"));
    }
    let mut out = Vec::with_capacity((elements * element_bytes) as usize);
    for e in 0..elements {
        let start = (e * stride_bytes) as usize;
        out.extend_from_slice(&data[start..start + element_bytes as usize]);
    }
    Ok(out)
}

fn validate(elements: u64, element_bytes: u64, stride_bytes: u64) -> Result<(), PumError> {
    if elements == 0 || element_bytes == 0 || stride_bytes == 0 {
        return Err(PumError::Invalid("gather sizes must be non-zero"));
    }
    if stride_bytes < element_bytes {
        return Err(PumError::Invalid("stride must cover the element"));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> DramConfig {
        DramConfig::ddr3_1600()
    }

    #[test]
    fn validation() {
        assert!(conventional_gather(&cfg(), 0, 8, 64).is_err());
        assert!(gs_dram_gather(&cfg(), 10, 8, 4).is_err());
        assert!(
            gather_elements(&[0u8; 16], 4, 8, 8).is_err(),
            "pattern exceeds buffer"
        );
    }

    #[test]
    fn functional_gather_collects_the_right_bytes() {
        let data: Vec<u8> = (0..64u8).collect();
        let out = gather_elements(&data, 4, 2, 16).unwrap();
        assert_eq!(out, vec![0, 1, 16, 17, 32, 33, 48, 49]);
    }

    #[test]
    fn gs_dram_moves_only_useful_bytes_at_large_strides() {
        // 8-byte field from a 64-byte struct: conventional drags 8x.
        let conv = conventional_gather(&cfg(), 10_000, 8, 64).unwrap();
        let gs = gs_dram_gather(&cfg(), 10_000, 8, 64).unwrap();
        assert!(
            conv.efficiency() < 0.2,
            "conventional efficiency {:.2}",
            conv.efficiency()
        );
        assert!(
            gs.efficiency() > 0.9,
            "GS-DRAM efficiency {:.2}",
            gs.efficiency()
        );
        let traffic_cut = conv.bytes_moved as f64 / gs.bytes_moved as f64;
        assert!(
            (6.0..9.0).contains(&traffic_cut),
            "8x-stride traffic reduction should approach 8x: {traffic_cut:.1}"
        );
        assert!(gs.ns < conv.ns);
        assert!(gs.io_energy_pj < conv.io_energy_pj);
    }

    #[test]
    fn dense_access_gains_nothing() {
        // stride == element: already dense.
        let conv = conventional_gather(&cfg(), 1000, 64, 64).unwrap();
        let gs = gs_dram_gather(&cfg(), 1000, 64, 64).unwrap();
        assert!(
            gs.bytes_moved >= conv.bytes_moved,
            "GS-DRAM adds descriptor overhead on dense access"
        );
    }

    #[test]
    fn sub_line_strides_share_lines_conventionally() {
        let conv = conventional_gather(&cfg(), 100, 8, 16).unwrap();
        // 100 elements × 16B stride = 1600 bytes → 25 lines, not 100.
        assert_eq!(conv.bytes_moved, 25 * 64);
    }
}
