//! # ia-pum — processing *using* memory
//!
//! The paper's first PIM approach "exploits the existing memory
//! architecture and the operational principles of the memory circuitry to
//! enable operations inside memory structures with minimal changes". This
//! crate implements the mechanisms the talk walks through:
//!
//! * [`bulk_copy`] / [`bulk_zero`] — RowClone FPM/PSM and LISA in-DRAM
//!   bulk copy and initialization, vs. the CPU-copy baseline.
//! * [`AmbitEngine`] — triple-row-activation bulk bitwise AND/OR/NOT/…,
//!   functional *and* costed, with the channel-bound CPU baseline
//!   ([`cpu_bitwise_baseline`]).
//! * [`DRange`] — DRAM-based true random number generation.
//!
//! ## Example
//!
//! ```
//! use ia_dram::{DramConfig, DramModule, PhysAddr};
//! use ia_pum::{bulk_copy, CopyMode};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut dram = DramModule::new(DramConfig::ddr3_1600())?;
//! // Copy one row to the next row of the same bank/subarray: stride is
//! // row_bytes × total banks under the default row-interleaved mapping.
//! let stride = 8 * 1024 * 8;
//! let fpm = bulk_copy(&mut dram, PhysAddr::new(0), PhysAddr::new(stride), 8192, CopyMode::Fpm)?;
//! let cpu = bulk_copy(&mut dram, PhysAddr::new(0), PhysAddr::new(stride), 8192, CopyMode::Cpu)?;
//! assert!(fpm.ns < cpu.ns);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod ambit;
mod error;
mod gather;
mod rng;
mod rowclone;

pub use ambit::{cpu_bitwise_baseline, AmbitEngine, AmbitStats, BitwiseOp, RowId};
pub use error::PumError;
pub use gather::{conventional_gather, gather_elements, gs_dram_gather, GatherReport};
pub use rng::DRange;
pub use rowclone::{bulk_copy, bulk_zero, CopyMode, CopyReport};
