//! RowClone (Seshadri+, MICRO 2013) and LISA (Chang+, HPCA 2016): bulk
//! data copy and initialization inside DRAM, without moving a byte over
//! the memory channel.
//!
//! Three mechanisms, in decreasing speed:
//!
//! * **FPM** (Fast Parallel Mode): back-to-back activates in the same
//!   subarray copy an entire row through the shared sense amplifiers —
//!   one AAP (ACTIVATE-ACTIVATE-PRECHARGE) sequence per row.
//! * **LISA** inter-subarray copy: row-buffer movement across linked
//!   subarrays, a few cycles per subarray hop.
//! * **PSM** (Pipelined Serial Mode): cache-line-at-a-time transfer over
//!   the internal bus between banks.
//!
//! The baseline is a conventional CPU copy: every line crosses the channel
//! twice (read + write), paying off-chip I/O energy both ways.

use ia_dram::{AccessKind, Cycle, DramModule, PhysAddr};

use crate::PumError;

/// The copy mechanism used for a bulk copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CopyMode {
    /// In-subarray row copy (RowClone-FPM).
    Fpm,
    /// Cross-subarray copy via linked subarrays (LISA).
    Lisa,
    /// Inter-bank pipelined serial copy (RowClone-PSM).
    Psm,
    /// Conventional copy through the CPU and memory channel.
    Cpu,
}

/// Outcome of a bulk copy: time and energy spent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CopyReport {
    /// Mechanism used.
    pub mode: CopyMode,
    /// Bytes copied.
    pub bytes: u64,
    /// Total latency in DRAM cycles.
    pub cycles: u64,
    /// Total latency in nanoseconds.
    pub ns: f64,
    /// Dynamic energy in picojoules.
    pub energy_pj: f64,
}

impl CopyReport {
    /// Effective copy bandwidth in GiB/s.
    #[must_use]
    pub fn bandwidth_gib_s(&self) -> f64 {
        if self.ns == 0.0 {
            0.0
        } else {
            self.bytes as f64 / self.ns * 1e9 / (1u64 << 30) as f64
        }
    }
}

/// Cycles for one AAP (ACTIVATE → ACTIVATE → PRECHARGE) primitive.
fn aap_cycles(dram: &DramModule) -> u64 {
    let t = dram.config().timing;
    2 * t.t_ras + t.t_rp
}

/// Performs a bulk copy of `bytes` from `src` to `dst` and accounts its
/// timing/energy on the module. Returns the report.
///
/// Rows are copied whole; `bytes` is rounded up to row (FPM/LISA/PSM) or
/// line (CPU) granularity.
///
/// # Errors
///
/// Returns [`PumError`] if `bytes == 0`, or if the chosen in-DRAM mode is
/// physically impossible for the address pair: FPM requires the same bank
/// **and** subarray, LISA the same bank, PSM a different bank. Propagates
/// [`ia_dram::IssueError`] from the underlying module on CPU copies.
pub fn bulk_copy(
    dram: &mut DramModule,
    src: PhysAddr,
    dst: PhysAddr,
    bytes: u64,
    mode: CopyMode,
) -> Result<CopyReport, PumError> {
    if bytes == 0 {
        return Err(PumError::invalid("cannot copy zero bytes"));
    }
    let src_loc = dram.decode(src);
    let dst_loc = dram.decode(dst);
    let geo = dram.config().geometry;
    let energy = dram.config().energy;
    let timing = dram.config().timing;
    let rows = bytes.div_ceil(geo.row_bytes);

    let report = match mode {
        CopyMode::Fpm => {
            if !src_loc.same_bank(&dst_loc) || src_loc.subarray != dst_loc.subarray {
                return Err(PumError::invalid("FPM requires same bank and subarray"));
            }
            let cycles = rows * aap_cycles(dram);
            // Two activates + one precharge per row, no I/O.
            let energy_pj = rows as f64 * 2.0 * energy.act_pre_pj;
            let e = dram.energy_mut();
            e.act_pre_pj += rows as f64 * 2.0 * energy.act_pre_pj;
            e.activates += 2 * rows;
            CopyReport {
                mode,
                bytes,
                cycles,
                ns: cycles as f64 * timing.tck_ns(),
                energy_pj,
            }
        }
        CopyMode::Lisa => {
            if !src_loc.same_bank(&dst_loc) {
                return Err(PumError::invalid("LISA requires the same bank"));
            }
            let hops = src_loc.subarray.abs_diff(dst_loc.subarray).max(1) as u64;
            // Row-buffer movement: one activate, then ~4 cycles per hop,
            // then restore + precharge.
            let per_row = timing.t_ras + 4 * hops + timing.t_ras + timing.t_rp;
            let cycles = rows * per_row;
            let energy_pj = rows as f64 * (2.0 * energy.act_pre_pj + hops as f64 * 100.0);
            let e = dram.energy_mut();
            e.act_pre_pj += rows as f64 * 2.0 * energy.act_pre_pj;
            e.array_pj += rows as f64 * hops as f64 * 100.0;
            e.activates += 2 * rows;
            CopyReport {
                mode,
                bytes,
                cycles,
                ns: cycles as f64 * timing.tck_ns(),
                energy_pj,
            }
        }
        CopyMode::Psm => {
            if src_loc.same_bank(&dst_loc) {
                return Err(PumError::invalid("PSM requires different banks"));
            }
            let lines = bytes.div_ceil(geo.column_bytes);
            // Open both rows once per row-sized chunk, then pipeline lines
            // over the internal bus (one tCCD per line, overlapped).
            let cycles =
                rows * (2 * timing.t_rcd + timing.t_ras + timing.t_rp) + lines * timing.t_ccd;
            // Internal array reads+writes, no off-chip I/O.
            let energy_pj = rows as f64 * 2.0 * energy.act_pre_pj
                + lines as f64 * (energy.read_pj + energy.write_pj);
            let e = dram.energy_mut();
            e.act_pre_pj += rows as f64 * 2.0 * energy.act_pre_pj;
            e.array_pj += lines as f64 * (energy.read_pj + energy.write_pj);
            e.activates += 2 * rows;
            e.bursts += 2 * lines;
            CopyReport {
                mode,
                bytes,
                cycles,
                ns: cycles as f64 * timing.tck_ns(),
                energy_pj,
            }
        }
        CopyMode::Cpu => {
            // A real memcpy streams reads into the cache hierarchy, then
            // streams the writes back — reads and writes each pipeline at
            // burst rate rather than alternating with bus turnarounds.
            let lines = bytes.div_ceil(geo.column_bytes);
            let before = *dram.energy();
            let start = Cycle::ZERO;
            let mut last = start;
            for l in 0..lines {
                let offset = l * geo.column_bytes;
                let r = dram
                    .access(src.offset(offset), AccessKind::Read, start)
                    .map_err(PumError::Issue)?;
                last = last.max(r.data_ready);
            }
            for l in 0..lines {
                let offset = l * geo.column_bytes;
                let w = dram
                    .access(dst.offset(offset), AccessKind::Write, last)
                    .map_err(PumError::Issue)?;
                last = last.max(w.data_ready);
            }
            // Drain the final write recovery.
            let end = last + timing.t_wr;
            let cycles = end - start;
            let energy_pj = dram.energy().dynamic_pj() - before.dynamic_pj();
            CopyReport {
                mode,
                bytes,
                cycles,
                ns: cycles as f64 * timing.tck_ns(),
                energy_pj,
            }
        }
    };
    Ok(report)
}

/// Bulk zero-initialization: FPM copy from a reserved all-zeros row
/// (RowClone-ZI). Same cost as an FPM copy.
///
/// # Errors
///
/// Returns [`PumError`] if `bytes == 0`.
pub fn bulk_zero(dram: &mut DramModule, dst: PhysAddr, bytes: u64) -> Result<CopyReport, PumError> {
    if bytes == 0 {
        return Err(PumError::invalid("cannot zero zero bytes"));
    }
    // The zero row lives in the same subarray by construction.
    bulk_copy(dram, dst, dst.offset(0), bytes, CopyMode::Fpm).map(|mut r| {
        r.mode = CopyMode::Fpm;
        r
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ia_dram::DramConfig;

    fn dram() -> DramModule {
        DramModule::new(DramConfig::ddr3_1600()).unwrap()
    }

    /// Byte distance between consecutive rows of the same bank under the
    /// default row-interleaved mapping.
    fn row_stride(d: &DramModule) -> u64 {
        let g = d.config().geometry;
        g.row_bytes * (g.banks_per_group * g.bank_groups * g.ranks * g.channels) as u64
    }

    #[test]
    fn fpm_requires_same_subarray() {
        let mut d = dram();
        let stride = row_stride(&d);
        // Row 0 and row 1 share subarray 0 (512 rows per subarray).
        let r = bulk_copy(
            &mut d,
            PhysAddr::new(0),
            PhysAddr::new(stride),
            8192,
            CopyMode::Fpm,
        );
        assert!(r.is_ok());
        // Row 0 and row 600 are in different subarrays.
        let far = bulk_copy(
            &mut d,
            PhysAddr::new(0),
            PhysAddr::new(600 * stride),
            8192,
            CopyMode::Fpm,
        );
        assert!(far.is_err());
        // Different banks are also rejected.
        let other_bank = bulk_copy(
            &mut d,
            PhysAddr::new(0),
            PhysAddr::new(8192),
            8192,
            CopyMode::Fpm,
        );
        assert!(other_bank.is_err());
    }

    #[test]
    fn fpm_is_an_order_of_magnitude_faster_than_cpu_copy() {
        let stride = row_stride(&dram());
        let mut d1 = dram();
        let fpm = bulk_copy(
            &mut d1,
            PhysAddr::new(0),
            PhysAddr::new(stride),
            8192,
            CopyMode::Fpm,
        )
        .unwrap();
        let mut d2 = dram();
        let cpu = bulk_copy(
            &mut d2,
            PhysAddr::new(0),
            PhysAddr::new(stride),
            8192,
            CopyMode::Cpu,
        )
        .unwrap();
        let speedup = cpu.ns / fpm.ns;
        assert!(speedup > 8.0, "FPM speedup {speedup:.1}x should be ~11x");
        assert!(speedup < 40.0, "speedup {speedup:.1}x suspiciously high");
    }

    #[test]
    fn fpm_saves_more_energy_than_latency() {
        let stride = row_stride(&dram());
        let mut d1 = dram();
        let fpm = bulk_copy(
            &mut d1,
            PhysAddr::new(0),
            PhysAddr::new(stride),
            8192,
            CopyMode::Fpm,
        )
        .unwrap();
        let mut d2 = dram();
        let cpu = bulk_copy(
            &mut d2,
            PhysAddr::new(0),
            PhysAddr::new(stride),
            8192,
            CopyMode::Cpu,
        )
        .unwrap();
        let energy_ratio = cpu.energy_pj / fpm.energy_pj;
        let latency_ratio = cpu.ns / fpm.ns;
        assert!(
            energy_ratio > latency_ratio,
            "energy savings ({energy_ratio:.0}x) should exceed latency savings ({latency_ratio:.0}x)"
        );
        assert!(
            energy_ratio > 30.0,
            "expected tens-of-x energy reduction, got {energy_ratio:.0}x"
        );
    }

    #[test]
    fn psm_is_slower_than_fpm_but_faster_than_cpu() {
        let stride = row_stride(&dram());
        let mut d = dram();
        let fpm = bulk_copy(
            &mut d,
            PhysAddr::new(0),
            PhysAddr::new(stride),
            8192,
            CopyMode::Fpm,
        )
        .unwrap();
        // PSM: copy to a different bank (address 8192 lands in bank 1).
        let psm = bulk_copy(
            &mut d,
            PhysAddr::new(0),
            PhysAddr::new(8192),
            8192,
            CopyMode::Psm,
        )
        .unwrap();
        let mut d2 = dram();
        let cpu = bulk_copy(
            &mut d2,
            PhysAddr::new(0),
            PhysAddr::new(8192),
            8192,
            CopyMode::Cpu,
        )
        .unwrap();
        assert!(fpm.cycles < psm.cycles);
        assert!(psm.cycles < cpu.cycles);
    }

    #[test]
    fn psm_rejects_same_bank() {
        let mut d = dram();
        let stride = row_stride(&d);
        assert!(bulk_copy(
            &mut d,
            PhysAddr::new(0),
            PhysAddr::new(stride),
            64,
            CopyMode::Psm
        )
        .is_err());
    }

    #[test]
    fn lisa_cost_grows_with_subarray_distance() {
        let mut d = dram();
        let stride = row_stride(&d);
        let near = bulk_copy(
            &mut d,
            PhysAddr::new(0),
            PhysAddr::new(512 * stride), // subarray 1
            8192,
            CopyMode::Lisa,
        )
        .unwrap();
        let far = bulk_copy(
            &mut d,
            PhysAddr::new(0),
            PhysAddr::new(512 * 32 * stride), // subarray 32
            8192,
            CopyMode::Lisa,
        )
        .unwrap();
        assert!(far.cycles > near.cycles);
    }

    #[test]
    fn lisa_rejects_cross_bank() {
        let mut d = dram();
        assert!(bulk_copy(
            &mut d,
            PhysAddr::new(0),
            PhysAddr::new(8192),
            64,
            CopyMode::Lisa
        )
        .is_err());
    }

    #[test]
    fn cpu_copy_pays_io_energy() {
        let mut d = dram();
        let before_io = d.energy().io_pj;
        bulk_copy(
            &mut d,
            PhysAddr::new(0),
            PhysAddr::new(1 << 22),
            4096,
            CopyMode::Cpu,
        )
        .unwrap();
        assert!(
            d.energy().io_pj > before_io,
            "CPU copy must cross the channel"
        );
    }

    #[test]
    fn in_dram_copies_pay_no_io_energy() {
        let mut d = dram();
        let stride = row_stride(&d);
        bulk_copy(
            &mut d,
            PhysAddr::new(0),
            PhysAddr::new(stride),
            8192,
            CopyMode::Fpm,
        )
        .unwrap();
        assert_eq!(d.energy().io_pj, 0.0);
    }

    #[test]
    fn zero_bytes_is_an_error() {
        let mut d = dram();
        assert!(bulk_copy(
            &mut d,
            PhysAddr::new(0),
            PhysAddr::new(64),
            0,
            CopyMode::Cpu
        )
        .is_err());
        assert!(bulk_zero(&mut d, PhysAddr::new(0), 0).is_err());
    }

    #[test]
    fn bulk_zero_costs_like_fpm() {
        let mut d = dram();
        let z = bulk_zero(&mut d, PhysAddr::new(0), 8192).unwrap();
        assert_eq!(z.mode, CopyMode::Fpm);
        assert_eq!(z.cycles, aap_cycles(&d));
    }

    #[test]
    fn bandwidth_reported() {
        let mut d = dram();
        let stride = row_stride(&d);
        let r = bulk_copy(
            &mut d,
            PhysAddr::new(0),
            PhysAddr::new(stride),
            64 * 1024,
            CopyMode::Fpm,
        )
        .unwrap();
        assert!(
            r.bandwidth_gib_s() > 10.0,
            "in-DRAM copy should exceed 10 GiB/s"
        );
    }
}
