//! Ambit (Seshadri+, MICRO 2017): bulk bitwise operations inside DRAM by
//! triple-row activation (majority-of-three charge sharing) plus
//! dual-contact rows for NOT.
//!
//! The engine is both *functional* (it computes the actual bit results, so
//! higher layers like the GRIM-Filter can run on it) and *costed* (every
//! operation is billed in AAP primitives with DRAM timing/energy), which
//! is what lets the harness reproduce the throughput/energy comparisons.

use std::collections::HashMap;

use ia_dram::{DramConfig, EnergyParams, TimingParams};

use crate::PumError;

/// Identifier of a DRAM row used as a bit-vector operand.
pub type RowId = u64;

/// A bulk bitwise operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BitwiseOp {
    /// dst = a AND b.
    And,
    /// dst = a OR b.
    Or,
    /// dst = NOT a.
    Not,
    /// dst = a NAND b.
    Nand,
    /// dst = a NOR b.
    Nor,
    /// dst = a XOR b.
    Xor,
    /// dst = a XNOR b.
    Xnor,
}

impl BitwiseOp {
    /// Number of AAP (ACTIVATE-ACTIVATE-PRECHARGE) primitives per
    /// row-sized operation, from the Ambit command sequences: AND/OR cost
    /// 4 AAPs (copy operands into the bitwise group, set control row,
    /// triple-activate), NOT costs 2, the negated ops add one, XOR/XNOR
    /// compose AND/OR/NOT.
    #[must_use]
    pub fn aap_count(self) -> u64 {
        match self {
            BitwiseOp::Not => 2,
            BitwiseOp::And | BitwiseOp::Or => 4,
            BitwiseOp::Nand | BitwiseOp::Nor => 5,
            BitwiseOp::Xor | BitwiseOp::Xnor => 7,
        }
    }

    /// All operations.
    #[must_use]
    pub fn all() -> [BitwiseOp; 7] {
        [
            BitwiseOp::And,
            BitwiseOp::Or,
            BitwiseOp::Not,
            BitwiseOp::Nand,
            BitwiseOp::Nor,
            BitwiseOp::Xor,
            BitwiseOp::Xnor,
        ]
    }

    /// Mnemonic.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            BitwiseOp::And => "AND",
            BitwiseOp::Or => "OR",
            BitwiseOp::Not => "NOT",
            BitwiseOp::Nand => "NAND",
            BitwiseOp::Nor => "NOR",
            BitwiseOp::Xor => "XOR",
            BitwiseOp::Xnor => "XNOR",
        }
    }
}

/// Cost/throughput counters for the engine.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct AmbitStats {
    /// AAP primitives executed.
    pub aaps: u64,
    /// Total DRAM cycles consumed.
    pub cycles: u64,
    /// Dynamic energy in picojoules.
    pub energy_pj: f64,
    /// Row-sized operations performed.
    pub ops: u64,
}

/// The in-DRAM bulk bitwise engine.
///
/// # Examples
///
/// ```
/// use ia_dram::DramConfig;
/// use ia_pum::{AmbitEngine, BitwiseOp};
///
/// # fn main() -> Result<(), ia_pum::PumError> {
/// let mut engine = AmbitEngine::new(&DramConfig::ddr3_1600());
/// engine.write_row(0, vec![0b1100; engine.row_words()])?;
/// engine.write_row(1, vec![0b1010; engine.row_words()])?;
/// engine.execute(BitwiseOp::And, 2, 0, Some(1))?;
/// assert_eq!(engine.read_row(2).expect("dst exists")[0], 0b1000);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct AmbitEngine {
    timing: TimingParams,
    energy: EnergyParams,
    row_words: usize,
    rows: HashMap<RowId, Vec<u64>>,
    stats: AmbitStats,
    /// Banks operating concurrently on a bulk operation — Ambit's key
    /// throughput lever (every bank's subarray computes independently).
    parallelism: usize,
}

impl AmbitEngine {
    /// Creates an engine with the device's row size and timing, operating
    /// across all banks of a rank in parallel.
    #[must_use]
    pub fn new(config: &DramConfig) -> Self {
        AmbitEngine {
            timing: config.timing,
            energy: config.energy,
            row_words: (config.geometry.row_bytes / 8) as usize,
            rows: HashMap::new(),
            stats: AmbitStats::default(),
            parallelism: config.geometry.banks_per_rank().max(1),
        }
    }

    /// Overrides the bank-level parallelism (chainable).
    #[must_use]
    pub fn with_parallelism(mut self, banks: usize) -> Self {
        self.parallelism = banks.max(1);
        self
    }

    /// Concurrent banks assumed for bulk throughput.
    #[must_use]
    pub fn parallelism(&self) -> usize {
        self.parallelism
    }

    /// Words (u64) per row.
    #[must_use]
    pub fn row_words(&self) -> usize {
        self.row_words
    }

    /// Row size in bytes.
    #[must_use]
    pub fn row_bytes(&self) -> u64 {
        self.row_words as u64 * 8
    }

    /// Engine statistics.
    #[must_use]
    pub fn stats(&self) -> &AmbitStats {
        &self.stats
    }

    /// Cycles of one AAP primitive.
    #[must_use]
    pub fn aap_cycles(&self) -> u64 {
        2 * self.timing.t_ras + self.timing.t_rp
    }

    /// Writes operand data into a row (free of engine cost: it models data
    /// already resident in memory).
    ///
    /// # Errors
    ///
    /// Returns [`PumError`] if `bits` is not exactly one row.
    pub fn write_row(&mut self, row: RowId, bits: Vec<u64>) -> Result<(), PumError> {
        if bits.len() != self.row_words {
            return Err(PumError::invalid("row data must be exactly one row wide"));
        }
        self.rows.insert(row, bits);
        Ok(())
    }

    /// Reads a row's bits, if present.
    #[must_use]
    pub fn read_row(&self, row: RowId) -> Option<&[u64]> {
        self.rows.get(&row).map(Vec::as_slice)
    }

    /// Executes `dst = op(a, b)` over full rows, updating cost counters.
    /// `b` is ignored for [`BitwiseOp::Not`].
    ///
    /// # Errors
    ///
    /// Returns [`PumError`] if an operand row is missing (or `b` is absent
    /// for a two-operand op).
    pub fn execute(
        &mut self,
        op: BitwiseOp,
        dst: RowId,
        a: RowId,
        b: Option<RowId>,
    ) -> Result<(), PumError> {
        let av = self.rows.get(&a).ok_or(PumError::MissingRow(a))?.clone();
        let result: Vec<u64> = match op {
            BitwiseOp::Not => av.iter().map(|x| !x).collect(),
            two_operand => {
                let b = b.ok_or_else(|| PumError::invalid("binary op needs a second operand"))?;
                let bv = self.rows.get(&b).ok_or(PumError::MissingRow(b))?;
                av.iter()
                    .zip(bv)
                    .map(|(&x, &y)| match two_operand {
                        BitwiseOp::And => x & y,
                        BitwiseOp::Or => x | y,
                        BitwiseOp::Nand => !(x & y),
                        BitwiseOp::Nor => !(x | y),
                        BitwiseOp::Xor => x ^ y,
                        BitwiseOp::Xnor => !(x ^ y),
                        BitwiseOp::Not => unreachable!("handled above"),
                    })
                    .collect()
            }
        };
        self.rows.insert(dst, result);
        let aaps = op.aap_count();
        self.stats.aaps += aaps;
        self.stats.cycles += aaps * self.aap_cycles();
        // Each AAP is two activates worth of energy; still no off-chip I/O.
        self.stats.energy_pj += aaps as f64 * 2.0 * self.energy.act_pre_pj;
        self.stats.ops += 1;
        Ok(())
    }

    /// In-DRAM bulk throughput for `op` in bytes per nanosecond (= GB/s),
    /// with all banks computing concurrently.
    #[must_use]
    pub fn throughput_gb_s(&self, op: BitwiseOp) -> f64 {
        let cycles = op.aap_count() * self.aap_cycles();
        self.row_bytes() as f64 * self.parallelism as f64 / (cycles as f64 * self.timing.tck_ns())
    }

    /// Energy per byte of `op` in picojoules.
    #[must_use]
    pub fn energy_pj_per_byte(&self, op: BitwiseOp) -> f64 {
        op.aap_count() as f64 * 2.0 * self.energy.act_pre_pj / self.row_bytes() as f64
    }
}

/// Cost of the CPU/channel baseline for a bulk bitwise op over `bytes`:
/// both operands cross the channel in, the result crosses back out, at
/// peak channel bandwidth, paying I/O energy for every byte.
///
/// Returns `(ns, energy_pj)`.
#[must_use]
pub fn cpu_bitwise_baseline(config: &DramConfig, op: BitwiseOp, bytes: u64) -> (f64, f64) {
    let t = config.timing;
    let e = config.energy;
    let line = config.geometry.column_bytes;
    let operands = if matches!(op, BitwiseOp::Not) { 1 } else { 2 };
    let lines_moved = bytes.div_ceil(line) * (operands + 1);
    // Peak bandwidth: one burst per tBL cycles per channel.
    let cycles = lines_moved * t.t_bl / config.geometry.channels as u64;
    let ns = cycles as f64 * t.tck_ns();
    // Row activations amortized over a full row of streaming.
    let rows_touched = (bytes.div_ceil(config.geometry.row_bytes)) * (operands + 1);
    let energy = lines_moved as f64 * (e.read_pj + e.io_pj_per_bit * (line * 8) as f64)
        + rows_touched as f64 * e.act_pre_pj;
    (ns, energy)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> AmbitEngine {
        AmbitEngine::new(&DramConfig::ddr3_1600())
    }

    fn row_of(engine: &AmbitEngine, word: u64) -> Vec<u64> {
        vec![word; engine.row_words()]
    }

    #[test]
    fn functional_correctness_of_all_ops() {
        let mut e = engine();
        let a = 0b1100_1010u64;
        let b = 0b1010_0110u64;
        e.write_row(0, row_of(&e, a)).unwrap();
        e.write_row(1, row_of(&e, b)).unwrap();
        let cases = [
            (BitwiseOp::And, a & b),
            (BitwiseOp::Or, a | b),
            (BitwiseOp::Nand, !(a & b)),
            (BitwiseOp::Nor, !(a | b)),
            (BitwiseOp::Xor, a ^ b),
            (BitwiseOp::Xnor, !(a ^ b)),
        ];
        for (op, expected) in cases {
            e.execute(op, 10, 0, Some(1)).unwrap();
            assert_eq!(e.read_row(10).unwrap()[0], expected, "{}", op.name());
        }
        e.execute(BitwiseOp::Not, 11, 0, None).unwrap();
        assert_eq!(e.read_row(11).unwrap()[0], !a);
    }

    #[test]
    fn missing_operands_are_errors() {
        let mut e = engine();
        assert!(matches!(
            e.execute(BitwiseOp::Not, 1, 99, None),
            Err(PumError::MissingRow(99))
        ));
        e.write_row(0, row_of(&e, 1)).unwrap();
        assert!(
            e.execute(BitwiseOp::And, 1, 0, None).is_err(),
            "AND needs two operands"
        );
        assert!(e.execute(BitwiseOp::And, 1, 0, Some(42)).is_err());
    }

    #[test]
    fn wrong_width_row_is_rejected() {
        let mut e = engine();
        assert!(e.write_row(0, vec![0; 3]).is_err());
    }

    #[test]
    fn costs_accumulate_per_op() {
        let mut e = engine();
        e.write_row(0, row_of(&e, 5)).unwrap();
        e.write_row(1, row_of(&e, 3)).unwrap();
        e.execute(BitwiseOp::And, 2, 0, Some(1)).unwrap();
        assert_eq!(e.stats().aaps, 4);
        assert_eq!(e.stats().cycles, 4 * e.aap_cycles());
        assert!(e.stats().energy_pj > 0.0);
        e.execute(BitwiseOp::Xor, 3, 0, Some(1)).unwrap();
        assert_eq!(e.stats().aaps, 11);
        assert_eq!(e.stats().ops, 2);
    }

    #[test]
    fn xor_costs_more_than_and() {
        assert!(BitwiseOp::Xor.aap_count() > BitwiseOp::And.aap_count());
        assert!(BitwiseOp::Not.aap_count() < BitwiseOp::And.aap_count());
    }

    #[test]
    fn ambit_beats_cpu_baseline_by_an_order_of_magnitude() {
        let cfg = DramConfig::ddr3_1600();
        let e = AmbitEngine::new(&cfg);
        for op in BitwiseOp::all() {
            let bytes = 1 << 20;
            let in_dram_ns = bytes as f64 / e.throughput_gb_s(op);
            let (cpu_ns, cpu_pj) = cpu_bitwise_baseline(&cfg, op, bytes);
            let speedup = cpu_ns / in_dram_ns;
            assert!(
                speedup > 5.0,
                "{}: expected >5x throughput, got {speedup:.1}x",
                op.name()
            );
            let in_dram_pj = e.energy_pj_per_byte(op) * bytes as f64;
            let energy_gain = cpu_pj / in_dram_pj;
            assert!(
                energy_gain > 5.0,
                "{}: expected >5x energy, got {energy_gain:.1}x",
                op.name()
            );
        }
    }

    #[test]
    fn throughput_scales_with_row_size() {
        let small = AmbitEngine::new(&DramConfig::ddr3_1600());
        let mut cfg = DramConfig::ddr3_1600();
        cfg.geometry.row_bytes = 16 * 1024;
        let large = AmbitEngine::new(&cfg);
        assert!(large.throughput_gb_s(BitwiseOp::And) > small.throughput_gb_s(BitwiseOp::And));
    }
}
