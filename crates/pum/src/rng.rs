//! D-RaNGe (Kim+, HPCA 2019): true-random number generation from
//! commodity DRAM by reading with deliberately violated tRCD — certain
//! cells ("RNG cells") sample metastable sense-amplifier states and flip
//! unpredictably.
//!
//! The physical entropy source is modelled with a seeded PRNG; what the
//! simulator reproduces is the *throughput/latency accounting*: bits per
//! reduced-latency access, accesses per second, and the resulting Mb/s.

use rand::Rng;

use ia_dram::DramConfig;

use crate::PumError;

/// A DRAM-based true random number generator model.
///
/// # Examples
///
/// ```
/// use ia_dram::DramConfig;
/// use ia_pum::DRange;
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), ia_pum::PumError> {
/// let mut entropy = rand::rngs::SmallRng::seed_from_u64(7);
/// let mut drange = DRange::new(&DramConfig::ddr3_1600(), 4)?;
/// let bits = drange.generate(1024, &mut entropy);
/// assert_eq!(bits.len(), 1024);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DRange {
    /// RNG cells harvested per reduced-tRCD access.
    cells_per_access: usize,
    /// Cycles per RNG access (ACT with violated tRCD + RD + PRE).
    access_cycles: u64,
    tck_ns: f64,
    accesses: u64,
}

impl DRange {
    /// Creates a generator harvesting `cells_per_access` RNG cells per
    /// access (the paper finds ~4 usable cells per 8 KiB row segment).
    ///
    /// # Errors
    ///
    /// Returns [`PumError`] if `cells_per_access == 0`.
    pub fn new(config: &DramConfig, cells_per_access: usize) -> Result<Self, PumError> {
        if cells_per_access == 0 {
            return Err(PumError::invalid("need at least one RNG cell per access"));
        }
        let t = config.timing;
        // Violated tRCD (issue RD immediately after ACT) + burst + PRE.
        let access_cycles = 1 + t.t_cl + t.t_bl + t.t_rp;
        Ok(DRange {
            cells_per_access,
            access_cycles,
            tck_ns: t.tck_ns(),
            accesses: 0,
        })
    }

    /// Generates `bits` random bits, consuming entropy from `entropy`
    /// (standing in for the physical metastability).
    pub fn generate<R: Rng + ?Sized>(&mut self, bits: usize, entropy: &mut R) -> Vec<bool> {
        let accesses = bits.div_ceil(self.cells_per_access);
        self.accesses += accesses as u64;
        (0..bits).map(|_| entropy.gen()).collect()
    }

    /// Total accesses performed.
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.accesses
    }

    /// Latency to produce `bits` bits, in nanoseconds.
    #[must_use]
    pub fn latency_ns(&self, bits: usize) -> f64 {
        let accesses = bits.div_ceil(self.cells_per_access);
        accesses as f64 * self.access_cycles as f64 * self.tck_ns
    }

    /// Sustained throughput in megabits per second.
    #[must_use]
    pub fn throughput_mbps(&self) -> f64 {
        let bits_per_access = self.cells_per_access as f64;
        let ns_per_access = self.access_cycles as f64 * self.tck_ns;
        bits_per_access / ns_per_access * 1000.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_zero_cells() {
        assert!(DRange::new(&DramConfig::ddr3_1600(), 0).is_err());
    }

    #[test]
    fn output_is_roughly_unbiased() {
        let mut entropy = SmallRng::seed_from_u64(1);
        let mut d = DRange::new(&DramConfig::ddr3_1600(), 4).unwrap();
        let bits = d.generate(10_000, &mut entropy);
        let ones = bits.iter().filter(|&&b| b).count();
        assert!((4_500..5_500).contains(&ones), "bias: {ones}/10000 ones");
    }

    #[test]
    fn latency_scales_with_bits_and_cells() {
        let d4 = DRange::new(&DramConfig::ddr3_1600(), 4).unwrap();
        let d8 = DRange::new(&DramConfig::ddr3_1600(), 8).unwrap();
        assert!(d4.latency_ns(1024) > d8.latency_ns(1024));
        assert!(d4.latency_ns(2048) > d4.latency_ns(1024));
    }

    #[test]
    fn throughput_is_hundreds_of_mbps() {
        // The paper reports ~700 Mb/s for aggressive configurations; our
        // per-access model with 4 cells should land in the >100 Mb/s range.
        let d = DRange::new(&DramConfig::ddr3_1600(), 4).unwrap();
        let t = d.throughput_mbps();
        assert!(
            t > 50.0 && t < 5_000.0,
            "throughput {t:.0} Mb/s out of plausible range"
        );
    }

    #[test]
    fn access_counting() {
        let mut entropy = SmallRng::seed_from_u64(2);
        let mut d = DRange::new(&DramConfig::ddr3_1600(), 4).unwrap();
        d.generate(8, &mut entropy);
        assert_eq!(d.accesses(), 2);
    }
}
