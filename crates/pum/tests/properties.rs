//! Property-based tests for the processing-using-memory engines.

use ia_dram::{DramConfig, DramModule, PhysAddr};
use ia_pum::{
    bulk_copy, conventional_gather, gather_elements, gs_dram_gather, AmbitEngine, BitwiseOp,
    CopyMode,
};
use proptest::prelude::*;

fn row_stride() -> u64 {
    let g = DramConfig::ddr3_1600().geometry;
    g.row_bytes * (g.banks_per_group * g.bank_groups * g.ranks * g.channels) as u64
}

proptest! {
    /// Every Ambit operation is functionally exact on arbitrary words.
    #[test]
    fn ambit_matches_scalar_semantics(a in any::<u64>(), b in any::<u64>()) {
        let mut e = AmbitEngine::new(&DramConfig::ddr3_1600());
        let w = e.row_words();
        e.write_row(0, vec![a; w]).unwrap();
        e.write_row(1, vec![b; w]).unwrap();
        for (op, expect) in [
            (BitwiseOp::And, a & b),
            (BitwiseOp::Or, a | b),
            (BitwiseOp::Nand, !(a & b)),
            (BitwiseOp::Nor, !(a | b)),
            (BitwiseOp::Xor, a ^ b),
            (BitwiseOp::Xnor, !(a ^ b)),
        ] {
            e.execute(op, 5, 0, Some(1)).unwrap();
            prop_assert!(e.read_row(5).unwrap().iter().all(|&x| x == expect));
        }
        e.execute(BitwiseOp::Not, 6, 0, None).unwrap();
        prop_assert!(e.read_row(6).unwrap().iter().all(|&x| x == !a));
    }

    /// Ambit cost accounting is exactly linear in AAP counts.
    #[test]
    fn ambit_costs_are_linear(ops in prop::collection::vec(0usize..7, 1..30)) {
        let mut e = AmbitEngine::new(&DramConfig::ddr3_1600());
        let w = e.row_words();
        e.write_row(0, vec![1; w]).unwrap();
        e.write_row(1, vec![2; w]).unwrap();
        let all = BitwiseOp::all();
        let mut expected_aaps = 0;
        for &i in &ops {
            let op = all[i];
            let second = if matches!(op, BitwiseOp::Not) { None } else { Some(1) };
            e.execute(op, 9, 0, second).unwrap();
            expected_aaps += op.aap_count();
        }
        prop_assert_eq!(e.stats().aaps, expected_aaps);
        prop_assert_eq!(e.stats().cycles, expected_aaps * e.aap_cycles());
        prop_assert_eq!(e.stats().ops, ops.len() as u64);
    }

    /// In-DRAM copies never touch the I/O rail; CPU copies always do.
    #[test]
    fn copy_energy_attribution(bytes in 1u64..(1 << 18)) {
        let mut d = DramModule::new(DramConfig::ddr3_1600()).unwrap();
        bulk_copy(&mut d, PhysAddr::new(0), PhysAddr::new(row_stride()), bytes, CopyMode::Fpm)
            .unwrap();
        prop_assert_eq!(d.energy().io_pj, 0.0);
        let mut d2 = DramModule::new(DramConfig::ddr3_1600()).unwrap();
        bulk_copy(&mut d2, PhysAddr::new(0), PhysAddr::new(row_stride()), bytes, CopyMode::Cpu)
            .unwrap();
        prop_assert!(d2.energy().io_pj > 0.0);
    }

    /// FPM latency and energy scale linearly with rows copied.
    #[test]
    fn fpm_scales_linearly(rows in 1u64..64) {
        let bytes = rows * 8192;
        let mut d = DramModule::new(DramConfig::ddr3_1600()).unwrap();
        let r = bulk_copy(&mut d, PhysAddr::new(0), PhysAddr::new(row_stride()), bytes, CopyMode::Fpm)
            .unwrap();
        let mut d1 = DramModule::new(DramConfig::ddr3_1600()).unwrap();
        let one = bulk_copy(&mut d1, PhysAddr::new(0), PhysAddr::new(row_stride()), 8192, CopyMode::Fpm)
            .unwrap();
        prop_assert_eq!(r.cycles, one.cycles * rows);
        prop_assert!((r.energy_pj - one.energy_pj * rows as f64).abs() < 1e-6);
    }

    /// GS-DRAM never moves more than conventional for strides above the
    /// element size, and the functional gather length is exact.
    #[test]
    fn gsdram_dominates_on_sparse_patterns(
        elements in 1u64..2000,
        stride_mult in 2u64..32,
    ) {
        let cfg = DramConfig::ddr3_1600();
        let stride = 8 * stride_mult;
        let conv = conventional_gather(&cfg, elements, 8, stride).unwrap();
        let gs = gs_dram_gather(&cfg, elements, 8, stride).unwrap();
        if stride >= 64 && elements >= 64 {
            prop_assert!(gs.bytes_moved <= conv.bytes_moved);
        }
        prop_assert_eq!(conv.useful_bytes, gs.useful_bytes);

        let data = vec![7u8; ((elements - 1) * stride + 8) as usize];
        let out = gather_elements(&data, elements, 8, stride).unwrap();
        prop_assert_eq!(out.len() as u64, elements * 8);
    }
}
