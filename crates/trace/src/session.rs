//! Process-wide trace session: a capture flag plus an ordered sink.
//!
//! The bench CLI turns capture on when `--trace`/`--profile` is given;
//! library code checks [`capture_enabled`] before paying for tracers.
//! Component traces are [`submit`]ted **from the main thread, in
//! deterministic (input) order** — parallel sweeps return each task's
//! [`TraceLog`] with the task result and submit after the join, which is
//! what keeps the merged session log byte-identical across `--threads`.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, PoisonError};

use crate::log::TraceLog;

static CAPTURE: AtomicBool = AtomicBool::new(false);
static SESSION: Mutex<Vec<TraceLog>> = Mutex::new(Vec::new());

/// Turns session-wide trace capture on or off.
pub fn set_capture(on: bool) {
    CAPTURE.store(on, Ordering::Relaxed);
}

/// Whether components should construct enabled tracers.
#[must_use]
pub fn capture_enabled() -> bool {
    CAPTURE.load(Ordering::Relaxed)
}

/// Appends `log` to the session, preserving submission order. Call from
/// the main thread in deterministic order (see module docs).
pub fn submit(log: TraceLog) {
    if log.is_empty() {
        return;
    }
    SESSION
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .push(log);
}

/// Drains every submitted log into one merged [`TraceLog`] and resets
/// the session.
#[must_use]
pub fn take() -> TraceLog {
    let logs = std::mem::take(&mut *SESSION.lock().unwrap_or_else(PoisonError::into_inner));
    let mut merged = TraceLog::new();
    for log in logs {
        merged.merge(log);
    }
    merged
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tracer;

    #[test]
    fn session_accumulates_in_submission_order() {
        // One test owns the global session (tests run in one process);
        // drain first so a previous test's leftovers cannot interfere.
        let _ = take();
        assert!(!capture_enabled());
        set_capture(true);
        assert!(capture_enabled());
        for track in ["a", "b", "c"] {
            let mut t = Tracer::new(track, 4);
            t.mark("busy", 0);
            let mut log = TraceLog::new();
            log.push(t.take());
            submit(log);
        }
        submit(TraceLog::new()); // empty logs are ignored
        set_capture(false);
        let merged = take();
        let tracks: Vec<&str> = merged.components.iter().map(|c| c.track.as_str()).collect();
        assert_eq!(tracks, ["a", "b", "c"]);
        assert!(take().is_empty(), "take drains the session");
    }
}
