//! # ia-trace — deterministic tracing and cycle-attribution profiling
//!
//! The paper's bottleneck-analysis methodology needs to answer *where
//! do simulated cycles go* — scheduler arbitration? bank state
//! machines? the reliability ladder? NoC routing? This crate is that
//! observability layer for the whole workspace:
//!
//! * [`Tracer`] — per-component recorder of cycle-attribution **marks**
//!   (every simulated cycle classified into exactly one phase), nested
//!   **spans** (inclusive/exclusive cycle totals), and **instants**
//!   (point events with values), all timestamped in simulated cycles.
//!   The disabled path is one branch and never allocates, so trace
//!   points live inside per-cycle hot loops.
//! * [`Profile`] — folds a [`TraceLog`] into the sorted per-track /
//!   per-phase cycle table, a per-component rollup, text + JSON
//!   renderings, and `trace.*` metrics via
//!   [`MetricSource`](ia_telemetry::MetricSource).
//! * [`chrome`] — a Chrome trace-event / Perfetto JSON exporter with
//!   fixed field order: `ts` is the simulated cycle, so the file is
//!   byte-identical across `--threads` settings, seeds, and hosts.
//! * [`session`] — the process-wide capture flag and ordered submission
//!   sink behind the shared `--trace <path>` / `--profile` CLI flags.
//!
//! Determinism is the design constraint everything above serves: traces
//! carry no wall-clock anywhere (host-time diagnostics stay in
//! `ia-par`'s runtime ledger), aggregation uses ordered maps, and
//! parallel sweeps submit per-task logs from the main thread in input
//! order.
//!
//! ## Example
//!
//! ```
//! use ia_trace::{chrome, Profile, TraceLog, Tracer};
//!
//! let mut ctrl = Tracer::new("ctrl", 1024);
//! for cycle in 0..90 {
//!     ctrl.mark("sched.issue", cycle);
//! }
//! ctrl.mark_n("idle.empty", 90, 10);
//! let mut log = TraceLog::new();
//! log.push(ctrl.take());
//!
//! let profile = Profile::from_log(&log);
//! assert_eq!(profile.total_attributed, 100); // every cycle attributed
//! assert_eq!(profile.top_components(1)[0].0, "ctrl");
//! assert!(chrome::render_chrome(&log).contains("\"traceEvents\""));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod chrome;
mod log;
mod profile;
pub mod session;
mod tracer;

pub use log::{ComponentTrace, InstantStat, SpanStat, TraceLog};
pub use profile::{Profile, ProfileRow};
pub use session::{capture_enabled, set_capture, submit};
pub use tracer::{TraceEvent, Tracer, DEFAULT_EVENT_CAPACITY};
