//! Drained trace data: [`ComponentTrace`] (one tracer's output) and
//! [`TraceLog`] (every component of a run, merged in a deterministic
//! order).
//!
//! A `TraceLog` travels *with* run results — e.g. inside a scheduler
//! run report — so parallel sweeps can collect per-task traces in task
//! order and merge them on the main thread, keeping the merged log
//! byte-identical across `--threads` settings.

use crate::tracer::TraceEvent;

/// Per-phase span totals for one component (cycles are simulated).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpanStat {
    /// Phase label.
    pub phase: &'static str,
    /// Total cycles inside the span, children included.
    pub inclusive: u64,
    /// Total cycles inside the span minus cycles inside child spans.
    pub exclusive: u64,
    /// Number of closed spans with this label.
    pub count: u64,
}

/// Per-name instant-event totals for one component.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstantStat {
    /// Event name.
    pub name: &'static str,
    /// Number of events recorded.
    pub count: u64,
    /// Sum of the event values.
    pub sum: f64,
}

/// Everything one [`Tracer`](crate::Tracer) recorded: the (bounded)
/// event ring plus the exact aggregated totals.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ComponentTrace {
    /// Track label, possibly path-prefixed (`"FR-FCFS/ctrl"`).
    pub track: String,
    /// Ring contents, oldest → newest (bounded; see `dropped`).
    pub events: Vec<TraceEvent>,
    /// Exact per-phase attributed cycles, sorted by phase label.
    pub marks: Vec<(&'static str, u64)>,
    /// Exact per-phase span totals, sorted by phase label.
    pub spans: Vec<SpanStat>,
    /// Exact per-name instant totals, sorted by name.
    pub instants: Vec<InstantStat>,
    /// Total ring events ever recorded (kept + dropped).
    pub recorded: u64,
    /// Ring events overwritten because the ring was full.
    pub dropped: u64,
    /// Spans still open when the tracer was drained.
    pub truncated_spans: u64,
}

impl ComponentTrace {
    /// Total simulated cycles attributed by this component's marks.
    #[must_use]
    pub fn attributed(&self) -> u64 {
        self.marks.iter().map(|(_, c)| c).sum()
    }
}

/// The merged trace of one run (or one suite of runs): an ordered list
/// of component traces. Order is meaningful — it is the deterministic
/// submission order, and the Chrome exporter assigns `tid`s from it.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TraceLog {
    /// Component traces in submission order.
    pub components: Vec<ComponentTrace>,
}

impl TraceLog {
    /// An empty log.
    #[must_use]
    pub fn new() -> Self {
        TraceLog::default()
    }

    /// Appends one component's trace.
    pub fn push(&mut self, component: ComponentTrace) {
        self.components.push(component);
    }

    /// Appends every component of `other`, preserving order.
    pub fn merge(&mut self, other: TraceLog) {
        self.components.extend(other.components);
    }

    /// Returns the log with every track renamed to `label/track` — how
    /// a sweep scopes per-task traces ("FR-FCFS/ctrl", "ATLAS/ctrl").
    #[must_use]
    pub fn prefixed(mut self, label: &str) -> TraceLog {
        for c in &mut self.components {
            c.track = format!("{label}/{}", c.track);
        }
        self
    }

    /// True when no component traces were collected.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.components.is_empty()
    }

    /// Total attributed cycles across every component.
    #[must_use]
    pub fn attributed(&self) -> u64 {
        self.components.iter().map(ComponentTrace::attributed).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tracer;

    fn trace_of(track: &str, phase: &'static str, cycles: u64) -> ComponentTrace {
        let mut t = Tracer::new(track, 8);
        t.mark_n(phase, 0, cycles);
        t.take()
    }

    #[test]
    fn merge_preserves_submission_order() {
        let mut log = TraceLog::new();
        log.push(trace_of("ctrl", "busy", 10));
        let mut other = TraceLog::new();
        other.push(trace_of("dram", "act", 5));
        other.push(trace_of("engine", "run", 1));
        log.merge(other);
        let tracks: Vec<&str> = log.components.iter().map(|c| c.track.as_str()).collect();
        assert_eq!(tracks, ["ctrl", "dram", "engine"]);
        assert_eq!(log.attributed(), 16);
    }

    #[test]
    fn prefixed_scopes_every_track() {
        let mut log = TraceLog::new();
        log.push(trace_of("ctrl", "busy", 1));
        log.push(trace_of("dram", "act", 1));
        let log = log.prefixed("FR-FCFS");
        assert_eq!(log.components[0].track, "FR-FCFS/ctrl");
        assert_eq!(log.components[1].track, "FR-FCFS/dram");
    }
}
