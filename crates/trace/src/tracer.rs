//! The per-component [`Tracer`]: cycle-attribution marks, nested spans,
//! and instant events, all timestamped in **simulated cycles**.
//!
//! A `Tracer` is owned by the component it observes (a memory
//! controller, a mesh, the sim engine) and costs one branch per trace
//! point when disabled — the same contract as
//! [`TraceBuffer`](ia_telemetry::TraceBuffer), which backs the event
//! ring. Aggregation (per-phase cycle totals, span inclusive/exclusive
//! time, instant counts) is folded in *at record time*, so a full ring
//! overwriting old events never corrupts the profile totals.

use std::collections::BTreeMap;

use ia_telemetry::TraceBuffer;

use crate::log::{ComponentTrace, InstantStat, SpanStat};

/// Default per-component event-ring capacity used by the `--trace` path.
pub const DEFAULT_EVENT_CAPACITY: usize = 4096;

/// One recorded trace event, timestamped in simulated cycles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent {
    /// A closed nested span covering `[begin, end)` cycles; `depth` is
    /// the number of enclosing spans still open when it closed.
    Span {
        /// Phase label (`"run"`, `"drain"`, …).
        phase: &'static str,
        /// First cycle covered.
        begin: u64,
        /// One past the last cycle covered.
        end: u64,
        /// Nesting depth at close (0 = top level).
        depth: u32,
    },
    /// A coalesced run of per-cycle attribution marks: `cycles`
    /// contiguous cycles starting at `begin`, attributed to `phase`.
    Mark {
        /// Phase label (`"sched.issue_column"`, `"idle.empty"`, …).
        phase: &'static str,
        /// First cycle of the run.
        begin: u64,
        /// Length of the run in cycles.
        cycles: u64,
    },
    /// A point event at cycle `at` carrying a value.
    // lint: allow(D002, a Chrome "instant" event stamped with a simulated cycle, not std::time)
    Instant {
        /// Event name (`"engine.skip"`, `"reliability.corrected"`, …).
        name: &'static str,
        /// Cycle at which the event fired.
        at: u64,
        /// Event payload (count delta, cycles skipped, …).
        value: f64,
    },
}

#[derive(Debug, Clone, Copy)]
struct OpenSpan {
    phase: &'static str,
    begin: u64,
    child_cycles: u64,
}

#[derive(Debug, Clone, Copy)]
struct MarkRun {
    phase: &'static str,
    begin: u64,
    cycles: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct SpanTotals {
    inclusive: u64,
    exclusive: u64,
    count: u64,
}

#[derive(Debug, Clone, Copy, Default)]
struct InstantTotals {
    count: u64,
    sum: f64,
}

/// A deterministic per-component trace recorder.
///
/// Phase labels are `&'static str` by design: recording never allocates
/// per event (the only allocations are the bounded ring at construction
/// and the first insertion of each distinct label into the fold maps).
///
/// # Examples
///
/// ```
/// use ia_trace::Tracer;
/// let mut t = Tracer::new("ctrl", 64);
/// t.mark("sched.issue", 0);
/// t.mark("sched.issue", 1); // coalesces with the previous cycle
/// t.mark("idle.empty", 2);
/// t.instant("refresh", 2);
/// let trace = t.take();
/// assert_eq!(trace.attributed(), 3);
/// assert_eq!(trace.marks, vec![("idle.empty", 1), ("sched.issue", 2)]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    track: String,
    events: TraceBuffer<TraceEvent>,
    stack: Vec<OpenSpan>,
    run: Option<MarkRun>,
    marks: BTreeMap<&'static str, u64>,
    spans: BTreeMap<&'static str, SpanTotals>,
    instants: BTreeMap<&'static str, InstantTotals>,
    truncated_spans: u64,
}

impl Tracer {
    /// An enabled tracer for track `track`, ringing at most `capacity`
    /// events (aggregated totals are unbounded and exact regardless).
    #[must_use]
    pub fn new(track: &str, capacity: usize) -> Self {
        Tracer {
            track: track.to_owned(),
            events: TraceBuffer::new(capacity),
            ..Tracer::default()
        }
    }

    /// A disabled tracer: every record call is a single branch and
    /// nothing ever allocates. This is what components embed by default.
    #[must_use]
    pub fn disabled() -> Self {
        Tracer::default()
    }

    /// Whether trace points currently record anything.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.events.is_enabled()
    }

    /// The track label events are attributed to.
    #[must_use]
    pub fn track(&self) -> &str {
        &self.track
    }

    /// Attributes cycle `at` to `phase` (the profiler's unit of work).
    /// Contiguous same-phase cycles coalesce into one ring event.
    pub fn mark(&mut self, phase: &'static str, at: u64) {
        self.mark_n(phase, at, 1);
    }

    /// Attributes `n` contiguous cycles starting at `at` to `phase` —
    /// the bulk form used by `skip_to` fast-forwarding.
    pub fn mark_n(&mut self, phase: &'static str, at: u64, n: u64) {
        if !self.is_enabled() || n == 0 {
            return;
        }
        *self.marks.entry(phase).or_insert(0) += n;
        match &mut self.run {
            Some(run) if run.phase == phase && run.begin + run.cycles == at => run.cycles += n,
            _ => {
                self.flush_run();
                self.run = Some(MarkRun {
                    phase,
                    begin: at,
                    cycles: n,
                });
            }
        }
    }

    /// Opens a nested span labelled `phase` at cycle `at`.
    pub fn begin(&mut self, phase: &'static str, at: u64) {
        if !self.is_enabled() {
            return;
        }
        self.stack.push(OpenSpan {
            phase,
            begin: at,
            child_cycles: 0,
        });
    }

    /// Closes the innermost open span at cycle `at`. Inclusive time is
    /// `at - begin`; exclusive time subtracts the inclusive time of
    /// child spans. A close with no open span is ignored.
    pub fn end(&mut self, at: u64) {
        if !self.is_enabled() {
            return;
        }
        let Some(open) = self.stack.pop() else {
            return;
        };
        let inclusive = at.saturating_sub(open.begin);
        let exclusive = inclusive.saturating_sub(open.child_cycles);
        let totals = self.spans.entry(open.phase).or_default();
        totals.inclusive += inclusive;
        totals.exclusive += exclusive;
        totals.count += 1;
        if let Some(parent) = self.stack.last_mut() {
            parent.child_cycles += inclusive;
        }
        let depth = self.stack.len() as u32;
        self.events.push(TraceEvent::Span {
            phase: open.phase,
            begin: open.begin,
            end: at,
            depth,
        });
    }

    /// Records a point event named `name` at cycle `at` with value `1`.
    pub fn instant(&mut self, name: &'static str, at: u64) {
        self.instant_value(name, at, 1.0);
    }

    /// Records a point event carrying an explicit `value` (a count
    /// delta, cycles skipped, …).
    pub fn instant_value(&mut self, name: &'static str, at: u64, value: f64) {
        if !self.is_enabled() {
            return;
        }
        let totals = self.instants.entry(name).or_default();
        totals.count += 1;
        totals.sum += value;
        // lint: allow(D002, a Chrome "instant" event stamped with a simulated cycle, not std::time)
        self.events.push(TraceEvent::Instant { name, at, value });
    }

    /// Drains the tracer into a [`ComponentTrace`], resetting it for the
    /// next run (capacity and track label are kept). Open spans are
    /// discarded and counted in
    /// [`truncated_spans`](ComponentTrace::truncated_spans).
    #[must_use]
    pub fn take(&mut self) -> ComponentTrace {
        self.flush_run();
        self.truncated_spans += self.stack.len() as u64;
        self.stack.clear();
        let fresh = TraceBuffer::new(self.events.capacity());
        let ring = std::mem::replace(&mut self.events, fresh);
        ComponentTrace {
            track: self.track.clone(),
            events: ring.iter().copied().collect(),
            marks: std::mem::take(&mut self.marks).into_iter().collect(),
            spans: std::mem::take(&mut self.spans)
                .into_iter()
                .map(|(phase, t)| SpanStat {
                    phase,
                    inclusive: t.inclusive,
                    exclusive: t.exclusive,
                    count: t.count,
                })
                .collect(),
            instants: std::mem::take(&mut self.instants)
                .into_iter()
                .map(|(name, t)| InstantStat {
                    name,
                    count: t.count,
                    sum: t.sum,
                })
                .collect(),
            recorded: ring.recorded(),
            dropped: ring.dropped(),
            truncated_spans: std::mem::take(&mut self.truncated_spans),
        }
    }

    fn flush_run(&mut self) {
        if let Some(run) = self.run.take() {
            self.events.push(TraceEvent::Mark {
                phase: run.phase,
                begin: run.begin,
                cycles: run.cycles,
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing_and_never_allocates() {
        let mut t = Tracer::disabled();
        for at in 0..10_000u64 {
            t.mark("phase", at);
            t.begin("span", at);
            t.end(at);
            t.instant("evt", at);
        }
        assert!(!t.is_enabled());
        let trace = t.take();
        assert!(trace.events.is_empty());
        assert!(trace.marks.is_empty());
        assert_eq!(trace.attributed(), 0);
    }

    #[test]
    fn contiguous_marks_coalesce_into_one_event() {
        let mut t = Tracer::new("ctrl", 16);
        for at in 0..5 {
            t.mark("busy", at);
        }
        t.mark("idle", 5);
        t.mark("busy", 6);
        let trace = t.take();
        assert_eq!(
            trace.events,
            vec![
                TraceEvent::Mark {
                    phase: "busy",
                    begin: 0,
                    cycles: 5
                },
                TraceEvent::Mark {
                    phase: "idle",
                    begin: 5,
                    cycles: 1
                },
                TraceEvent::Mark {
                    phase: "busy",
                    begin: 6,
                    cycles: 1
                },
            ]
        );
        assert_eq!(trace.marks, vec![("busy", 6), ("idle", 1)]);
        assert_eq!(trace.attributed(), 7);
    }

    #[test]
    fn mark_n_bulk_attribution_extends_runs() {
        let mut t = Tracer::new("ctrl", 16);
        t.mark("busy", 0);
        t.mark_n("busy", 1, 99); // skip_to-style bulk mark, same phase
        t.mark_n("stall", 100, 20);
        let trace = t.take();
        assert_eq!(trace.marks, vec![("busy", 100), ("stall", 20)]);
        assert_eq!(trace.events.len(), 2);
    }

    #[test]
    fn nested_spans_split_inclusive_and_exclusive() {
        let mut t = Tracer::new("engine", 16);
        t.begin("outer", 0);
        t.begin("inner", 10);
        t.end(30); // inner: 20 cycles
        t.end(50); // outer: 50 inclusive, 30 exclusive
        let trace = t.take();
        let outer = trace.spans.iter().find(|s| s.phase == "outer").cloned();
        let inner = trace.spans.iter().find(|s| s.phase == "inner").cloned();
        assert_eq!(
            outer,
            Some(SpanStat {
                phase: "outer",
                inclusive: 50,
                exclusive: 30,
                count: 1
            })
        );
        assert_eq!(
            inner,
            Some(SpanStat {
                phase: "inner",
                inclusive: 20,
                exclusive: 20,
                count: 1
            })
        );
        // Ring order: inner closed first, at depth 1.
        assert_eq!(
            trace.events[0],
            TraceEvent::Span {
                phase: "inner",
                begin: 10,
                end: 30,
                depth: 1
            }
        );
    }

    #[test]
    fn totals_survive_ring_overflow() {
        let mut t = Tracer::new("ctrl", 2);
        for at in 0..100 {
            // Alternate phases so nothing coalesces: 100 ring events.
            let phase = if at % 2 == 0 { "a" } else { "b" };
            t.mark(phase, at);
        }
        let trace = t.take();
        assert_eq!(trace.events.len(), 2, "ring is bounded");
        assert!(trace.dropped > 0);
        assert_eq!(trace.attributed(), 100, "profile totals stay exact");
    }

    #[test]
    fn take_resets_for_the_next_run() {
        let mut t = Tracer::new("ctrl", 8);
        t.mark("busy", 0);
        t.begin("open", 0);
        let first = t.take();
        assert_eq!(first.truncated_spans, 1);
        assert!(t.is_enabled(), "capacity survives take()");
        t.mark("busy", 7);
        let second = t.take();
        assert_eq!(second.marks, vec![("busy", 1)]);
        assert_eq!(second.truncated_spans, 0);
        assert_eq!(second.recorded, 1);
    }

    #[test]
    fn unbalanced_end_is_ignored() {
        let mut t = Tracer::new("x", 4);
        t.end(10);
        let trace = t.take();
        assert!(trace.events.is_empty());
        assert_eq!(trace.truncated_spans, 0);
    }

    #[test]
    fn instants_fold_counts_and_sums() {
        let mut t = Tracer::new("rel", 8);
        t.instant("corrected", 5);
        t.instant_value("corrected", 9, 3.0);
        t.instant("scrub", 9);
        let trace = t.take();
        assert_eq!(
            trace.instants,
            vec![
                InstantStat {
                    name: "corrected",
                    count: 2,
                    sum: 4.0
                },
                InstantStat {
                    name: "scrub",
                    count: 1,
                    sum: 1.0
                },
            ]
        );
    }
}
