//! The cycle-attribution [`Profile`]: where do simulated cycles go?
//!
//! Folds a [`TraceLog`] into a sorted per-track/per-phase table plus a
//! per-component rollup (the last path segment of each track — `ctrl`,
//! `dram`, `engine` — aggregated across sweep tasks). Rendered as text
//! for stderr, as byte-stable JSON, and exported through ia-telemetry
//! as `trace.*` metrics.

use ia_telemetry::{JsonValue, MetricSource, Scope};

use crate::log::TraceLog;

/// One attributed line of the profile table.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileRow {
    /// Track the cycles belong to (`"FR-FCFS/ctrl"`).
    pub track: String,
    /// Phase within the track (`"sched.issue_column"`).
    pub phase: &'static str,
    /// Simulated cycles attributed.
    pub cycles: u64,
    /// Fraction of all attributed cycles (0 when nothing attributed).
    pub share: f64,
}

/// A folded cycle-attribution profile. Construct with
/// [`Profile::from_log`]; every collection is deterministically sorted
/// (cycles descending, then track/phase ascending).
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    /// Per-track/per-phase attribution, sorted hottest first.
    pub rows: Vec<ProfileRow>,
    /// Attributed cycles per component (last track path segment),
    /// aggregated across tracks and sorted hottest first.
    pub components: Vec<(String, u64)>,
    /// Total attributed cycles (the sum of every row).
    pub total_attributed: u64,
    /// Closed spans across every component.
    pub span_count: u64,
    /// Instant events across every component.
    pub instant_count: u64,
    /// Ring events ever recorded across every component.
    pub events_recorded: u64,
    /// Ring events lost to overwrite across every component.
    pub events_dropped: u64,
}

fn component_of(track: &str) -> &str {
    track.rsplit('/').next().unwrap_or(track)
}

impl Profile {
    /// Folds `log` into a profile.
    #[must_use]
    pub fn from_log(log: &TraceLog) -> Profile {
        let mut rows = Vec::new();
        let mut components: Vec<(String, u64)> = Vec::new();
        let mut span_count = 0;
        let mut instant_count = 0;
        let mut events_recorded = 0;
        let mut events_dropped = 0;
        for c in &log.components {
            for &(phase, cycles) in &c.marks {
                rows.push(ProfileRow {
                    track: c.track.clone(),
                    phase,
                    cycles,
                    share: 0.0,
                });
            }
            let comp = component_of(&c.track);
            let attributed = c.attributed();
            match components.iter_mut().find(|(name, _)| name == comp) {
                Some((_, total)) => *total += attributed,
                None => components.push((comp.to_owned(), attributed)),
            }
            span_count += c.spans.iter().map(|s| s.count).sum::<u64>();
            instant_count += c.instants.iter().map(|i| i.count).sum::<u64>();
            events_recorded += c.recorded;
            events_dropped += c.dropped;
        }
        let total_attributed: u64 = rows.iter().map(|r| r.cycles).sum();
        if total_attributed > 0 {
            for r in &mut rows {
                r.share = r.cycles as f64 / total_attributed as f64;
            }
        }
        rows.sort_by(|a, b| {
            b.cycles
                .cmp(&a.cycles)
                .then_with(|| a.track.cmp(&b.track))
                .then_with(|| a.phase.cmp(b.phase))
        });
        components.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        Profile {
            rows,
            components,
            total_attributed,
            span_count,
            instant_count,
            events_recorded,
            events_dropped,
        }
    }

    /// The `n` hottest components as `(name, attributed_cycles)`.
    #[must_use]
    pub fn top_components(&self, n: usize) -> &[(String, u64)] {
        &self.components[..n.min(self.components.len())]
    }

    /// Renders the profile as a sorted text table (for stderr).
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = format!(
            "[profile] attributed {} simulated cycles across {} tracks \
             ({} spans, {} instants, {} ring events, {} dropped)\n",
            self.total_attributed,
            self.components.len(),
            self.span_count,
            self.instant_count,
            self.events_recorded,
            self.events_dropped,
        );
        out.push_str(&format!(
            "{:>14}  {:>6}  {:<28} {}\n",
            "cycles", "share", "track", "phase"
        ));
        for r in &self.rows {
            out.push_str(&format!(
                "{:>14}  {:>5.1}%  {:<28} {}\n",
                r.cycles,
                r.share * 100.0,
                r.track,
                r.phase
            ));
        }
        let top: Vec<String> = self
            .top_components(3)
            .iter()
            .map(|(name, cycles)| {
                let share = if self.total_attributed > 0 {
                    *cycles as f64 / self.total_attributed as f64 * 100.0
                } else {
                    0.0
                };
                format!("{name} {share:.1}%")
            })
            .collect();
        out.push_str(&format!("top components: {}\n", top.join(", ")));
        out
    }

    /// Renders the profile as a byte-stable JSON value.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        let rows = self
            .rows
            .iter()
            .map(|r| {
                JsonValue::obj(vec![
                    ("track", JsonValue::Str(r.track.clone())),
                    ("phase", JsonValue::Str(r.phase.to_owned())),
                    ("cycles", JsonValue::Num(r.cycles as f64)),
                    ("share", JsonValue::Num(r.share)),
                ])
            })
            .collect();
        let components = self
            .components
            .iter()
            .map(|(name, cycles)| {
                JsonValue::obj(vec![
                    ("component", JsonValue::Str(name.clone())),
                    ("cycles", JsonValue::Num(*cycles as f64)),
                ])
            })
            .collect();
        JsonValue::obj(vec![
            (
                "total_attributed",
                JsonValue::Num(self.total_attributed as f64),
            ),
            ("rows", JsonValue::Arr(rows)),
            ("components", JsonValue::Arr(components)),
            ("spans", JsonValue::Num(self.span_count as f64)),
            ("instants", JsonValue::Num(self.instant_count as f64)),
            (
                "events_recorded",
                JsonValue::Num(self.events_recorded as f64),
            ),
            ("events_dropped", JsonValue::Num(self.events_dropped as f64)),
        ])
    }
}

impl MetricSource for Profile {
    fn export_into(&self, scope: &mut Scope<'_>) {
        scope.set_counter("attributed_cycles", self.total_attributed);
        scope.set_counter("tracks", self.components.len() as u64);
        scope.set_counter("phases", self.rows.len() as u64);
        scope.set_counter("spans", self.span_count);
        scope.set_counter("instants", self.instant_count);
        scope.set_counter("events_recorded", self.events_recorded);
        scope.set_counter("events_dropped", self.events_dropped);
        if let Some((_, hottest)) = self.components.first() {
            scope.set_counter("hottest_component_cycles", *hottest);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{TraceLog, Tracer};
    use ia_telemetry::Registry;

    fn sample_log() -> TraceLog {
        let mut log = TraceLog::new();
        let mut ctrl = Tracer::new("ctrl", 16);
        ctrl.mark_n("sched.issue", 0, 60);
        ctrl.mark_n("idle.empty", 60, 20);
        ctrl.instant("refresh", 60);
        let mut dram = Tracer::new("dram", 16);
        dram.mark_n("bank.act", 0, 20);
        let mut log_a = TraceLog::new();
        log_a.push(ctrl.take());
        log_a.push(dram.take());
        log.merge(log_a.prefixed("FR-FCFS"));
        let mut ctrl2 = Tracer::new("ctrl", 16);
        ctrl2.mark_n("sched.issue", 0, 40);
        let mut log_b = TraceLog::new();
        log_b.push(ctrl2.take());
        log.merge(log_b.prefixed("ATLAS"));
        log
    }

    #[test]
    fn profile_sums_and_sorts_components() {
        let p = Profile::from_log(&sample_log());
        assert_eq!(p.total_attributed, 140);
        assert_eq!(
            p.components,
            vec![("ctrl".to_owned(), 120), ("dram".to_owned(), 20)]
        );
        assert_eq!(p.top_components(1), &[("ctrl".to_owned(), 120)]);
        // Hottest row first; shares sum to 1.
        assert_eq!(p.rows[0].cycles, 60);
        let share_sum: f64 = p.rows.iter().map(|r| r.share).sum();
        assert!((share_sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn text_and_json_are_deterministic() {
        let a = Profile::from_log(&sample_log());
        let b = Profile::from_log(&sample_log());
        assert_eq!(a.to_text(), b.to_text());
        assert_eq!(a.to_json().render(), b.to_json().render());
        assert!(a
            .to_text()
            .contains("top components: ctrl 85.7%, dram 14.3%"));
    }

    #[test]
    fn exports_trace_metrics_namespace() {
        let p = Profile::from_log(&sample_log());
        let mut reg = Registry::new();
        reg.collect("trace.profile", &p);
        let snap = reg.snapshot(0);
        assert_eq!(snap.counter("trace.profile.attributed_cycles"), Some(140));
        assert_eq!(snap.counter("trace.profile.instants"), Some(1));
        assert_eq!(
            snap.counter("trace.profile.hottest_component_cycles"),
            Some(120)
        );
    }

    #[test]
    fn empty_log_profiles_cleanly() {
        let p = Profile::from_log(&TraceLog::new());
        assert_eq!(p.total_attributed, 0);
        assert!(p.top_components(3).is_empty());
        assert!(p.to_text().contains("attributed 0 simulated cycles"));
    }
}
