//! Chrome trace-event / Perfetto JSON export.
//!
//! Emits the classic `{"traceEvents": [...]}` format understood by
//! `chrome://tracing` and [ui.perfetto.dev](https://ui.perfetto.dev):
//! one metadata (`"M"`) thread-name event per track, then every ring
//! event as a complete (`"X"`) or instant (`"i"`) event. Timestamps are
//! **simulated cycles**, not microseconds — the timeline shows simulated
//! time, which is exactly what makes the file byte-identical across
//! `--threads` settings and hosts. Field order is fixed, so rendering is
//! byte-stable.

use ia_telemetry::JsonValue;

use crate::log::TraceLog;
use crate::tracer::TraceEvent;

fn event_obj(fields: Vec<(&str, JsonValue)>) -> JsonValue {
    JsonValue::obj(fields)
}

/// Converts `log` to a Chrome trace-event JSON value. Track order in
/// the log fixes the `tid` assignment (first track = tid 1).
#[must_use]
pub fn to_chrome_json(log: &TraceLog) -> JsonValue {
    let mut events = Vec::new();
    for (i, c) in log.components.iter().enumerate() {
        let tid = (i + 1) as f64;
        events.push(event_obj(vec![
            ("name", JsonValue::Str("thread_name".to_owned())),
            ("ph", JsonValue::Str("M".to_owned())),
            ("pid", JsonValue::Num(0.0)),
            ("tid", JsonValue::Num(tid)),
            (
                "args",
                JsonValue::obj(vec![("name", JsonValue::Str(c.track.clone()))]),
            ),
        ]));
    }
    for (i, c) in log.components.iter().enumerate() {
        let tid = (i + 1) as f64;
        for e in &c.events {
            events.push(match *e {
                TraceEvent::Span {
                    phase,
                    begin,
                    end,
                    depth,
                } => event_obj(vec![
                    ("name", JsonValue::Str(phase.to_owned())),
                    ("ph", JsonValue::Str("X".to_owned())),
                    ("ts", JsonValue::Num(begin as f64)),
                    ("dur", JsonValue::Num(end.saturating_sub(begin) as f64)),
                    ("pid", JsonValue::Num(0.0)),
                    ("tid", JsonValue::Num(tid)),
                    (
                        "args",
                        JsonValue::obj(vec![("depth", JsonValue::Num(f64::from(depth)))]),
                    ),
                ]),
                TraceEvent::Mark {
                    phase,
                    begin,
                    cycles,
                } => event_obj(vec![
                    ("name", JsonValue::Str(phase.to_owned())),
                    ("ph", JsonValue::Str("X".to_owned())),
                    ("ts", JsonValue::Num(begin as f64)),
                    ("dur", JsonValue::Num(cycles as f64)),
                    ("pid", JsonValue::Num(0.0)),
                    ("tid", JsonValue::Num(tid)),
                ]),
                // lint: allow(D002, a Chrome "instant" event stamped with a simulated cycle, not std::time)
                TraceEvent::Instant { name, at, value } => event_obj(vec![
                    ("name", JsonValue::Str(name.to_owned())),
                    ("ph", JsonValue::Str("i".to_owned())),
                    ("ts", JsonValue::Num(at as f64)),
                    ("pid", JsonValue::Num(0.0)),
                    ("tid", JsonValue::Num(tid)),
                    ("s", JsonValue::Str("t".to_owned())),
                    (
                        "args",
                        JsonValue::obj(vec![("value", JsonValue::Num(value))]),
                    ),
                ]),
            });
        }
    }
    JsonValue::obj(vec![
        ("traceEvents", JsonValue::Arr(events)),
        (
            "displayTimeUnit",
            JsonValue::Str("ns".to_owned()), // cycles rendered at the finest unit
        ),
    ])
}

/// Renders `log` as a Chrome trace-event JSON string (newline
/// terminated), ready to write to the `--trace <path>` file.
#[must_use]
pub fn render_chrome(log: &TraceLog) -> String {
    let mut text = to_chrome_json(log).render();
    text.push('\n');
    text
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tracer;

    fn sample() -> TraceLog {
        let mut log = TraceLog::new();
        let mut t = Tracer::new("ctrl", 8);
        t.begin("run", 0);
        t.mark_n("sched.issue", 0, 3);
        t.instant_value("engine.skip", 3, 40.0);
        t.end(43);
        log.push(t.take());
        log
    }

    #[test]
    fn round_trips_through_own_parser() {
        let text = render_chrome(&sample());
        let v = JsonValue::parse(&text).expect("exporter output parses");
        let Some(JsonValue::Arr(events)) = v.get("traceEvents") else {
            panic!("missing traceEvents array");
        };
        // 1 metadata + 1 mark + 1 instant + 1 span.
        assert_eq!(events.len(), 4);
        assert_eq!(
            events[0].get("ph"),
            Some(&JsonValue::Str("M".to_owned())),
            "metadata first"
        );
    }

    #[test]
    fn rendering_is_byte_stable() {
        assert_eq!(render_chrome(&sample()), render_chrome(&sample()));
        let text = render_chrome(&sample());
        assert!(text.starts_with("{\"traceEvents\":[{\"name\":\"thread_name\""));
        assert!(text.ends_with("\n"));
    }

    #[test]
    fn timestamps_are_simulated_cycles() {
        let text = render_chrome(&sample());
        let v = JsonValue::parse(&text).expect("parses");
        let Some(JsonValue::Arr(events)) = v.get("traceEvents") else {
            panic!("missing traceEvents");
        };
        let span = events
            .iter()
            .find(|e| e.get("name") == Some(&JsonValue::Str("run".to_owned())))
            .expect("span event present");
        assert_eq!(span.get("ts").and_then(JsonValue::as_f64), Some(0.0));
        assert_eq!(span.get("dur").and_then(JsonValue::as_f64), Some(43.0));
    }
}
