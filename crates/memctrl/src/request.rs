//! Memory requests and the controller's view of them.

use ia_dram::{AccessKind, Cycle, Location, PhysAddr};

/// A request as submitted to the controller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRequest {
    /// Unique request id (assigned by the controller on enqueue if zero).
    pub id: u64,
    /// Target physical address.
    pub addr: PhysAddr,
    /// Read or write.
    pub kind: AccessKind,
    /// Originating hardware thread.
    pub thread: usize,
}

impl MemRequest {
    /// Creates a read request.
    #[must_use]
    pub fn read(addr: u64, thread: usize) -> Self {
        MemRequest {
            id: 0,
            addr: PhysAddr::new(addr),
            kind: AccessKind::Read,
            thread,
        }
    }

    /// Creates a write request.
    #[must_use]
    pub fn write(addr: u64, thread: usize) -> Self {
        MemRequest {
            id: 0,
            addr: PhysAddr::new(addr),
            kind: AccessKind::Write,
            thread,
        }
    }
}

/// A queued request with its decoded coordinates and queue metadata.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pending {
    /// The original request.
    pub request: MemRequest,
    /// Decoded device coordinates.
    pub loc: Location,
    /// Cycle the request entered the queue.
    pub arrival: Cycle,
    /// Marked by PAR-BS style batching.
    pub batched: bool,
    /// Whether the controller has issued any command for this request yet
    /// (used to classify the row-buffer outcome exactly once).
    pub started: bool,
}

/// A completed request with its timing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Completed {
    /// The original request.
    pub request: MemRequest,
    /// Cycle the request entered the queue.
    pub arrival: Cycle,
    /// Cycle the data burst finished.
    pub finished: Cycle,
}

impl Completed {
    /// Queueing + service latency in cycles.
    #[must_use]
    pub fn latency(&self) -> u64 {
        self.finished - self.arrival
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let r = MemRequest::read(0x40, 2);
        assert_eq!(r.kind, AccessKind::Read);
        assert_eq!(r.thread, 2);
        let w = MemRequest::write(0x80, 0);
        assert_eq!(w.kind, AccessKind::Write);
    }

    #[test]
    fn latency_is_arrival_to_finish() {
        let c = Completed {
            request: MemRequest::read(0, 0),
            arrival: Cycle::new(10),
            finished: Cycle::new(75),
        };
        assert_eq!(c.latency(), 65);
    }
}
