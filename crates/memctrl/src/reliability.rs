//! The reliability pipeline: the controller's closed
//! detect → correct → degrade loop.
//!
//! When attached ([`MemoryController::with_reliability`]), the pipeline
//! drains the DRAM module's fault-injection events every tick, forwards
//! them to an `ia-faults` [`Inject`] hook, and runs every read's
//! codeword through `ia_reliability::ecc`:
//!
//! * **detect** — SECDED decode on each read; the pipeline knows the
//!   canonical stored word, so miscorrections (3+ flips aliasing to a
//!   valid-looking codeword) are classified as silent corruption, not
//!   success.
//! * **correct** — single-bit errors are corrected; detected-
//!   uncorrectable reads are retried (transient bus errors vanish on the
//!   second attempt).
//! * **degrade intelligently** — on the [`Mitigation::Full`] tier a
//!   corrected error triggers a scrub (write-back) and escalates the
//!   row's refresh rate through RAIDR-style [`RetentionBin`]s; a
//!   persistent uncorrectable triggers a remap to the spare-row pool;
//!   aggressor activity beyond the quarantine threshold retires the
//!   victim row preemptively. Spare-pool exhaustion is counted, not
//!   hidden — that is the graceful-degradation boundary.
//!
//! Every decision lands in [`ReliabilityStats`], exported through
//! `ia-telemetry` under the controller's `reliability` scope.
//!
//! [`MemoryController::with_reliability`]: crate::MemoryController::with_reliability

use std::collections::HashMap;

use ia_dram::{Cycle, DramModule, Geometry, InjectEvent};
use ia_faults::{FaultPlan, FaultStats, Inject, RowSite};
use ia_reliability::{decode, encode, inject_error, DecodeOutcome, EccWord, RetentionBin};
use ia_telemetry::{MetricSource, Scope};

type RowKey = (usize, usize, usize, u64);
type BankKey = (usize, usize, usize);

/// How much intelligence the controller applies to faults.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mitigation {
    /// No protection: flipped bits reach the requester unnoticed.
    None,
    /// SECDED decode + retry only: single-bit errors are corrected on
    /// the fly and transients retried, but the array is never repaired —
    /// soft flips accumulate until words carry two and become
    /// uncorrectable.
    EccOnly,
    /// The full closed loop: ECC + retry, plus scrub-on-correct,
    /// RAIDR-bin refresh escalation, spare-row remap on uncorrectable,
    /// and victim-row quarantine on RowHammer exposure.
    Full,
}

impl Mitigation {
    /// Short display label for experiment tables.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Mitigation::None => "none",
            Mitigation::EccOnly => "ecc-only",
            Mitigation::Full => "ecc+remap+quarantine",
        }
    }
}

/// Pipeline configuration.
#[derive(Debug, Clone, Copy)]
pub struct ReliabilityConfig {
    /// Mitigation tier.
    pub mitigation: Mitigation,
    /// Spare rows provisioned at the top of every bank (the remap pool).
    pub spare_rows_per_bank: u64,
    /// Neighbor-activation count at which a victim row is quarantined
    /// (remapped preemptively); `0` disables quarantine.
    pub quarantine_threshold: u64,
}

impl ReliabilityConfig {
    /// Full mitigation with a given quarantine threshold and 8 spares.
    #[must_use]
    pub fn full(quarantine_threshold: u64) -> Self {
        ReliabilityConfig {
            mitigation: Mitigation::Full,
            spare_rows_per_bank: 8,
            quarantine_threshold,
        }
    }

    /// The given tier with quarantine off and 8 spares.
    #[must_use]
    pub fn tier(mitigation: Mitigation) -> Self {
        ReliabilityConfig {
            mitigation,
            spare_rows_per_bank: 8,
            quarantine_threshold: 0,
        }
    }
}

/// Counters for the detect → correct → degrade loop.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReliabilityStats {
    /// Reads that went through the pipeline.
    pub reads_checked: u64,
    /// Reads whose delivered data needed (and received) correction.
    pub corrected: u64,
    /// Reads retried after a detected-uncorrectable first attempt.
    pub retries: u64,
    /// Retries that recovered (the error was transient).
    pub retry_recovered: u64,
    /// Reads that delivered wrong or unrecoverable data: detected-
    /// uncorrectable after retry, silent corruption (no ECC), or
    /// miscorrection.
    pub uncorrected: u64,
    /// The silent subset of `uncorrected` under ECC: reads where the
    /// decoder claimed success but delivered wrong data (flips aliased
    /// to a valid codeword, or 3+ flips steered correction to the wrong
    /// neighbor). The fuzz harness's no-silent-corruption oracle pins
    /// this to zero under the full mitigation ladder.
    pub miscorrections: u64,
    /// Scrub write-backs issued by the pipeline after a correction.
    pub scrubs: u64,
    /// Rows remapped to the spare pool after persistent uncorrectables.
    pub remaps: u64,
    /// Remap attempts dropped because the bank's spare pool was empty.
    pub spare_exhausted: u64,
    /// Victim rows retired preemptively on RowHammer exposure.
    pub quarantines: u64,
    /// Refresh-rate escalations (row moved to a faster RAIDR bin).
    pub escalations: u64,
    /// Targeted row refreshes issued for escalated rows.
    pub escalated_refreshes: u64,
}

impl ReliabilityStats {
    /// Fraction of checked reads that delivered wrong data.
    #[must_use]
    pub fn uncorrected_rate(&self) -> f64 {
        if self.reads_checked == 0 {
            0.0
        } else {
            self.uncorrected as f64 / self.reads_checked as f64
        }
    }
}

/// The reliability outcome of a run: pipeline counters plus the fault
/// model's own injection counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReliabilityReport {
    /// Mitigation tier that produced these numbers.
    pub mitigation: Mitigation,
    /// Pipeline decision counters.
    pub stats: ReliabilityStats,
    /// Injector-side fault counters.
    pub faults: FaultStats,
}

/// The controller-side reliability pipeline (see module docs).
/// `Clone` is a deep copy — including the boxed fault hook's full state —
/// so a warm controller carrying a pipeline can be forked mid-campaign.
#[derive(Debug, Clone)]
pub struct ReliabilityPipeline {
    config: ReliabilityConfig,
    injector: Box<dyn Inject>,
    rows_per_bank: u64,
    /// First spare row index: rows in `spare_floor..rows_per_bank`.
    spare_floor: u64,
    scratch: Vec<InjectEvent>,
    /// Retired rows and the spare that replaced them.
    remap: HashMap<RowKey, u64>,
    /// Spares consumed per bank.
    spare_used: HashMap<BankKey, u64>,
    /// Escalated rows and their current (faster-than-nominal) bin.
    bins: HashMap<RowKey, RetentionBin>,
    /// Neighbor-activation exposure per potential victim row
    /// (CounterTRR-style, conservatively cumulative).
    exposure: HashMap<RowKey, u64>,
    /// Rank-refresh events seen, per (channel, rank) — the escalated
    /// service cadence counter.
    refresh_events: HashMap<(usize, usize), u64>,
    stats: ReliabilityStats,
}

impl ReliabilityPipeline {
    /// Builds the pipeline from a fault plan, deriving the faultable
    /// geometry (and the immune spare pool) from the DRAM geometry so
    /// the injector and the remap logic agree on where spares live.
    #[must_use]
    pub fn new(config: ReliabilityConfig, plan: FaultPlan, geometry: &Geometry) -> Self {
        let rows_per_bank = geometry.rows_per_bank;
        let spare_floor = rows_per_bank.saturating_sub(config.spare_rows_per_bank);
        let words_per_row = (geometry.row_bytes / geometry.column_bytes.max(1)).max(1);
        let injector = plan
            .geometry(rows_per_bank, words_per_row)
            .spare_floor(spare_floor)
            .build();
        ReliabilityPipeline::with_hook(config, Box::new(injector), rows_per_bank)
    }

    /// Builds the pipeline around an arbitrary [`Inject`] hook. The hook
    /// must treat rows in the top `spare_rows_per_bank` of each bank as
    /// fault-immune for remapping to help.
    #[must_use]
    pub fn with_hook(
        config: ReliabilityConfig,
        injector: Box<dyn Inject>,
        rows_per_bank: u64,
    ) -> Self {
        let spare_floor = rows_per_bank.saturating_sub(config.spare_rows_per_bank);
        ReliabilityPipeline {
            config,
            injector,
            rows_per_bank,
            spare_floor,
            scratch: Vec::new(),
            remap: HashMap::new(),
            spare_used: HashMap::new(),
            bins: HashMap::new(),
            exposure: HashMap::new(),
            refresh_events: HashMap::new(),
            stats: ReliabilityStats::default(),
        }
    }

    /// Pipeline decision counters.
    #[must_use]
    pub fn stats(&self) -> &ReliabilityStats {
        &self.stats
    }

    /// Injector-side fault counters.
    #[must_use]
    pub fn fault_stats(&self) -> FaultStats {
        self.injector.stats()
    }

    /// The mitigation tier in effect.
    #[must_use]
    pub fn mitigation(&self) -> Mitigation {
        self.config.mitigation
    }

    /// Combined report for run results.
    #[must_use]
    pub fn report(&self) -> ReliabilityReport {
        ReliabilityReport {
            mitigation: self.config.mitigation,
            stats: self.stats,
            faults: self.injector.stats(),
        }
    }

    /// Drains and processes all pending injection events from the DRAM
    /// module. Called by the controller at the end of every tick.
    pub(crate) fn process(&mut self, dram: &mut DramModule) {
        debug_assert!(dram.injection_enabled());
        let mut events = std::mem::take(&mut self.scratch);
        events.clear();
        dram.drain_inject_events(&mut events);
        for event in &events {
            match *event {
                InjectEvent::Activate {
                    at,
                    channel,
                    rank,
                    bank,
                    row,
                } => self.handle_activate(at, channel, rank, bank, row),
                InjectEvent::Read {
                    at,
                    channel,
                    rank,
                    bank,
                    row,
                    column,
                } => self.handle_read(at, channel, rank, bank, row, column),
                InjectEvent::Write {
                    at,
                    channel,
                    rank,
                    bank,
                    row,
                    column,
                } => {
                    let site = self.resolve(channel, rank, bank, row);
                    self.injector.on_write(&site, column, at.as_u64());
                }
                InjectEvent::Refresh { at, channel, rank } => {
                    self.handle_refresh(at, channel, rank);
                }
            }
        }
        self.scratch = events;
    }

    /// Applies the remap table: reads/writes of a retired row are routed
    /// to its spare.
    fn resolve(&self, channel: usize, rank: usize, bank: usize, row: u64) -> RowSite {
        let row = self
            .remap
            .get(&(channel, rank, bank, row))
            .copied()
            .unwrap_or(row);
        RowSite {
            channel,
            rank,
            bank,
            row,
        }
    }

    /// Consumes one spare from the bank's pool, if any remain.
    fn take_spare(&mut self, bank: BankKey) -> Option<u64> {
        let used = self.spare_used.entry(bank).or_insert(0);
        let spare = self.spare_floor + *used;
        if spare >= self.rows_per_bank {
            self.stats.spare_exhausted += 1;
            return None;
        }
        *used += 1;
        Some(spare)
    }

    fn handle_activate(&mut self, at: Cycle, channel: usize, rank: usize, bank: usize, row: u64) {
        let site = self.resolve(channel, rank, bank, row);
        self.injector.on_activate(&site, at.as_u64());
        if self.config.mitigation != Mitigation::Full || self.config.quarantine_threshold == 0 {
            return;
        }
        // Victim-row care: count exposure on the aggressor's physical
        // neighbors; past the threshold, refresh the victim one last
        // time and retire it to a spare before disturbance can flip it.
        for neighbor in [row.checked_sub(1), row.checked_add(1)] {
            let Some(victim) = neighbor else { continue };
            if victim >= self.spare_floor {
                continue;
            }
            let key = (channel, rank, bank, victim);
            if self.remap.contains_key(&key) {
                continue;
            }
            let count = self.exposure.entry(key).or_insert(0);
            *count += 1;
            if *count < self.config.quarantine_threshold {
                continue;
            }
            self.exposure.remove(&key);
            let victim_site = RowSite {
                channel,
                rank,
                bank,
                row: victim,
            };
            self.injector.on_row_refresh(&victim_site, at.as_u64());
            if let Some(spare) = self.take_spare((channel, rank, bank)) {
                self.remap.insert(key, spare);
                self.stats.quarantines += 1;
            }
        }
    }

    fn handle_read(
        &mut self,
        at: Cycle,
        channel: usize,
        rank: usize,
        bank: usize,
        row: u64,
        column: u64,
    ) {
        let site = self.resolve(channel, rank, bank, row);
        let mask = self.injector.on_read(&site, column, at.as_u64());
        self.stats.reads_checked += 1;
        if self.config.mitigation == Mitigation::None {
            // No detection: any flipped bit is silent data corruption.
            if !mask.is_clean() {
                self.stats.uncorrected += 1;
            }
            return;
        }
        if mask.is_clean() {
            return;
        }
        let truth = canonical_word(&site, column);
        let stored = corrupt(encode(truth), mask.bits);
        match decode(stored) {
            DecodeOutcome::Clean(data) => {
                // Flips aliased to a valid codeword: undetectable, and
                // necessarily wrong (any flip changes the codeword).
                debug_assert_ne!(data, truth);
                self.stats.uncorrected += 1;
                self.stats.miscorrections += 1;
            }
            DecodeOutcome::Corrected(data) if data == truth => {
                self.stats.corrected += 1;
                self.repair(&site, column, at);
            }
            DecodeOutcome::Corrected(_) => {
                // Miscorrection: 3+ flips steered the decoder to the
                // wrong neighbor. Delivered data is wrong.
                self.stats.uncorrected += 1;
                self.stats.miscorrections += 1;
            }
            DecodeOutcome::DetectedUncorrectable => {
                // Retry: a second read does not see transient errors.
                self.stats.retries += 1;
                let retried = corrupt(encode(truth), mask.persistent());
                match decode(retried) {
                    DecodeOutcome::Clean(_) => {
                        self.stats.retry_recovered += 1;
                    }
                    DecodeOutcome::Corrected(data) if data == truth => {
                        self.stats.retry_recovered += 1;
                        self.stats.corrected += 1;
                        self.repair(&site, column, at);
                    }
                    DecodeOutcome::Corrected(_) => {
                        // A retry miscorrection is still silent wrong data.
                        self.stats.uncorrected += 1;
                        self.stats.miscorrections += 1;
                        self.retire(channel, rank, bank, row);
                    }
                    DecodeOutcome::DetectedUncorrectable => {
                        self.stats.uncorrected += 1;
                        self.retire(channel, rank, bank, row);
                    }
                }
            }
        }
    }

    /// Post-correction repair (Full tier): scrub the corrected word back
    /// to the array and escalate the row's refresh bin so a retention-
    /// weak row stops overrunning its limit.
    fn repair(&mut self, site: &RowSite, column: u64, at: Cycle) {
        if self.config.mitigation != Mitigation::Full {
            return;
        }
        self.injector.on_write(site, column, at.as_u64());
        self.stats.scrubs += 1;
        let key = (site.channel, site.rank, site.bank, site.row);
        let next = match self.bins.get(&key) {
            None => Some(RetentionBin::Ms128),
            Some(RetentionBin::Ms128) => Some(RetentionBin::Ms64),
            Some(_) => None,
        };
        if let Some(bin) = next {
            self.bins.insert(key, bin);
            self.stats.escalations += 1;
        }
    }

    /// Persistent-uncorrectable response (Full tier): retire the row to
    /// a spare. Data for the lost word is restored out-of-band (the
    /// uncorrected counter has already recorded the loss).
    fn retire(&mut self, channel: usize, rank: usize, bank: usize, row: u64) {
        if self.config.mitigation != Mitigation::Full {
            return;
        }
        let key = (channel, rank, bank, row);
        if self.remap.contains_key(&key) {
            return;
        }
        if let Some(spare) = self.take_spare((channel, rank, bank)) {
            self.remap.insert(key, spare);
            self.stats.remaps += 1;
        }
    }

    /// Rank refresh: forward to the injector, then service escalated
    /// rows at their bin's accelerated cadence (Ms64 rows every slot,
    /// Ms128 rows every other slot).
    fn handle_refresh(&mut self, at: Cycle, channel: usize, rank: usize) {
        self.injector.on_refresh(channel, rank, at.as_u64());
        if self.config.mitigation != Mitigation::Full || self.bins.is_empty() {
            return;
        }
        let count = {
            let c = self.refresh_events.entry((channel, rank)).or_insert(0);
            *c += 1;
            *c
        };
        // Sorted for a deterministic service order regardless of map
        // iteration order.
        let mut due: Vec<RowKey> = self
            .bins
            .iter()
            .filter(|(key, bin)| {
                key.0 == channel
                    && key.1 == rank
                    && match bin {
                        RetentionBin::Ms64 => true,
                        RetentionBin::Ms128 => count % 2 == 0,
                        RetentionBin::Ms256 => count % 4 == 0,
                    }
            })
            .map(|(key, _)| *key)
            .collect();
        due.sort_unstable();
        for key in due {
            let site = RowSite {
                channel: key.0,
                rank: key.1,
                bank: key.2,
                row: key.3,
            };
            self.injector.on_row_refresh(&site, at.as_u64());
            self.stats.escalated_refreshes += 1;
        }
    }
}

impl MetricSource for ReliabilityPipeline {
    fn export_into(&self, scope: &mut Scope<'_>) {
        let faults = self.injector.stats();
        scope.set_counter("faults_injected", faults.injected());
        scope.set_counter("faults_rowhammer", faults.rowhammer_flips);
        scope.set_counter("faults_retention", faults.retention_flips);
        scope.set_counter("faults_transient", faults.transient_flips);
        scope.set_counter("faults_stuck", faults.stuck_cells);
        scope.set_counter("faults_scripted", faults.scripted_applied);
        scope.set_counter("reads_checked", self.stats.reads_checked);
        scope.set_counter("corrected", self.stats.corrected);
        scope.set_counter("retries", self.stats.retries);
        scope.set_counter("retry_recovered", self.stats.retry_recovered);
        scope.set_counter("uncorrected", self.stats.uncorrected);
        scope.set_counter("miscorrections", self.stats.miscorrections);
        scope.set_counter("scrubs", self.stats.scrubs);
        scope.set_counter("remaps", self.stats.remaps);
        scope.set_counter("spare_exhausted", self.stats.spare_exhausted);
        scope.set_counter("quarantines", self.stats.quarantines);
        scope.set_counter("escalations", self.stats.escalations);
        scope.set_counter("escalated_refreshes", self.stats.escalated_refreshes);
        scope.set_gauge("uncorrected_rate", self.stats.uncorrected_rate());
    }
}

/// The canonical content of one stored word: a fixed hash of its
/// physical coordinates. Knowing ground truth is what lets the pipeline
/// classify miscorrections instead of trusting the decoder blindly.
fn canonical_word(site: &RowSite, column: u64) -> u64 {
    let mut z = (site.channel as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add((site.rank as u64) << 48)
        .wrapping_add((site.bank as u64) << 32)
        .wrapping_add(site.row)
        .wrapping_add(column.wrapping_mul(0xD129_0B26_77A8_0F61));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Applies a flip mask (bit indices 0..72) to a codeword.
fn corrupt(word: EccWord, mask: u128) -> EccWord {
    let mut out = word;
    let mut m = mask;
    while m != 0 {
        let bit = m.trailing_zeros();
        // lint: allow(P001, FlipMask construction masks to the 72-bit codeword)
        out = inject_error(out, bit).expect("flip masks only carry bits < 72");
        m &= m - 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ia_faults::FlipMask;

    fn site0(row: u64) -> RowSite {
        RowSite {
            channel: 0,
            rank: 0,
            bank: 0,
            row,
        }
    }

    /// A scripted hook that returns queued masks for reads in order.
    #[derive(Debug, Clone, Default)]
    struct QueuedMasks {
        masks: std::collections::VecDeque<FlipMask>,
        writes: Vec<(u64, u64)>,
        row_refreshes: Vec<u64>,
    }

    impl Inject for QueuedMasks {
        fn on_activate(&mut self, _site: &RowSite, _now: u64) {}
        fn on_read(&mut self, _site: &RowSite, _word: u64, _now: u64) -> FlipMask {
            self.masks.pop_front().unwrap_or(FlipMask::CLEAN)
        }
        fn on_write(&mut self, site: &RowSite, word: u64, _now: u64) {
            self.writes.push((site.row, word));
        }
        fn on_refresh(&mut self, _channel: usize, _rank: usize, _now: u64) {}
        fn on_row_refresh(&mut self, site: &RowSite, _now: u64) {
            self.row_refreshes.push(site.row);
        }
        fn clone_box(&self) -> Box<dyn Inject> {
            Box::new(self.clone())
        }
    }

    fn pipeline_with(mitigation: Mitigation, masks: Vec<FlipMask>) -> ReliabilityPipeline {
        let hook = QueuedMasks {
            masks: masks.into(),
            ..QueuedMasks::default()
        };
        let config = ReliabilityConfig {
            mitigation,
            spare_rows_per_bank: 2,
            quarantine_threshold: 0,
        };
        ReliabilityPipeline::with_hook(config, Box::new(hook), 1 << 10)
    }

    fn single_flip() -> FlipMask {
        FlipMask {
            bits: 1 << 7,
            transient: 0,
        }
    }

    fn double_flip() -> FlipMask {
        FlipMask {
            bits: (1 << 7) | (1 << 40),
            transient: 0,
        }
    }

    fn transient_flip() -> FlipMask {
        FlipMask {
            bits: (1 << 7) | (1 << 40),
            transient: 1 << 40,
        }
    }

    #[test]
    fn none_tier_counts_silent_corruption() {
        let mut p = pipeline_with(Mitigation::None, vec![single_flip()]);
        p.handle_read(Cycle::new(10), 0, 0, 0, 5, 3);
        assert_eq!(p.stats().uncorrected, 1);
        assert_eq!(p.stats().corrected, 0);
    }

    #[test]
    fn ecc_corrects_single_flip_without_repair() {
        let mut p = pipeline_with(Mitigation::EccOnly, vec![single_flip()]);
        p.handle_read(Cycle::new(10), 0, 0, 0, 5, 3);
        assert_eq!(p.stats().corrected, 1);
        assert_eq!(p.stats().uncorrected, 0);
        assert_eq!(p.stats().scrubs, 0, "ecc-only never repairs the array");
    }

    #[test]
    fn full_tier_scrubs_and_escalates_on_correction() {
        let mut p = pipeline_with(Mitigation::Full, vec![single_flip(), single_flip()]);
        p.handle_read(Cycle::new(10), 0, 0, 0, 5, 3);
        assert_eq!(p.stats().corrected, 1);
        assert_eq!(p.stats().scrubs, 1);
        assert_eq!(p.stats().escalations, 1, "row moved to Ms128");
        p.handle_read(Cycle::new(20), 0, 0, 0, 5, 3);
        assert_eq!(p.stats().escalations, 2, "second correction: Ms64");
        p.handle_read(Cycle::new(30), 0, 0, 0, 5, 3);
        assert_eq!(p.stats().escalations, 2, "already at the fastest bin");
    }

    #[test]
    fn double_flip_retries_then_remaps() {
        let mut p = pipeline_with(Mitigation::Full, vec![double_flip()]);
        p.handle_read(Cycle::new(10), 0, 0, 0, 5, 3);
        assert_eq!(p.stats().retries, 1);
        assert_eq!(p.stats().uncorrected, 1);
        assert_eq!(p.stats().remaps, 1);
        // Row 5 now resolves to the first spare (rows_per_bank - 2).
        assert_eq!(p.resolve(0, 0, 0, 5).row, (1 << 10) - 2);
    }

    #[test]
    fn transient_double_flip_recovers_on_retry() {
        let mut p = pipeline_with(Mitigation::Full, vec![transient_flip()]);
        p.handle_read(Cycle::new(10), 0, 0, 0, 5, 3);
        assert_eq!(p.stats().retries, 1);
        assert_eq!(p.stats().retry_recovered, 1);
        assert_eq!(p.stats().corrected, 1, "persistent single bit corrected");
        assert_eq!(p.stats().uncorrected, 0);
        assert_eq!(p.stats().remaps, 0);
    }

    #[test]
    fn spare_pool_exhaustion_is_counted_not_hidden() {
        let mut p = pipeline_with(
            Mitigation::Full,
            vec![double_flip(), double_flip(), double_flip()],
        );
        p.handle_read(Cycle::new(10), 0, 0, 0, 5, 0);
        p.handle_read(Cycle::new(20), 0, 0, 0, 6, 0);
        p.handle_read(Cycle::new(30), 0, 0, 0, 7, 0);
        assert_eq!(p.stats().remaps, 2, "pool had 2 spares");
        assert_eq!(p.stats().spare_exhausted, 1);
        assert_eq!(p.stats().uncorrected, 3);
    }

    #[test]
    fn quarantine_trips_at_threshold_and_row_refreshes_victim() {
        let hook = QueuedMasks::default();
        let config = ReliabilityConfig {
            mitigation: Mitigation::Full,
            spare_rows_per_bank: 4,
            quarantine_threshold: 10,
        };
        let mut p = ReliabilityPipeline::with_hook(config, Box::new(hook), 1 << 10);
        for n in 0..10u64 {
            p.handle_activate(Cycle::new(n), 0, 0, 0, 50);
        }
        assert_eq!(p.stats().quarantines, 2, "both neighbors of row 50");
        assert_ne!(p.resolve(0, 0, 0, 49).row, 49);
        assert_ne!(p.resolve(0, 0, 0, 51).row, 51);
        assert_eq!(p.resolve(0, 0, 0, 50).row, 50, "aggressor not remapped");
    }

    #[test]
    fn canonical_word_is_stable_and_site_sensitive() {
        let a = canonical_word(&site0(1), 0);
        assert_eq!(a, canonical_word(&site0(1), 0));
        assert_ne!(a, canonical_word(&site0(2), 0));
        assert_ne!(a, canonical_word(&site0(1), 1));
    }

    #[test]
    fn corrupt_round_trips_through_decode() {
        let w = encode(0xDEAD_BEEF_0123_4567);
        assert_eq!(
            decode(corrupt(w, 1 << 10)),
            DecodeOutcome::Corrected(0xDEAD_BEEF_0123_4567)
        );
        assert_eq!(
            decode(corrupt(w, (1 << 10) | (1 << 33))),
            DecodeOutcome::DetectedUncorrectable
        );
    }
}
