//! # ia-memctrl — the memory controller, fixed and learning
//!
//! The paper's data-driven indictment is aimed squarely at this component:
//! "a modern memory controller keeps executing exactly the same fixed
//! policy … during the entire lifetime of a system". This crate implements
//! the policy lineage the paper cites so they can be compared head-to-head
//! on the same cycle-accurate substrate:
//!
//! * [`Fcfs`], [`FrFcfs`] — the classical fixed heuristics.
//! * [`ParBs`], [`Atlas`], [`Tcm`], [`Bliss`] — the fairness generation.
//! * [`RlScheduler`] — the self-optimizing (Q-learning) controller.
//! * [`RefreshMode`] — standard auto-refresh vs. RAIDR retention-aware
//!   refresh.
//! * [`HybridMemory`] — DRAM+PCM with LRU vs. row-buffer-locality-aware
//!   placement.
//!
//! ## Example
//!
//! ```
//! use ia_dram::DramConfig;
//! use ia_memctrl::{run_closed_loop, FrFcfs, MemRequest};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let trace: Vec<MemRequest> = (0..64).map(|i| MemRequest::read(i * 64, 0)).collect();
//! let report = run_closed_loop(
//!     DramConfig::ddr3_1600(),
//!     Box::new(FrFcfs::new()),
//!     &[trace],
//!     8,
//!     1_000_000,
//! )?;
//! assert_eq!(report.stats.completed, 64);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod controller;
mod error;
mod hybrid;
mod metrics;
pub mod pool;
mod power;
mod reliability;
pub mod replay;
mod request;
pub mod scheduler;

pub use controller::{
    run_closed_loop, run_closed_loop_per_cycle, run_closed_loop_with, CtrlStats, MemoryController,
    RefreshMode, RunReport, SchedEvent, ThreadReport,
};
pub use error::CtrlError;
pub use hybrid::{HybridMemory, HybridTiming, PlacementPolicy};
pub use metrics::{harmonic_speedup, max_slowdown, slowdowns, weighted_speedup};
pub use pool::{IssueView, ReqId, RequestQueue, ViewMode};
pub use power::{epoch_outcome, standard_points, EpochOutcome, FrequencyPoint, MemScaleGovernor};
pub use reliability::{
    Mitigation, ReliabilityConfig, ReliabilityPipeline, ReliabilityReport, ReliabilityStats,
};
pub use replay::{
    clear_replay_context, record_workload, replay_context, set_replay_context,
    workload_from_records, ReplayContext,
};
pub use request::{Completed, MemRequest, Pending};
pub use scheduler::{
    Atlas, Bliss, Fcfs, FrFcfs, ParBs, RlScheduler, RlSchedulerConfig, Scheduler, Tcm,
};
