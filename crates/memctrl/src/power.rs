//! Memory DVFS (MemScale, Deng+ ASPLOS 2011; David+ ICAC 2011): scale the
//! memory channel's frequency/voltage to track demand — bandwidth
//! headroom is wasted power. The governor is a small data-driven
//! controller: measure utilization each epoch, pick the lowest frequency
//! that keeps the predicted performance loss within a budget.

use crate::error::CtrlError;

/// One memory frequency/voltage operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FrequencyPoint {
    /// Frequency relative to nominal (1.0 = full speed).
    pub speed: f64,
    /// Memory-system power relative to nominal at that point (voltage
    /// scales with frequency, so power drops super-linearly).
    pub power: f64,
}

/// The operating points MemScale-class proposals use (≈ DDR3-1600 down
/// to DDR3-800 with voltage scaling).
#[must_use]
pub fn standard_points() -> [FrequencyPoint; 4] {
    [
        FrequencyPoint {
            speed: 1.0,
            power: 1.0,
        },
        FrequencyPoint {
            speed: 0.75,
            power: 0.62,
        },
        FrequencyPoint {
            speed: 0.625,
            power: 0.47,
        },
        FrequencyPoint {
            speed: 0.5,
            power: 0.35,
        },
    ]
}

/// Analytic outcome of running an epoch with bandwidth `utilization`
/// (fraction of full-speed bandwidth demanded) at `point`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EpochOutcome {
    /// Execution-time multiplier vs full speed (≥ 1).
    pub slowdown: f64,
    /// Memory energy multiplier vs full speed (< 1 when scaling pays).
    pub energy: f64,
}

/// Computes the slowdown/energy of serving demand `utilization` at
/// `point`: below the scaled bandwidth the epoch only stretches by the
/// queueing effect of a busier channel; beyond it the channel saturates
/// and time stretches proportionally.
///
/// # Errors
///
/// Returns [`CtrlError::Invalid`] if `utilization` is outside `[0, 1]`
/// or the point has non-positive speed.
pub fn epoch_outcome(utilization: f64, point: FrequencyPoint) -> Result<EpochOutcome, CtrlError> {
    if !(0.0..=1.0).contains(&utilization) {
        return Err(CtrlError::Invalid("utilization must be in [0, 1]"));
    }
    if point.speed <= 0.0 {
        return Err(CtrlError::Invalid(
            "operating point must have positive speed",
        ));
    }
    let effective_load = utilization / point.speed;
    let slowdown = if effective_load <= 1.0 {
        // M/D/1-flavoured queueing stretch as the channel fills up.
        1.0 + 0.25 * effective_load * effective_load
    } else {
        // Saturated: time scales with the bandwidth deficit.
        effective_load * 1.25
    };
    // Energy = power × time.
    Ok(EpochOutcome {
        slowdown,
        energy: point.power * slowdown,
    })
}

/// The MemScale governor: per epoch, choose the lowest-power point whose
/// predicted slowdown stays within `budget` of full speed.
#[derive(Debug, Clone)]
pub struct MemScaleGovernor {
    points: Vec<FrequencyPoint>,
    budget: f64,
    /// Epochs spent at each point.
    pub residency: Vec<u64>,
}

impl MemScaleGovernor {
    /// Creates a governor over `points` with slowdown budget `budget`
    /// (e.g. `0.1` = at most 10% above full-speed epoch time).
    ///
    /// # Errors
    ///
    /// Returns [`CtrlError::Invalid`] if `points` is empty or the budget
    /// is negative.
    pub fn new(points: Vec<FrequencyPoint>, budget: f64) -> Result<Self, CtrlError> {
        if points.is_empty() {
            return Err(CtrlError::Invalid("governor needs operating points"));
        }
        if budget < 0.0 {
            return Err(CtrlError::Invalid("slowdown budget must be non-negative"));
        }
        let n = points.len();
        Ok(MemScaleGovernor {
            points,
            budget,
            residency: vec![0; n],
        })
    }

    /// Picks the operating point for an epoch with measured `utilization`.
    ///
    /// # Errors
    ///
    /// Propagates [`CtrlError`] from the outcome model.
    pub fn select(&mut self, utilization: f64) -> Result<FrequencyPoint, CtrlError> {
        let full = epoch_outcome(utilization, self.points[0])?;
        let mut chosen = 0;
        for (i, &p) in self.points.iter().enumerate() {
            let o = epoch_outcome(utilization, p)?;
            let within = o.slowdown <= full.slowdown * (1.0 + self.budget);
            if within && p.power < self.points[chosen].power {
                chosen = i;
            }
        }
        self.residency[chosen] += 1;
        Ok(self.points[chosen])
    }

    /// Runs a utilization trace, returning `(avg slowdown, avg energy)`
    /// relative to always-full-speed.
    ///
    /// # Errors
    ///
    /// Propagates [`CtrlError`] from the outcome model.
    pub fn run(&mut self, utilizations: &[f64]) -> Result<EpochOutcome, CtrlError> {
        if utilizations.is_empty() {
            return Err(CtrlError::Invalid("trace must be non-empty"));
        }
        let mut slow = 0.0;
        let mut energy = 0.0;
        for &u in utilizations {
            let p = self.select(u)?;
            let o = epoch_outcome(u, p)?;
            let full = epoch_outcome(u, self.points[0])?;
            slow += o.slowdown / full.slowdown;
            energy += o.energy / full.energy;
        }
        let n = utilizations.len() as f64;
        Ok(EpochOutcome {
            slowdown: slow / n,
            energy: energy / n,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_validates_inputs() {
        assert!(epoch_outcome(1.5, standard_points()[0]).is_err());
        assert!(epoch_outcome(
            0.5,
            FrequencyPoint {
                speed: 0.0,
                power: 0.1
            }
        )
        .is_err());
    }

    #[test]
    fn low_utilization_scales_almost_for_free() {
        let slow_point = standard_points()[3];
        let o = epoch_outcome(0.1, slow_point).unwrap();
        assert!(
            o.slowdown < 1.05,
            "10% demand at half speed barely stretches: {}",
            o.slowdown
        );
        assert!(o.energy < 0.5, "but saves most of the power: {}", o.energy);
    }

    #[test]
    fn saturation_punishes_underprovisioning() {
        let slow_point = standard_points()[3];
        let o = epoch_outcome(0.9, slow_point).unwrap();
        assert!(
            o.slowdown > 2.0,
            "90% demand cannot run at half speed: {}",
            o.slowdown
        );
    }

    #[test]
    fn governor_scales_down_when_idle_and_up_when_busy() {
        let mut g = MemScaleGovernor::new(standard_points().to_vec(), 0.10).unwrap();
        let idle = g.select(0.05).unwrap();
        assert!(idle.speed < 1.0, "idle epochs run slow");
        let busy = g.select(0.95).unwrap();
        assert!(busy.speed > 0.9, "busy epochs run at full speed");
        assert_eq!(g.residency.iter().sum::<u64>(), 2);
    }

    #[test]
    fn governor_saves_energy_within_budget_on_a_bursty_trace() {
        let mut g = MemScaleGovernor::new(standard_points().to_vec(), 0.10).unwrap();
        // Mostly-idle trace with busy bursts (the MemScale scenario).
        let trace: Vec<f64> = (0..200)
            .map(|i| if i % 10 == 0 { 0.9 } else { 0.08 })
            .collect();
        let o = g.run(&trace).unwrap();
        assert!(
            o.energy < 0.6,
            "expected >40% energy saving, got {:.2}",
            o.energy
        );
        assert!(
            o.slowdown <= 1.10 + 1e-9,
            "budget respected: {:.3}",
            o.slowdown
        );
    }

    #[test]
    fn governor_validates() {
        assert!(MemScaleGovernor::new(vec![], 0.1).is_err());
        assert!(MemScaleGovernor::new(standard_points().to_vec(), -0.1).is_err());
        let mut g = MemScaleGovernor::new(standard_points().to_vec(), 0.1).unwrap();
        assert!(g.run(&[]).is_err());
    }
}
