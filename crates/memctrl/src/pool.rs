//! Slab-backed request pool with per-bank indexed ready lists.
//!
//! [`RequestQueue`] replaces the controller's flat `Vec<Pending>` — and
//! with it the O(queue-depth) scan every scheduler used to run every
//! cycle. Requests live in a slab (stable [`ReqId`] handles, free-list
//! reuse, no per-request allocation in steady state) and are threaded
//! onto intrusive doubly-linked lists:
//!
//! * one **global list** ordered by `(arrival, id, seq)` — the FCFS
//!   order, whose head is the oldest request, with the slab sequence
//!   number `seq` breaking ties exactly as the issue requires;
//! * per-bank **class lists** (`flat_bank` × {hit-read, hit-write,
//!   other-read, other-write}), each in the same order.
//!
//! "Hit" is classified against the bank's cached `tag` — the open row
//! the bucketing was computed against. Tags are validated **lazily**: a
//! view build compares each occupied bank's tag with the live DRAM open
//! row and rebuckets only the banks that changed (issue, refresh,
//! reliability mutation — any source, no hooks required). Within a
//! bank, every member of a class needs the same next command, and DRAM
//! timing depends only on (channel, rank, bank, command kind), so a
//! class is issuable as a whole and its head is the exact
//! `(arrival, id)` minimum. That is what makes the **frontier** view
//! ([`ViewMode::Frontier`]) — class-list heads only — bit-identical to
//! the legacy full scan for every policy whose sort key is constant
//! within a class (FR-FCFS and all RL actions), at O(banks) instead of
//! O(queue-depth) per decision.

use ia_dram::{Cycle, DramModule};

use crate::request::Pending;

/// Sentinel link ("null pointer") in the intrusive lists.
const NONE: u32 = u32::MAX;
/// Sentinel bank tag for "no row open" (rows are bounded by
/// `rows_per_bank`, so `u64::MAX` is never a real row).
const NO_ROW: u64 = u64::MAX;

const HIT_READ: usize = 0;
const HIT_WRITE: usize = 1;
const OTHER_READ: usize = 2;
const OTHER_WRITE: usize = 3;

/// Stable handle to a queued request (a slab slot index).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ReqId(u32);

impl ReqId {
    /// The raw slab index (diagnostics only — slots are reused).
    #[must_use]
    pub fn index(self) -> u32 {
        self.0
    }
}

/// How much of a view a scheduler needs per decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ViewMode {
    /// No view at all (FCFS reads the global list head directly).
    Skip,
    /// Class-list heads only — exact for policies whose key is constant
    /// within a (bank, class): FR-FCFS, all RL actions.
    Frontier,
    /// Every issuable request — required by thread-keyed policies
    /// (PAR-BS, ATLAS, TCM, BLISS) whose key varies within a class.
    Full,
}

/// Per-cycle scheduling facts, computed from the indexed lists by
/// [`RequestQueue::build_view`] — the successor of the linear-scan
/// [`crate::scheduler::linear_issue_view`] (kept as the differential
/// oracle).
#[derive(Debug, Clone, Default)]
pub struct IssueView {
    /// Issuable candidates under the open-page rule, each with its
    /// row-hit flag. In [`ViewMode::Frontier`] these are class heads; in
    /// [`ViewMode::Full`] the complete issuable set.
    pub ready: Vec<(ReqId, bool)>,
    /// Number of queued requests (issuable or not) whose next command is
    /// a column command — the occupancy signal RL-class policies use.
    pub row_hits: usize,
}

impl IssueView {
    /// Empties the view (keeps capacity).
    pub fn clear(&mut self) {
        self.ready.clear();
        self.row_hits = 0;
    }
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    p: Pending,
    /// Slab sequence number: monotone per insertion, the final ordering
    /// tie-break.
    seq: u64,
    /// Dense bank key (`Location::flat_bank`) the slot is bucketed under.
    bank: u32,
    /// Class-list index (`HIT_READ`… ), meaningless when free.
    class: u8,
    live: bool,
    g_prev: u32,
    g_next: u32,
    b_prev: u32,
    b_next: u32,
}

#[derive(Debug, Clone, Copy)]
struct BankLists {
    head: [u32; 4],
    tail: [u32; 4],
    len: [u32; 4],
    /// Open row the current bucketing assumed (`NO_ROW` = closed).
    tag: u64,
    /// Position in `occupied`, `NONE` when the bank holds no requests.
    pos: u32,
}

impl BankLists {
    const EMPTY: BankLists = BankLists {
        head: [NONE; 4],
        tail: [NONE; 4],
        len: [0; 4],
        tag: NO_ROW,
        pos: NONE,
    };

    fn members(&self) -> u32 {
        self.len.iter().sum()
    }

    fn hits(&self) -> u32 {
        self.len[HIT_READ] + self.len[HIT_WRITE]
    }
}

/// The indexed request queue. See the module docs for the design.
#[derive(Debug, Clone, Default)]
pub struct RequestQueue {
    slots: Vec<Slot>,
    free_head: u32,
    g_head: u32,
    g_tail: u32,
    len: usize,
    /// Queued write requests (O(1) for the RL state vector).
    writes: usize,
    /// Queued requests with the PAR-BS batch mark set.
    batched: usize,
    next_seq: u64,
    banks: Vec<BankLists>,
    /// Dense list of bank keys holding at least one request.
    occupied: Vec<u32>,
    /// Reused rebucket scratch.
    scratch: Vec<u32>,
}

impl RequestQueue {
    /// Creates an empty queue. Bank tables grow on demand from the
    /// requests' decoded coordinates.
    #[must_use]
    pub fn new() -> Self {
        RequestQueue {
            slots: Vec::new(),
            free_head: NONE,
            g_head: NONE,
            g_tail: NONE,
            len: 0,
            writes: 0,
            batched: 0,
            next_seq: 0,
            banks: Vec::new(),
            occupied: Vec::new(),
            scratch: Vec::new(),
        }
    }

    /// Number of queued requests.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of queued write requests.
    #[must_use]
    pub fn writes(&self) -> usize {
        self.writes
    }

    /// True when no queued request carries the PAR-BS batch mark.
    #[must_use]
    pub fn all_unbatched(&self) -> bool {
        self.batched == 0
    }

    /// The oldest request by `(arrival, id, seq)` — the FCFS choice.
    #[must_use]
    pub fn head(&self) -> Option<ReqId> {
        (self.g_head != NONE).then_some(ReqId(self.g_head))
    }

    /// The request behind `id`, if it is still queued.
    #[must_use]
    pub fn get(&self, id: ReqId) -> Option<&Pending> {
        self.slots
            .get(id.0 as usize)
            .filter(|s| s.live)
            .map(|s| &s.p)
    }

    /// The request behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is stale (the request was removed).
    #[must_use]
    pub fn req(&self, id: ReqId) -> &Pending {
        let s = &self.slots[id.0 as usize];
        assert!(s.live, "stale ReqId");
        &s.p
    }

    /// Iterates the queue in global `(arrival, id, seq)` order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            q: self,
            cur: self.g_head,
        }
    }

    fn order_key(&self, slot: u32) -> (Cycle, u64, u64) {
        let s = &self.slots[slot as usize];
        (s.p.arrival, s.p.request.id, s.seq)
    }

    /// Inserts `p`, classifying it against the bank's current tag (or the
    /// live DRAM open row when the bank was empty). Amortized O(1): the
    /// ordered insertions walk backward from the tails, and arrivals/ids
    /// are monotone in normal operation.
    pub fn insert(&mut self, p: Pending, dram: &DramModule) -> ReqId {
        let bank = p.loc.flat_bank(&dram.config().geometry) as u32;
        if bank as usize >= self.banks.len() {
            self.banks.resize(bank as usize + 1, BankLists::EMPTY);
        }
        if self.banks[bank as usize].pos == NONE {
            self.banks[bank as usize].tag = dram.open_row(&p.loc).unwrap_or(NO_ROW);
            self.banks[bank as usize].pos = self.occupied.len() as u32;
            self.occupied.push(bank);
        }
        let tag = self.banks[bank as usize].tag;
        let read = p.request.kind.is_read();
        let hit = tag != NO_ROW && p.loc.row == tag;
        let class = match (hit, read) {
            (true, true) => HIT_READ,
            (true, false) => HIT_WRITE,
            (false, true) => OTHER_READ,
            (false, false) => OTHER_WRITE,
        };

        let slot = if self.free_head != NONE {
            let s = self.free_head;
            self.free_head = self.slots[s as usize].g_next;
            s
        } else {
            self.slots.push(Slot {
                p,
                seq: 0,
                bank: 0,
                class: 0,
                live: false,
                g_prev: NONE,
                g_next: NONE,
                b_prev: NONE,
                b_next: NONE,
            });
            (self.slots.len() - 1) as u32
        };
        {
            let s = &mut self.slots[slot as usize];
            s.p = p;
            s.seq = self.next_seq;
            s.bank = bank;
            s.class = class as u8;
            s.live = true;
        }
        self.next_seq += 1;
        self.len += 1;
        if !read {
            self.writes += 1;
        }
        if p.batched {
            self.batched += 1;
        }
        self.link_global(slot);
        self.link_bank(slot, bank, class);
        ReqId(slot)
    }

    /// Removes and returns the request behind `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is stale.
    pub fn remove(&mut self, id: ReqId) -> Pending {
        let slot = id.0;
        let s = self.slots[slot as usize];
        assert!(s.live, "stale ReqId");
        self.unlink_global(slot);
        self.unlink_bank(slot, s.bank, s.class as usize);
        if self.banks[s.bank as usize].members() == 0 {
            let pos = self.banks[s.bank as usize].pos;
            self.banks[s.bank as usize].pos = NONE;
            self.occupied.swap_remove(pos as usize);
            if (pos as usize) < self.occupied.len() {
                let moved = self.occupied[pos as usize];
                self.banks[moved as usize].pos = pos;
            }
        }
        let st = &mut self.slots[slot as usize];
        st.live = false;
        st.g_next = self.free_head;
        self.free_head = slot;
        self.len -= 1;
        if !s.p.request.kind.is_read() {
            self.writes -= 1;
        }
        if s.p.batched {
            self.batched -= 1;
        }
        s.p
    }

    /// Marks that the controller issued the first command for `id`.
    pub fn set_started(&mut self, id: ReqId) {
        let s = &mut self.slots[id.0 as usize];
        assert!(s.live, "stale ReqId");
        s.p.started = true;
    }

    /// Walks the queue in global order, setting the PAR-BS batch mark on
    /// every request for which `mark` returns true. Only unmarked
    /// requests are offered.
    pub fn mark_batch(&mut self, mut mark: impl FnMut(&Pending) -> bool) {
        let mut cur = self.g_head;
        while cur != NONE {
            let s = &mut self.slots[cur as usize];
            if !s.p.batched && mark(&s.p) {
                s.p.batched = true;
                self.batched += 1;
            }
            cur = s.g_next;
        }
    }

    fn link_global(&mut self, slot: u32) {
        let key = self.order_key(slot);
        // Walk backward from the tail: arrivals and ids are normally
        // monotone, so this is O(1) in steady state.
        let mut after = self.g_tail;
        while after != NONE && self.order_key(after) > key {
            after = self.slots[after as usize].g_prev;
        }
        let next = if after == NONE {
            self.g_head
        } else {
            self.slots[after as usize].g_next
        };
        self.slots[slot as usize].g_prev = after;
        self.slots[slot as usize].g_next = next;
        if after == NONE {
            self.g_head = slot;
        } else {
            self.slots[after as usize].g_next = slot;
        }
        if next == NONE {
            self.g_tail = slot;
        } else {
            self.slots[next as usize].g_prev = slot;
        }
    }

    fn unlink_global(&mut self, slot: u32) {
        let (prev, next) = {
            let s = &self.slots[slot as usize];
            (s.g_prev, s.g_next)
        };
        if prev == NONE {
            self.g_head = next;
        } else {
            self.slots[prev as usize].g_next = next;
        }
        if next == NONE {
            self.g_tail = prev;
        } else {
            self.slots[next as usize].g_prev = prev;
        }
    }

    fn link_bank(&mut self, slot: u32, bank: u32, class: usize) {
        let key = self.order_key(slot);
        let b = &self.banks[bank as usize];
        let mut after = b.tail[class];
        while after != NONE && self.order_key(after) > key {
            after = self.slots[after as usize].b_prev;
        }
        let next = if after == NONE {
            self.banks[bank as usize].head[class]
        } else {
            self.slots[after as usize].b_next
        };
        self.slots[slot as usize].b_prev = after;
        self.slots[slot as usize].b_next = next;
        if after == NONE {
            self.banks[bank as usize].head[class] = slot;
        } else {
            self.slots[after as usize].b_next = slot;
        }
        if next == NONE {
            self.banks[bank as usize].tail[class] = slot;
        } else {
            self.slots[next as usize].b_prev = slot;
        }
        self.banks[bank as usize].len[class] += 1;
    }

    fn unlink_bank(&mut self, slot: u32, bank: u32, class: usize) {
        let (prev, next) = {
            let s = &self.slots[slot as usize];
            (s.b_prev, s.b_next)
        };
        if prev == NONE {
            self.banks[bank as usize].head[class] = next;
        } else {
            self.slots[prev as usize].b_next = next;
        }
        if next == NONE {
            self.banks[bank as usize].tail[class] = prev;
        } else {
            self.slots[next as usize].b_prev = prev;
        }
        self.banks[bank as usize].len[class] -= 1;
    }

    /// Rebuckets every member of `bank` against the new open-row `tag`.
    /// Called only when a view build finds the cached tag stale, so the
    /// cost is O(bank members) per actual bank-state change.
    fn rebucket(&mut self, bank: u32, tag: u64) {
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.clear();
        for class in 0..4 {
            let mut cur = self.banks[bank as usize].head[class];
            while cur != NONE {
                scratch.push(cur);
                cur = self.slots[cur as usize].b_next;
            }
        }
        let b = &mut self.banks[bank as usize];
        b.head = [NONE; 4];
        b.tail = [NONE; 4];
        b.len = [0; 4];
        b.tag = tag;
        scratch.sort_unstable_by_key(|&s| self.order_key(s));
        for &slot in &scratch {
            let p = &self.slots[slot as usize].p;
            let read = p.request.kind.is_read();
            let hit = tag != NO_ROW && p.loc.row == tag;
            let class = match (hit, read) {
                (true, true) => HIT_READ,
                (true, false) => HIT_WRITE,
                (false, true) => OTHER_READ,
                (false, false) => OTHER_WRITE,
            };
            self.slots[slot as usize].class = class as u8;
            // Appending in sorted order keeps each list ordered; the
            // backward walk in link_bank terminates immediately.
            self.link_bank(slot, bank, class);
        }
        self.scratch = scratch;
    }

    /// Builds the per-cycle [`IssueView`] into `out` (a reused scratch).
    ///
    /// Validates stale bank tags, then walks only the occupied banks: per
    /// bank at most three `ready_at` queries (hit-read, hit-write, and
    /// one shared gate for the activate/precharge classes) decide the
    /// issuability of whole classes at once. The open-page rule —
    /// never precharge a bank that still has queued row hits — is the
    /// bank's own hit-list emptiness, O(1).
    pub fn build_view(
        &mut self,
        dram: &DramModule,
        now: Cycle,
        mode: ViewMode,
        out: &mut IssueView,
    ) {
        out.clear();
        if mode == ViewMode::Skip {
            return;
        }
        // One hierarchy walk per occupied bank ([`DramModule::bank_gates`])
        // fetches the open row and every command gate at once; the tag
        // check, hit accounting, and candidate emission all run off that
        // single probe. Banks are independent, so interleaving a bank's
        // validation with its emission is identical to two passes.
        for idx in 0..self.occupied.len() {
            let bank = self.occupied[idx];
            let rep = self.representative(bank);
            let loc = self.slots[rep as usize].p.loc;
            let gates = dram.bank_gates(&loc);
            let cur = gates.open_row.unwrap_or(NO_ROW);
            if cur != self.banks[bank as usize].tag {
                self.rebucket(bank, cur);
            }
            let b = self.banks[bank as usize];
            out.row_hits += b.hits() as usize;
            let open = b.tag != NO_ROW;
            if b.len[HIT_READ] > 0 && gates.read <= now {
                self.emit(out, mode, b.head[HIT_READ], true);
            }
            if b.len[HIT_WRITE] > 0 && gates.write <= now {
                self.emit(out, mode, b.head[HIT_WRITE], true);
            }
            if b.len[OTHER_READ] > 0 || b.len[OTHER_WRITE] > 0 {
                // Open-page rule: a bank with queued row hits is never
                // closed just because its next burst is a few cycles away.
                if open && b.hits() > 0 {
                    continue;
                }
                let gate = if open {
                    gates.precharge
                } else {
                    gates.activate
                };
                if gate <= now {
                    if b.len[OTHER_READ] > 0 {
                        self.emit(out, mode, b.head[OTHER_READ], false);
                    }
                    if b.len[OTHER_WRITE] > 0 {
                        self.emit(out, mode, b.head[OTHER_WRITE], false);
                    }
                }
            }
        }
    }

    /// Earliest cycle at which any queued request's next DRAM command
    /// becomes issuable — the same minimum as folding
    /// [`DramModule::next_ready_for`] over the whole queue, computed in
    /// O(occupied banks). Timing gates depend on the command *kind*, not
    /// its row/column operand, so every member of a `(bank, class)`
    /// bucket shares one gate value and only the class heads need
    /// querying.
    ///
    /// Exact only while the per-bank tags are current, i.e. a
    /// non-[`ViewMode::Skip`] [`RequestQueue::build_view`] ran against
    /// this DRAM state with no intervening insert or DRAM command; the
    /// controller guards the call accordingly.
    #[must_use]
    pub fn next_ready_min(&self, dram: &DramModule) -> Option<Cycle> {
        let mut next: Option<Cycle> = None;
        let mut fold = |at: Cycle| next = Some(next.map_or(at, |n| n.min(at)));
        for &bank in &self.occupied {
            let b = &self.banks[bank as usize];
            let loc = &self.slots[self.representative(bank) as usize].p.loc;
            let gates = dram.bank_gates(loc);
            if b.len[HIT_READ] > 0 {
                fold(gates.read);
            }
            if b.len[HIT_WRITE] > 0 {
                fold(gates.write);
            }
            if b.len[OTHER_READ] > 0 || b.len[OTHER_WRITE] > 0 {
                fold(if b.tag != NO_ROW {
                    gates.precharge
                } else {
                    gates.activate
                });
            }
        }
        next
    }

    fn emit(&self, out: &mut IssueView, mode: ViewMode, head: u32, hit: bool) {
        match mode {
            ViewMode::Skip => {}
            ViewMode::Frontier => out.ready.push((ReqId(head), hit)),
            ViewMode::Full => {
                let mut cur = head;
                while cur != NONE {
                    out.ready.push((ReqId(cur), hit));
                    cur = self.slots[cur as usize].b_next;
                }
            }
        }
    }

    fn representative(&self, bank: u32) -> u32 {
        let b = &self.banks[bank as usize];
        for class in 0..4 {
            if b.head[class] != NONE {
                return b.head[class];
            }
        }
        unreachable!("occupied bank with no members");
    }
}

/// Iterator over the queue in global order (see [`RequestQueue::iter`]).
#[derive(Debug)]
pub struct Iter<'a> {
    q: &'a RequestQueue,
    cur: u32,
}

impl<'a> Iterator for Iter<'a> {
    type Item = (ReqId, &'a Pending);

    fn next(&mut self) -> Option<Self::Item> {
        if self.cur == NONE {
            return None;
        }
        let id = ReqId(self.cur);
        let s = &self.q.slots[self.cur as usize];
        self.cur = s.g_next;
        Some((id, &s.p))
    }
}

impl<'a> IntoIterator for &'a RequestQueue {
    type Item = (ReqId, &'a Pending);
    type IntoIter = Iter<'a>;

    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}
