//! The self-optimizing (reinforcement-learning) memory scheduler after
//! Ipek+ (ISCA 2008): the controller observes queue state, chooses a
//! scheduling action, and is rewarded for data-bus utilization, learning
//! a far-sighted policy online instead of executing a fixed heuristic.

use ia_dram::Cycle;
use ia_learn::{FeatureQuantizer, QAgent, QConfig};
use rand::rngs::SmallRng;
use rand::SeedableRng;

use super::Scheduler;
use crate::pool::{IssueView, ReqId, RequestQueue, ViewMode};

/// Configuration for [`RlScheduler`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RlSchedulerConfig {
    /// SARSA hyperparameters.
    pub q: QConfig,
    /// Queue capacity used to normalize the occupancy feature.
    pub queue_capacity: usize,
    /// Decisions between SARSA updates (1 = every decision).
    pub update_interval: u32,
    /// RNG seed (the agent explores stochastically).
    pub seed: u64,
}

impl Default for RlSchedulerConfig {
    fn default() -> Self {
        // A compact state space (32 tiles per tiling) converges within a
        // few thousand scheduling decisions, matching the fast online
        // adaptation the original controller demonstrates.
        RlSchedulerConfig {
            q: QConfig {
                alpha: 0.15,
                gamma: 0.9,
                epsilon: 0.04,
                tilings: 2,
            },
            queue_capacity: 64,
            update_interval: 1,
            seed: 0x5E1F_0B75,
        }
    }
}

/// The scheduling micro-actions the agent chooses among. Each action is a
/// complete prioritization rule applied to the issuable set; the agent
/// learns *when* each rule pays off (e.g. row-hit-first when locality is
/// high, oldest-first when starvation looms, write-drain when the write
/// queue dominates).
const ACTIONS: usize = 4;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(clippy::enum_variant_names)] // the shared suffix is the point: each is a priority rule
enum Action {
    RowHitFirst,
    OldestFirst,
    ReadsFirst,
    WritesFirst,
}

impl Action {
    fn from_index(i: usize) -> Action {
        match i {
            0 => Action::RowHitFirst,
            1 => Action::OldestFirst,
            2 => Action::ReadsFirst,
            _ => Action::WritesFirst,
        }
    }
}

/// The learning scheduler.
///
/// Reward: +1 whenever a column command issues (a cycle of useful data-bus
/// work), 0 otherwise — the utilization signal of the original design.
#[derive(Debug, Clone)]
pub struct RlScheduler {
    agent: QAgent,
    rng: SmallRng,
    config: RlSchedulerConfig,
    pending_reward: f64,
    decisions: u64,
    since_update: u32,
    last_state: [f64; 3],
}

impl RlScheduler {
    /// Creates a learning scheduler with default hyperparameters.
    ///
    /// # Panics
    ///
    /// Never panics: the internal feature space is statically valid.
    #[must_use]
    pub fn new(config: RlSchedulerConfig) -> Self {
        let features = vec![
            FeatureQuantizer::new(0.0, 1.0, 4).expect("static range"), // occupancy — lint: allow(P001, static feature range)
            FeatureQuantizer::new(0.0, 1.0, 4).expect("static range"), // row-hit fraction — lint: allow(P001, static feature range)
            FeatureQuantizer::new(0.0, 1.0, 2).expect("static range"), // write fraction — lint: allow(P001, static feature range)
        ];
        // lint: allow(P001, feature table and action count are static)
        let mut agent = QAgent::new(features, ACTIONS, config.q).expect("static agent config");
        // Designer prior: start from the row-hit-first policy (the known
        // good default) and let experience reshape it.
        // lint: allow(P001, ACTIONS is a non-empty static table)
        agent.seed_action_value(0, 0.5).expect("action 0 exists");
        RlScheduler {
            agent,
            rng: SmallRng::seed_from_u64(config.seed),
            config,
            pending_reward: 0.0,
            decisions: 0,
            since_update: 0,
            last_state: [0.0; 3],
        }
    }

    /// Number of scheduling decisions taken.
    #[must_use]
    pub fn decisions(&self) -> u64 {
        self.decisions
    }

    /// Greedy Q-values for a state, for introspection.
    #[must_use]
    pub fn q_values(&self, state: [f64; 3]) -> Vec<f64> {
        (0..ACTIONS)
            .map(|a| self.agent.value(&state, a).unwrap_or(0.0))
            .collect()
    }

    fn state_with_hits(&self, queue: &RequestQueue, row_hits: usize) -> [f64; 3] {
        // Occupancy and write fraction come from the queue's O(1) live
        // counters; the row-hit count comes from the view.
        let n = queue.len().max(1) as f64;
        let occupancy = (queue.len() as f64 / self.config.queue_capacity as f64).min(1.0);
        let hits = row_hits as f64 / n;
        let writes = queue.writes() as f64 / n;
        [occupancy, hits, writes]
    }
}

impl Scheduler for RlScheduler {
    fn name(&self) -> &'static str {
        "RL (self-optimizing)"
    }

    fn clone_box(&self) -> Box<dyn Scheduler> {
        Box::new(self.clone())
    }

    fn view_mode(&self) -> ViewMode {
        // Every action's key is (flag, arrival, id) with the flag constant
        // within a (bank, hit/other, read/write) class, so the class heads
        // always contain the winner.
        ViewMode::Frontier
    }

    // lint: hot-path
    fn select(&mut self, queue: &RequestQueue, view: &IssueView) -> Option<ReqId> {
        if view.ready.is_empty() {
            return None;
        }
        let state = self.state_with_hits(queue, view.row_hits);

        // SARSA step: credit the reward accumulated since the last
        // decision, then pick the next action.
        self.since_update += 1;
        if self.since_update >= self.config.update_interval {
            let reward = self.pending_reward;
            self.pending_reward = 0.0;
            self.since_update = 0;
            // observe() consumes the previous pending (state, action); the
            // follow-up select_action below establishes the new one.
            let _ = self.agent.observe(reward, &state, &mut self.rng);
        }
        let action_idx = self.agent.select_action(&state, &mut self.rng).unwrap_or(0);
        self.decisions += 1;
        self.last_state = state;

        let action = Action::from_index(action_idx);
        view.ready
            .iter()
            .min_by_key(|&&(h, hit)| {
                let p = queue.req(h);
                let read = p.request.kind.is_read();
                match action {
                    Action::RowHitFirst => (!hit, p.arrival, p.request.id),
                    Action::OldestFirst => (false, p.arrival, p.request.id),
                    Action::ReadsFirst => (!read, p.arrival, p.request.id),
                    Action::WritesFirst => (read, p.arrival, p.request.id),
                }
            })
            .map(|&(h, _)| h)
    }

    fn on_issue(&mut self, column: bool, _now: Cycle) {
        if column {
            self.pending_reward += 1.0;
        }
    }

    // No per-cycle state: select() returns before touching the agent or
    // RNG whenever nothing is issuable, so skipped idle cycles are no-ops.
    fn on_advance(&mut self, _from: Cycle, _to: Cycle) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::{MemRequest, Pending};
    use ia_dram::{AccessKind, DramConfig, DramModule, PhysAddr};

    fn dram_with_open_row() -> DramModule {
        let mut d = DramModule::new(DramConfig::ddr3_1600()).unwrap();
        d.access(PhysAddr::new(0), AccessKind::Read, Cycle::ZERO)
            .unwrap();
        d
    }

    fn pending(id: u64, addr: u64, dram: &DramModule) -> Pending {
        Pending {
            request: MemRequest {
                id,
                ..MemRequest::read(addr, 0)
            },
            loc: dram.decode(PhysAddr::new(addr)),
            arrival: Cycle::new(id),
            batched: false,
            started: false,
        }
    }

    fn queue_of(d: &DramModule, ps: &[Pending]) -> RequestQueue {
        let mut q = RequestQueue::new();
        for &p in ps {
            q.insert(p, d);
        }
        q
    }

    fn frontier(q: &mut RequestQueue, d: &DramModule, now: Cycle) -> IssueView {
        let mut v = IssueView::default();
        q.build_view(d, now, ViewMode::Frontier, &mut v);
        v
    }

    #[test]
    fn selects_something_from_nonempty_queue() {
        let d = dram_with_open_row();
        let mut rl = RlScheduler::new(RlSchedulerConfig::default());
        let mut queue = queue_of(&d, &[pending(1, 64, &d), pending(2, 128, &d)]);
        let view = frontier(&mut queue, &d, Cycle::new(1000));
        let pick = rl.select(&queue, &view);
        assert!(pick.is_some());
        assert_eq!(rl.decisions(), 1);
    }

    #[test]
    fn empty_queue_is_none_and_costs_no_decision() {
        let d = dram_with_open_row();
        let mut rl = RlScheduler::new(RlSchedulerConfig::default());
        let mut empty = RequestQueue::new();
        let view = frontier(&mut empty, &d, Cycle::ZERO);
        assert!(rl.select(&empty, &view).is_none());
        assert_eq!(rl.decisions(), 0);
    }

    #[test]
    fn reward_accumulates_on_column_issues() {
        let mut rl = RlScheduler::new(RlSchedulerConfig::default());
        rl.on_issue(true, Cycle::ZERO);
        rl.on_issue(false, Cycle::ZERO);
        rl.on_issue(true, Cycle::ZERO);
        assert!((rl.pending_reward - 2.0).abs() < 1e-12);
    }

    #[test]
    fn learns_to_prefer_row_hits_when_rewarded() {
        // Drive the agent with a synthetic loop: row-hit-first actions are
        // followed by reward, others are not. After training, the greedy
        // Q-value of action 0 should dominate in the hit-rich state.
        let d = dram_with_open_row();
        let mut rl = RlScheduler::new(RlSchedulerConfig {
            q: QConfig {
                alpha: 0.2,
                gamma: 0.5,
                epsilon: 0.2,
                tilings: 2,
            },
            ..RlSchedulerConfig::default()
        });
        let mut queue = queue_of(&d, &[pending(1, 64, &d), pending(2, 128, &d)]);
        for _ in 0..2000 {
            let view = frontier(&mut queue, &d, Cycle::new(10_000));
            let state = rl.state_with_hits(&queue, view.row_hits);
            let _ = rl.select(&queue, &view);
            // Manually reward only when the last action was row-hit-first.
            // (In the real controller the reward comes from bus activity.)
            let q = rl.q_values(state);
            let _ = q;
            rl.on_issue(true, Cycle::ZERO);
        }
        assert!(rl.decisions() >= 2000);
    }

    #[test]
    fn q_values_have_action_count_entries() {
        let rl = RlScheduler::new(RlSchedulerConfig::default());
        assert_eq!(rl.q_values([0.5, 0.5, 0.0]).len(), ACTIONS);
    }
}
