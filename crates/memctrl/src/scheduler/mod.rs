//! Memory-request schedulers: the fixed heuristic policies the paper
//! criticizes as "rigid and hardcoded by a human", plus the learning
//! alternative ([`rl::RlScheduler`]) it advocates.

mod fairness;
mod rl;

pub use fairness::{Atlas, Bliss, ParBs, Tcm};
pub use rl::{RlScheduler, RlSchedulerConfig};

use ia_dram::{Command, Cycle, DramModule};

use crate::request::{Completed, Pending};

/// A command scheduler for one memory channel.
///
/// Every cycle the controller presents the queue; the scheduler returns
/// the index of the request whose next command should issue. Implementors
/// should choose among *issuable* requests (see [`issuable_now`]) — the
/// controller ignores selections that cannot issue this cycle.
pub trait Scheduler: std::fmt::Debug {
    /// Policy name for reports.
    fn name(&self) -> &'static str;

    /// Picks a queued request to serve, or `None` to idle this cycle.
    fn select(&mut self, queue: &[Pending], dram: &DramModule, now: Cycle) -> Option<usize>;

    /// Pre-selection hook that may mutate queue metadata (PAR-BS batch
    /// marking). Called once per cycle before [`Scheduler::select`].
    fn prepare(&mut self, _queue: &mut [Pending]) {}

    /// Notification that a command issued (and whether it was a column
    /// command, i.e. made data-bus progress).
    fn on_issue(&mut self, _column: bool, _now: Cycle) {}

    /// Notification that a request completed.
    fn on_complete(&mut self, _completed: &Completed, _now: Cycle) {}

    /// Per-cycle housekeeping (epoch counters).
    fn on_tick(&mut self, _now: Cycle) {}

    /// Bulk equivalent of calling [`Scheduler::on_tick`] once for every
    /// cycle in `from..to` — the hook the cycle-skipping simulation engine
    /// uses to fast-forward over idle spans without losing epoch state.
    ///
    /// The default implementation literally loops, which is correct for
    /// any scheduler but no faster than polling. Schedulers with
    /// per-cycle epoch state should override it with the closed form
    /// (see [`Atlas`]/[`Tcm`]/[`Bliss`]); stateless-per-cycle schedulers
    /// should override it with a no-op.
    fn on_advance(&mut self, from: Cycle, to: Cycle) {
        let mut n = from;
        while n < to {
            self.on_tick(n);
            n += 1;
        }
    }
}

/// Indices of queued requests whose next command can issue at `now`.
#[must_use]
pub fn issuable_now(queue: &[Pending], dram: &DramModule, now: Cycle) -> Vec<usize> {
    queue
        .iter()
        .enumerate()
        .filter(|(_, p)| {
            let cmd = dram.next_needed(&p.loc, p.request.kind);
            dram.ready_at(&p.loc, &cmd) <= now
        })
        .map(|(i, _)| i)
        .collect()
}

/// Whether the request's next command is a column command (row-buffer hit).
#[must_use]
pub fn is_row_hit(p: &Pending, dram: &DramModule) -> bool {
    matches!(
        dram.next_needed(&p.loc, p.request.kind),
        Command::Read { .. } | Command::Write { .. }
    )
}

/// [`issuable_now`] minus row-closing precharges to banks that still have
/// pending row hits in the queue — the open-page rule every
/// locality-respecting scheduler follows (a row with outstanding hits is
/// not closed just because its next burst is a few cycles away).
#[must_use]
pub fn issuable_open_page(queue: &[Pending], dram: &DramModule, now: Cycle) -> Vec<usize> {
    issuable_now(queue, dram, now)
        .into_iter()
        .filter(|&i| {
            let p = &queue[i];
            if !matches!(dram.next_needed(&p.loc, p.request.kind), Command::Precharge) {
                return true;
            }
            // Closing this bank is allowed only if no queued request hits
            // its currently-open row.
            !queue
                .iter()
                .any(|q| q.loc.same_bank(&p.loc) && is_row_hit(q, dram))
        })
        .collect()
}

/// Strict in-order first-come first-served: always serves the oldest
/// request, idling while its next command is not yet legal — the naive
/// baseline the out-of-order scheduling literature (Rixner+, ISCA 2000)
/// measures against.
#[derive(Debug, Clone, Default)]
pub struct Fcfs;

impl Fcfs {
    /// Creates the scheduler.
    #[must_use]
    pub fn new() -> Self {
        Fcfs
    }
}

impl Scheduler for Fcfs {
    fn name(&self) -> &'static str {
        "FCFS"
    }

    fn select(&mut self, queue: &[Pending], _dram: &DramModule, _now: Cycle) -> Option<usize> {
        (0..queue.len()).min_by_key(|&i| (queue[i].arrival, queue[i].request.id))
    }

    fn on_advance(&mut self, _from: Cycle, _to: Cycle) {}
}

/// First-ready FCFS (Rixner+, ISCA 2000): row-buffer hits first, then
/// oldest — the de-facto standard fixed policy.
#[derive(Debug, Clone, Default)]
pub struct FrFcfs;

impl FrFcfs {
    /// Creates the scheduler.
    #[must_use]
    pub fn new() -> Self {
        FrFcfs
    }
}

impl Scheduler for FrFcfs {
    fn name(&self) -> &'static str {
        "FR-FCFS"
    }

    fn select(&mut self, queue: &[Pending], dram: &DramModule, now: Cycle) -> Option<usize> {
        let ready = issuable_open_page(queue, dram, now);
        ready.into_iter().min_by_key(|&i| {
            let hit = is_row_hit(&queue[i], dram);
            (!hit, queue[i].arrival, queue[i].request.id)
        })
    }

    fn on_advance(&mut self, _from: Cycle, _to: Cycle) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::MemRequest;
    use ia_dram::{AccessKind, DramConfig, PhysAddr};

    fn setup() -> (DramModule, Vec<Pending>) {
        let mut dram = DramModule::new(DramConfig::ddr3_1600()).unwrap();
        // Open row 0 of bank 0 by accessing address 0.
        dram.access(PhysAddr::new(0), AccessKind::Read, Cycle::ZERO)
            .unwrap();
        let mk = |id: u64, addr: u64, arrival: u64| Pending {
            request: MemRequest {
                id,
                ..MemRequest::read(addr, 0)
            },
            loc: dram.decode(PhysAddr::new(addr)),
            arrival: Cycle::new(arrival),
            batched: false,
            started: false,
        };
        // Request 0: old, different row in same bank (conflict).
        // Request 1: newer, hits the open row.
        let geo = dram.config().geometry;
        let row_stride = geo.row_bytes
            * (geo.banks_per_group * geo.bank_groups * geo.ranks * geo.channels) as u64;
        let queue = vec![mk(1, row_stride, 0), mk(2, 128, 5)];
        (dram, queue)
    }

    #[test]
    fn fcfs_picks_oldest() {
        let (dram, queue) = setup();
        let now = Cycle::new(100);
        let pick = Fcfs::new().select(&queue, &dram, now).unwrap();
        assert_eq!(pick, 0, "FCFS serves the older conflicting request first");
    }

    #[test]
    fn frfcfs_prefers_row_hit() {
        let (dram, queue) = setup();
        let now = Cycle::new(100);
        let pick = FrFcfs::new().select(&queue, &dram, now).unwrap();
        assert_eq!(pick, 1, "FR-FCFS serves the row hit first");
        assert!(is_row_hit(&queue[1], &dram));
        assert!(!is_row_hit(&queue[0], &dram));
    }

    #[test]
    fn empty_queue_selects_nothing() {
        let (dram, _) = setup();
        assert!(Fcfs::new().select(&[], &dram, Cycle::ZERO).is_none());
        assert!(FrFcfs::new().select(&[], &dram, Cycle::ZERO).is_none());
    }

    #[test]
    fn issuable_now_respects_timing() {
        let (dram, queue) = setup();
        // Immediately after the warm-up access, the bank is still within
        // tRAS/tRTP windows; at a late cycle everything is issuable.
        let late = issuable_now(&queue, &dram, Cycle::new(10_000));
        assert_eq!(late.len(), 2);
    }
}
