//! Memory-request schedulers: the fixed heuristic policies the paper
//! criticizes as "rigid and hardcoded by a human", plus the learning
//! alternative ([`rl::RlScheduler`]) it advocates.
//!
//! Since the indexed-queue refactor, schedulers no longer scan the raw
//! queue: the controller builds an [`IssueView`] from the slab-backed
//! [`RequestQueue`]'s per-bank ready lists (at the depth the policy's
//! [`Scheduler::view_mode`] asks for) and the policy picks among the
//! view's candidates by stable [`ReqId`] handle. The legacy linear scan
//! survives as [`linear_issue_view`] — the differential oracle the
//! queue-equivalence proptest replays both paths through.

mod fairness;
mod rl;

pub use fairness::{Atlas, Bliss, ParBs, Tcm};
pub use rl::{RlScheduler, RlSchedulerConfig};

use ia_dram::{Command, Cycle, DramModule};

use crate::pool::{IssueView, ReqId, RequestQueue, ViewMode};
use crate::request::{Completed, Pending};

/// A command scheduler for one memory channel.
///
/// Every cycle the controller builds an [`IssueView`] at the depth
/// requested by [`Scheduler::view_mode`] and presents it together with
/// the queue; the scheduler returns the handle of the request whose next
/// command should issue. Implementors should choose among the view's
/// candidates — the controller ignores selections that cannot issue this
/// cycle.
pub trait Scheduler: std::fmt::Debug + Send {
    /// Policy name for reports.
    fn name(&self) -> &'static str;

    /// Boxed deep copy of the full policy state (epoch counters, batch
    /// marks, learned tables, RNG position), so a warm controller can be
    /// snapshot/forked for sweeps. `Box<dyn Scheduler>` implements
    /// `Clone` through this hook.
    fn clone_box(&self) -> Box<dyn Scheduler>;

    /// How much of an [`IssueView`] this policy needs per decision.
    ///
    /// [`ViewMode::Frontier`] (class-list heads only) is exact for any
    /// policy whose sort key is constant within a (bank, row-hit/miss,
    /// read/write) class; thread-keyed fairness policies need
    /// [`ViewMode::Full`].
    fn view_mode(&self) -> ViewMode {
        ViewMode::Full
    }

    /// Picks a queued request to serve, or `None` to idle this cycle.
    fn select(&mut self, queue: &RequestQueue, view: &IssueView) -> Option<ReqId>;

    /// Pre-selection hook that may mutate queue metadata (PAR-BS batch
    /// marking). Called once per cycle before [`Scheduler::select`].
    fn prepare(&mut self, _queue: &mut RequestQueue) {}

    /// Notification that a command issued (and whether it was a column
    /// command, i.e. made data-bus progress).
    fn on_issue(&mut self, _column: bool, _now: Cycle) {}

    /// Notification that a request completed.
    fn on_complete(&mut self, _completed: &Completed, _now: Cycle) {}

    /// Per-cycle housekeeping (epoch counters).
    fn on_tick(&mut self, _now: Cycle) {}

    /// Bulk equivalent of calling [`Scheduler::on_tick`] once for every
    /// cycle in `from..to` — the hook the cycle-skipping simulation engine
    /// uses to fast-forward over idle spans without losing epoch state.
    ///
    /// The default implementation literally loops, which is correct for
    /// any scheduler but no faster than polling. Schedulers with
    /// per-cycle epoch state should override it with the closed form
    /// (see [`Atlas`]/[`Tcm`]/[`Bliss`]); stateless-per-cycle schedulers
    /// should override it with a no-op.
    fn on_advance(&mut self, from: Cycle, to: Cycle) {
        let mut n = from;
        while n < to {
            self.on_tick(n);
            n += 1;
        }
    }
}

/// Indices of queued requests whose next command can issue at `now`.
#[must_use]
pub fn issuable_now(queue: &[Pending], dram: &DramModule, now: Cycle) -> Vec<usize> {
    queue
        .iter()
        .enumerate()
        .filter(|(_, p)| {
            let cmd = dram.next_needed(&p.loc, p.request.kind);
            dram.ready_at(&p.loc, &cmd) <= now
        })
        .map(|(i, _)| i)
        .collect()
}

/// Whether the request's next command is a column command (row-buffer hit).
#[must_use]
pub fn is_row_hit(p: &Pending, dram: &DramModule) -> bool {
    matches!(
        dram.next_needed(&p.loc, p.request.kind),
        Command::Read { .. } | Command::Write { .. }
    )
}

/// Per-cycle scheduling facts for one queue as a flat slice, computed by
/// the legacy linear scan ([`linear_issue_view`]).
///
/// Superseded in the hot path by [`IssueView`] built from the indexed
/// [`RequestQueue`]; retained as the reference implementation that the
/// `scheduler_queue_equivalence` proptest checks the indexed path
/// against, decision by decision.
#[derive(Debug, Clone)]
pub struct LinearIssueView {
    /// Issuable request indices under the open-page rule (ascending),
    /// each with its row-hit flag.
    pub ready: Vec<(usize, bool)>,
    /// Number of queued requests (issuable or not) whose next command is
    /// a column command — the occupancy signal RL-class policies use.
    pub row_hits: usize,
}

/// Builds the [`LinearIssueView`] for `queue` at `now`: [`issuable_now`]
/// minus row-closing precharges to banks that still have pending row hits
/// in the queue — the open-page rule every locality-respecting scheduler
/// follows (a row with outstanding hits is not closed just because its
/// next burst is a few cycles away).
#[must_use]
pub fn linear_issue_view(queue: &[Pending], dram: &DramModule, now: Cycle) -> LinearIssueView {
    let geo = &dram.config().geometry;
    let mut ready: Vec<(usize, bool)> = Vec::with_capacity(queue.len());
    // Flat bank keys with at least one queued row hit; a handful of
    // entries at most, so a linear `contains` beats any hashing.
    let mut hit_banks: Vec<usize> = Vec::new();
    let mut row_hits = 0usize;
    // Pass 1: classify every entry once (issuable? hit? precharge?).
    let mut pending_pre: Vec<(usize, usize)> = Vec::new(); // (index, flat bank)
    for (i, p) in queue.iter().enumerate() {
        let cmd = dram.next_needed(&p.loc, p.request.kind);
        let issuable = dram.ready_at(&p.loc, &cmd) <= now;
        match cmd {
            Command::Read { .. } | Command::Write { .. } => {
                row_hits += 1;
                let bank = p.loc.flat_bank(geo);
                if !hit_banks.contains(&bank) {
                    hit_banks.push(bank);
                }
                if issuable {
                    ready.push((i, true));
                }
            }
            Command::Precharge if issuable => pending_pre.push((i, p.loc.flat_bank(geo))),
            _ => {
                if issuable {
                    ready.push((i, false));
                }
            }
        }
    }
    // Pass 2: closing a bank is allowed only if no queued request hits
    // its currently-open row.
    for (i, bank) in pending_pre {
        if !hit_banks.contains(&bank) {
            ready.push((i, false));
        }
    }
    ready.sort_unstable_by_key(|&(i, _)| i);
    LinearIssueView { ready, row_hits }
}

/// [`linear_issue_view`]'s issuable indices alone, for callers that do
/// not need the row-hit flags.
#[must_use]
pub fn issuable_open_page(queue: &[Pending], dram: &DramModule, now: Cycle) -> Vec<usize> {
    linear_issue_view(queue, dram, now)
        .ready
        .into_iter()
        .map(|(i, _)| i)
        .collect()
}

/// Strict in-order first-come first-served: always serves the oldest
/// request, idling while its next command is not yet legal — the naive
/// baseline the out-of-order scheduling literature (Rixner+, ISCA 2000)
/// measures against.
#[derive(Debug, Clone, Default)]
pub struct Fcfs;

impl Fcfs {
    /// Creates the scheduler.
    #[must_use]
    pub fn new() -> Self {
        Fcfs
    }
}

impl Clone for Box<dyn Scheduler> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

impl Scheduler for Fcfs {
    fn name(&self) -> &'static str {
        "FCFS"
    }

    fn clone_box(&self) -> Box<dyn Scheduler> {
        Box::new(self.clone())
    }

    fn view_mode(&self) -> ViewMode {
        // FCFS is the global list head; it needs no view at all.
        ViewMode::Skip
    }

    // lint: hot-path
    fn select(&mut self, queue: &RequestQueue, _view: &IssueView) -> Option<ReqId> {
        queue.head()
    }

    fn on_advance(&mut self, _from: Cycle, _to: Cycle) {}
}

/// First-ready FCFS (Rixner+, ISCA 2000): row-buffer hits first, then
/// oldest — the de-facto standard fixed policy.
#[derive(Debug, Clone, Default)]
pub struct FrFcfs;

impl FrFcfs {
    /// Creates the scheduler.
    #[must_use]
    pub fn new() -> Self {
        FrFcfs
    }
}

impl Scheduler for FrFcfs {
    fn name(&self) -> &'static str {
        "FR-FCFS"
    }

    fn clone_box(&self) -> Box<dyn Scheduler> {
        Box::new(self.clone())
    }

    fn view_mode(&self) -> ViewMode {
        // (!hit, arrival, id) is constant within a (bank, class) list, so
        // the class heads contain the winner.
        ViewMode::Frontier
    }

    // lint: hot-path
    fn select(&mut self, queue: &RequestQueue, view: &IssueView) -> Option<ReqId> {
        view.ready
            .iter()
            .min_by_key(|&&(h, hit)| {
                let p = queue.req(h);
                (!hit, p.arrival, p.request.id)
            })
            .map(|&(h, _)| h)
    }

    fn on_advance(&mut self, _from: Cycle, _to: Cycle) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::MemRequest;
    use ia_dram::{AccessKind, DramConfig, PhysAddr};

    fn mk(dram: &DramModule, id: u64, addr: u64, arrival: u64) -> Pending {
        Pending {
            request: MemRequest {
                id,
                ..MemRequest::read(addr, 0)
            },
            loc: dram.decode(PhysAddr::new(addr)),
            arrival: Cycle::new(arrival),
            batched: false,
            started: false,
        }
    }

    fn setup() -> (DramModule, RequestQueue) {
        let mut dram = DramModule::new(DramConfig::ddr3_1600()).unwrap();
        // Open row 0 of bank 0 by accessing address 0.
        dram.access(PhysAddr::new(0), AccessKind::Read, Cycle::ZERO)
            .unwrap();
        // Request 1: old, different row in same bank (conflict).
        // Request 2: newer, hits the open row.
        let geo = dram.config().geometry;
        let row_stride = geo.row_bytes
            * (geo.banks_per_group * geo.bank_groups * geo.ranks * geo.channels) as u64;
        let mut queue = RequestQueue::new();
        queue.insert(mk(&dram, 1, row_stride, 0), &dram);
        queue.insert(mk(&dram, 2, 128, 5), &dram);
        (dram, queue)
    }

    fn view_of(
        queue: &mut RequestQueue,
        dram: &DramModule,
        now: Cycle,
        mode: ViewMode,
    ) -> IssueView {
        let mut v = IssueView::default();
        queue.build_view(dram, now, mode, &mut v);
        v
    }

    #[test]
    fn fcfs_picks_oldest() {
        let (dram, mut queue) = setup();
        let view = view_of(&mut queue, &dram, Cycle::new(100), ViewMode::Skip);
        let pick = Fcfs::new().select(&queue, &view).unwrap();
        assert_eq!(
            queue.req(pick).request.id,
            1,
            "FCFS serves the older conflicting request first"
        );
    }

    #[test]
    fn frfcfs_prefers_row_hit() {
        let (dram, mut queue) = setup();
        let view = view_of(&mut queue, &dram, Cycle::new(100), ViewMode::Frontier);
        let pick = FrFcfs::new().select(&queue, &view).unwrap();
        let p = *queue.req(pick);
        assert_eq!(p.request.id, 2, "FR-FCFS serves the row hit first");
        assert!(is_row_hit(&p, &dram));
        let other = queue.iter().find(|(_, q)| q.request.id == 1).unwrap();
        assert!(!is_row_hit(other.1, &dram));
    }

    #[test]
    fn empty_queue_selects_nothing() {
        let (dram, _) = setup();
        let mut empty = RequestQueue::new();
        let view = view_of(&mut empty, &dram, Cycle::ZERO, ViewMode::Frontier);
        assert!(Fcfs::new().select(&empty, &view).is_none());
        assert!(FrFcfs::new().select(&empty, &view).is_none());
    }

    #[test]
    fn issuable_now_respects_timing() {
        let (dram, _) = setup();
        let geo = dram.config().geometry;
        let row_stride = geo.row_bytes
            * (geo.banks_per_group * geo.bank_groups * geo.ranks * geo.channels) as u64;
        let queue = vec![mk(&dram, 1, row_stride, 0), mk(&dram, 2, 128, 5)];
        // Immediately after the warm-up access, the bank is still within
        // tRAS/tRTP windows; at a late cycle everything is issuable.
        let late = issuable_now(&queue, &dram, Cycle::new(10_000));
        assert_eq!(late.len(), 2);
    }

    #[test]
    fn indexed_view_matches_linear_scan() {
        let (dram, mut queue) = setup();
        let linear: Vec<Pending> = queue.iter().map(|(_, p)| *p).collect();
        for now in [0u64, 20, 100, 10_000] {
            let now = Cycle::new(now);
            let want = linear_issue_view(&linear, &dram, now);
            let got = view_of(&mut queue, &dram, now, ViewMode::Full);
            let mut got_ids: Vec<(u64, bool)> = got
                .ready
                .iter()
                .map(|&(h, hit)| (queue.req(h).request.id, hit))
                .collect();
            got_ids.sort_unstable();
            let mut want_ids: Vec<(u64, bool)> = want
                .ready
                .iter()
                .map(|&(i, hit)| (linear[i].request.id, hit))
                .collect();
            want_ids.sort_unstable();
            assert_eq!(got_ids, want_ids, "candidate sets diverge at {now:?}");
            assert_eq!(got.row_hits, want.row_hits);
        }
    }
}
