//! Memory-request schedulers: the fixed heuristic policies the paper
//! criticizes as "rigid and hardcoded by a human", plus the learning
//! alternative ([`rl::RlScheduler`]) it advocates.

mod fairness;
mod rl;

pub use fairness::{Atlas, Bliss, ParBs, Tcm};
pub use rl::{RlScheduler, RlSchedulerConfig};

use ia_dram::{Command, Cycle, DramModule};

use crate::request::{Completed, Pending};

/// A command scheduler for one memory channel.
///
/// Every cycle the controller presents the queue; the scheduler returns
/// the index of the request whose next command should issue. Implementors
/// should choose among *issuable* requests (see [`issuable_now`]) — the
/// controller ignores selections that cannot issue this cycle.
pub trait Scheduler: std::fmt::Debug + Send {
    /// Policy name for reports.
    fn name(&self) -> &'static str;

    /// Boxed deep copy of the full policy state (epoch counters, batch
    /// marks, learned tables, RNG position), so a warm controller can be
    /// snapshot/forked for sweeps. `Box<dyn Scheduler>` implements
    /// `Clone` through this hook.
    fn clone_box(&self) -> Box<dyn Scheduler>;

    /// Picks a queued request to serve, or `None` to idle this cycle.
    fn select(&mut self, queue: &[Pending], dram: &DramModule, now: Cycle) -> Option<usize>;

    /// Pre-selection hook that may mutate queue metadata (PAR-BS batch
    /// marking). Called once per cycle before [`Scheduler::select`].
    fn prepare(&mut self, _queue: &mut [Pending]) {}

    /// Notification that a command issued (and whether it was a column
    /// command, i.e. made data-bus progress).
    fn on_issue(&mut self, _column: bool, _now: Cycle) {}

    /// Notification that a request completed.
    fn on_complete(&mut self, _completed: &Completed, _now: Cycle) {}

    /// Per-cycle housekeeping (epoch counters).
    fn on_tick(&mut self, _now: Cycle) {}

    /// Bulk equivalent of calling [`Scheduler::on_tick`] once for every
    /// cycle in `from..to` — the hook the cycle-skipping simulation engine
    /// uses to fast-forward over idle spans without losing epoch state.
    ///
    /// The default implementation literally loops, which is correct for
    /// any scheduler but no faster than polling. Schedulers with
    /// per-cycle epoch state should override it with the closed form
    /// (see [`Atlas`]/[`Tcm`]/[`Bliss`]); stateless-per-cycle schedulers
    /// should override it with a no-op.
    fn on_advance(&mut self, from: Cycle, to: Cycle) {
        let mut n = from;
        while n < to {
            self.on_tick(n);
            n += 1;
        }
    }
}

/// Indices of queued requests whose next command can issue at `now`.
#[must_use]
pub fn issuable_now(queue: &[Pending], dram: &DramModule, now: Cycle) -> Vec<usize> {
    queue
        .iter()
        .enumerate()
        .filter(|(_, p)| {
            let cmd = dram.next_needed(&p.loc, p.request.kind);
            dram.ready_at(&p.loc, &cmd) <= now
        })
        .map(|(i, _)| i)
        .collect()
}

/// Whether the request's next command is a column command (row-buffer hit).
#[must_use]
pub fn is_row_hit(p: &Pending, dram: &DramModule) -> bool {
    matches!(
        dram.next_needed(&p.loc, p.request.kind),
        Command::Read { .. } | Command::Write { .. }
    )
}

/// Per-cycle scheduling facts for one queue, computed in a single pass
/// over the DRAM timing state.
///
/// Every policy needs the same two facts per queued request — "can its
/// next command issue now?" and "is it a row hit?" — and the open-page
/// precharge rule additionally needs "does any request hit this bank's
/// open row?". Computing them entry-by-entry inside each policy's sort
/// key re-walked the channel/rank/bank hierarchy O(n²) times per cycle;
/// this view walks it exactly once per entry.
#[derive(Debug, Clone)]
pub struct IssueView {
    /// Issuable request indices under the open-page rule (ascending),
    /// each with its row-hit flag.
    pub ready: Vec<(usize, bool)>,
    /// Number of queued requests (issuable or not) whose next command is
    /// a column command — the occupancy signal RL-class policies use.
    pub row_hits: usize,
}

/// Builds the [`IssueView`] for `queue` at `now`: [`issuable_now`] minus
/// row-closing precharges to banks that still have pending row hits in
/// the queue — the open-page rule every locality-respecting scheduler
/// follows (a row with outstanding hits is not closed just because its
/// next burst is a few cycles away).
#[must_use]
pub fn issue_view(queue: &[Pending], dram: &DramModule, now: Cycle) -> IssueView {
    let geo = &dram.config().geometry;
    let mut ready: Vec<(usize, bool)> = Vec::with_capacity(queue.len());
    // Flat bank keys with at least one queued row hit; a handful of
    // entries at most, so a linear `contains` beats any hashing.
    let mut hit_banks: Vec<usize> = Vec::new();
    let mut row_hits = 0usize;
    // Pass 1: classify every entry once (issuable? hit? precharge?).
    let mut pending_pre: Vec<(usize, usize)> = Vec::new(); // (index, flat bank)
    for (i, p) in queue.iter().enumerate() {
        let cmd = dram.next_needed(&p.loc, p.request.kind);
        let issuable = dram.ready_at(&p.loc, &cmd) <= now;
        match cmd {
            Command::Read { .. } | Command::Write { .. } => {
                row_hits += 1;
                let bank = p.loc.flat_bank(geo);
                if !hit_banks.contains(&bank) {
                    hit_banks.push(bank);
                }
                if issuable {
                    ready.push((i, true));
                }
            }
            Command::Precharge if issuable => pending_pre.push((i, p.loc.flat_bank(geo))),
            _ => {
                if issuable {
                    ready.push((i, false));
                }
            }
        }
    }
    // Pass 2: closing a bank is allowed only if no queued request hits
    // its currently-open row.
    for (i, bank) in pending_pre {
        if !hit_banks.contains(&bank) {
            ready.push((i, false));
        }
    }
    ready.sort_unstable_by_key(|&(i, _)| i);
    IssueView { ready, row_hits }
}

/// [`issue_view`]'s issuable indices alone, for callers that do not need
/// the row-hit flags.
#[must_use]
pub fn issuable_open_page(queue: &[Pending], dram: &DramModule, now: Cycle) -> Vec<usize> {
    issue_view(queue, dram, now)
        .ready
        .into_iter()
        .map(|(i, _)| i)
        .collect()
}

/// Strict in-order first-come first-served: always serves the oldest
/// request, idling while its next command is not yet legal — the naive
/// baseline the out-of-order scheduling literature (Rixner+, ISCA 2000)
/// measures against.
#[derive(Debug, Clone, Default)]
pub struct Fcfs;

impl Fcfs {
    /// Creates the scheduler.
    #[must_use]
    pub fn new() -> Self {
        Fcfs
    }
}

impl Clone for Box<dyn Scheduler> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

impl Scheduler for Fcfs {
    fn name(&self) -> &'static str {
        "FCFS"
    }

    fn clone_box(&self) -> Box<dyn Scheduler> {
        Box::new(self.clone())
    }

    fn select(&mut self, queue: &[Pending], _dram: &DramModule, _now: Cycle) -> Option<usize> {
        (0..queue.len()).min_by_key(|&i| (queue[i].arrival, queue[i].request.id))
    }

    fn on_advance(&mut self, _from: Cycle, _to: Cycle) {}
}

/// First-ready FCFS (Rixner+, ISCA 2000): row-buffer hits first, then
/// oldest — the de-facto standard fixed policy.
#[derive(Debug, Clone, Default)]
pub struct FrFcfs;

impl FrFcfs {
    /// Creates the scheduler.
    #[must_use]
    pub fn new() -> Self {
        FrFcfs
    }
}

impl Scheduler for FrFcfs {
    fn name(&self) -> &'static str {
        "FR-FCFS"
    }

    fn clone_box(&self) -> Box<dyn Scheduler> {
        Box::new(self.clone())
    }

    fn select(&mut self, queue: &[Pending], dram: &DramModule, now: Cycle) -> Option<usize> {
        let view = issue_view(queue, dram, now);
        view.ready
            .into_iter()
            .min_by_key(|&(i, hit)| (!hit, queue[i].arrival, queue[i].request.id))
            .map(|(i, _)| i)
    }

    fn on_advance(&mut self, _from: Cycle, _to: Cycle) {}
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::MemRequest;
    use ia_dram::{AccessKind, DramConfig, PhysAddr};

    fn setup() -> (DramModule, Vec<Pending>) {
        let mut dram = DramModule::new(DramConfig::ddr3_1600()).unwrap();
        // Open row 0 of bank 0 by accessing address 0.
        dram.access(PhysAddr::new(0), AccessKind::Read, Cycle::ZERO)
            .unwrap();
        let mk = |id: u64, addr: u64, arrival: u64| Pending {
            request: MemRequest {
                id,
                ..MemRequest::read(addr, 0)
            },
            loc: dram.decode(PhysAddr::new(addr)),
            arrival: Cycle::new(arrival),
            batched: false,
            started: false,
        };
        // Request 0: old, different row in same bank (conflict).
        // Request 1: newer, hits the open row.
        let geo = dram.config().geometry;
        let row_stride = geo.row_bytes
            * (geo.banks_per_group * geo.bank_groups * geo.ranks * geo.channels) as u64;
        let queue = vec![mk(1, row_stride, 0), mk(2, 128, 5)];
        (dram, queue)
    }

    #[test]
    fn fcfs_picks_oldest() {
        let (dram, queue) = setup();
        let now = Cycle::new(100);
        let pick = Fcfs::new().select(&queue, &dram, now).unwrap();
        assert_eq!(pick, 0, "FCFS serves the older conflicting request first");
    }

    #[test]
    fn frfcfs_prefers_row_hit() {
        let (dram, queue) = setup();
        let now = Cycle::new(100);
        let pick = FrFcfs::new().select(&queue, &dram, now).unwrap();
        assert_eq!(pick, 1, "FR-FCFS serves the row hit first");
        assert!(is_row_hit(&queue[1], &dram));
        assert!(!is_row_hit(&queue[0], &dram));
    }

    #[test]
    fn empty_queue_selects_nothing() {
        let (dram, _) = setup();
        assert!(Fcfs::new().select(&[], &dram, Cycle::ZERO).is_none());
        assert!(FrFcfs::new().select(&[], &dram, Cycle::ZERO).is_none());
    }

    #[test]
    fn issuable_now_respects_timing() {
        let (dram, queue) = setup();
        // Immediately after the warm-up access, the bank is still within
        // tRAS/tRTP windows; at a late cycle everything is issuable.
        let late = issuable_now(&queue, &dram, Cycle::new(10_000));
        assert_eq!(late.len(), 2);
    }
}
