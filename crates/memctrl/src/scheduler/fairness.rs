//! Fairness- and QoS-oriented schedulers: PAR-BS, ATLAS, TCM, BLISS —
//! the succession of human-designed policies (Mutlu & Moscibroda ISCA'08;
//! Kim+ HPCA'10, MICRO'10; Subramanian+ ICCD'14) that the paper holds up
//! as evidence that each fixed heuristic handles some workloads and
//! mishandles others.
//!
//! All four rank by thread-keyed state, so their sort keys vary within a
//! (bank, class) ready list — they keep the default [`ViewMode::Full`]
//! view and pick among every issuable request, but the view itself is
//! now built from the indexed queue instead of a linear scan.
//!
//! [`ViewMode::Full`]: crate::pool::ViewMode::Full

use std::collections::HashSet;

use ia_dram::Cycle;

use super::Scheduler;
use crate::pool::{IssueView, ReqId, RequestQueue};
use crate::request::Completed;

/// Number of per-cycle boundary triggers a `now / interval` epoch check
/// fires over the cycle span whose epochs run `first..=last`, given the
/// scheduler last reacted to epoch `prior`.
///
/// Per-cycle schedulers run `if epoch > prior { prior = epoch; ... }`
/// every tick; over a skipped span the distinct epoch values are the
/// consecutive integers `first..=last`, of which exactly those greater
/// than `prior` trigger.
fn epoch_crossings(first: u64, last: u64, prior: u64) -> u64 {
    if last <= prior {
        0
    } else if first > prior {
        last - first + 1
    } else {
        last - prior
    }
}

/// Parallelism-Aware Batch Scheduling: requests are grouped into batches;
/// all requests of the current batch are served before any newer request,
/// with shortest-job-first thread ranking inside the batch (preserving
/// each thread's bank-level parallelism).
#[derive(Debug, Clone)]
pub struct ParBs {
    /// Max requests per (thread, bank) marked per batch.
    batch_cap: usize,
    /// Thread ranking for the current batch (rank[thread] = priority,
    /// lower is better).
    rank: Vec<usize>,
}

impl ParBs {
    /// Creates PAR-BS with the paper's marking cap of 5.
    #[must_use]
    pub fn new(threads: usize) -> Self {
        ParBs {
            batch_cap: 5,
            rank: vec![0; threads],
        }
    }

    fn form_batch(&mut self, queue: &mut RequestQueue) {
        // Mark up to batch_cap oldest requests per (thread, bank). The
        // queue's global list is already in (arrival, id) order, so the
        // marking walk needs no sort and is independent of slab layout.
        let mut marked: std::collections::HashMap<(usize, usize, usize), usize> =
            std::collections::HashMap::new();
        let mut per_thread = vec![0usize; self.rank.len()];
        let cap = self.batch_cap;
        queue.mark_batch(|p| {
            let key = (p.request.thread, p.loc.channel, p.loc.flat_bank_key());
            let count = marked.entry(key).or_insert(0);
            if *count < cap {
                *count += 1;
                if p.request.thread < per_thread.len() {
                    per_thread[p.request.thread] += 1;
                }
                true
            } else {
                false
            }
        });
        // Shortest job first: fewest marked requests → best (lowest) rank.
        let mut threads: Vec<usize> = (0..self.rank.len()).collect();
        threads.sort_by_key(|&t| per_thread[t]);
        for (priority, &t) in threads.iter().enumerate() {
            self.rank[t] = priority;
        }
    }

    /// Called by the controller before selection so batching can mutate
    /// queue marks.
    pub fn maybe_form_batch(&mut self, queue: &mut RequestQueue) {
        if !queue.is_empty() && queue.all_unbatched() {
            self.form_batch(queue);
        }
    }
}

impl Scheduler for ParBs {
    fn name(&self) -> &'static str {
        "PAR-BS"
    }

    fn clone_box(&self) -> Box<dyn Scheduler> {
        Box::new(self.clone())
    }

    fn prepare(&mut self, queue: &mut RequestQueue) {
        self.maybe_form_batch(queue);
    }

    // lint: hot-path
    fn select(&mut self, queue: &RequestQueue, view: &IssueView) -> Option<ReqId> {
        view.ready
            .iter()
            .min_by_key(|&&(h, hit)| {
                let p = queue.req(h);
                let rank = self
                    .rank
                    .get(p.request.thread)
                    .copied()
                    .unwrap_or(usize::MAX);
                (!p.batched, !hit, rank, p.arrival, p.request.id)
            })
            .map(|&(h, _)| h)
    }

    fn on_advance(&mut self, _from: Cycle, _to: Cycle) {}
}

/// ATLAS: least-attained-service thread ranking over long epochs — threads
/// that have received little memory service recently are prioritized.
#[derive(Debug, Clone)]
pub struct Atlas {
    attained: Vec<f64>,
    epoch_len: u64,
    last_epoch: u64,
    /// Exponential decay per epoch (the paper's α = 0.875).
    alpha: f64,
}

impl Atlas {
    /// Creates ATLAS for `threads` threads with the given epoch length in
    /// cycles.
    #[must_use]
    pub fn new(threads: usize, epoch_len: u64) -> Self {
        Atlas {
            attained: vec![0.0; threads],
            epoch_len: epoch_len.max(1),
            last_epoch: 0,
            alpha: 0.875,
        }
    }
}

impl Scheduler for Atlas {
    fn name(&self) -> &'static str {
        "ATLAS"
    }

    fn clone_box(&self) -> Box<dyn Scheduler> {
        Box::new(self.clone())
    }

    // lint: hot-path
    fn select(&mut self, queue: &RequestQueue, view: &IssueView) -> Option<ReqId> {
        view.ready
            .iter()
            .min_by_key(|&&(h, hit)| {
                let p = queue.req(h);
                // Order by attained service (scaled to integer for Ord),
                // then row hit, then age.
                let attained = self
                    .attained
                    .get(p.request.thread)
                    .copied()
                    .unwrap_or(f64::MAX);
                ((attained * 1000.0) as u64, !hit, p.arrival, p.request.id)
            })
            .map(|&(h, _)| h)
    }

    fn on_complete(&mut self, completed: &Completed, _now: Cycle) {
        if let Some(a) = self.attained.get_mut(completed.request.thread) {
            *a += 1.0;
        }
    }

    fn on_tick(&mut self, now: Cycle) {
        let epoch = now.as_u64() / self.epoch_len;
        if epoch > self.last_epoch {
            self.last_epoch = epoch;
            for a in &mut self.attained {
                *a *= self.alpha;
            }
        }
    }

    fn on_advance(&mut self, from: Cycle, to: Cycle) {
        if to <= from {
            return;
        }
        let first = from.as_u64() / self.epoch_len;
        let last = (to.as_u64() - 1) / self.epoch_len;
        let decays = epoch_crossings(first, last, self.last_epoch);
        if decays == 0 {
            return;
        }
        self.last_epoch = last;
        // One multiplication per crossed epoch, exactly as the per-cycle
        // ticks would apply it: repeated `*= alpha` is not bit-identical
        // to a single `powi`, and select() quantizes these floats.
        for _ in 0..decays {
            for a in &mut self.attained {
                *a *= self.alpha;
            }
        }
    }
}

/// Thread Cluster Memory scheduling: threads are split by memory intensity
/// into a latency-sensitive cluster (strictly prioritized) and a
/// bandwidth-heavy cluster (rank-shuffled for fairness).
#[derive(Debug, Clone)]
pub struct Tcm {
    /// Requests completed per thread in the current epoch.
    epoch_requests: Vec<u64>,
    /// Current cluster assignment: true = latency-sensitive.
    latency_cluster: Vec<bool>,
    /// Shuffled ranks for the bandwidth cluster.
    shuffle: Vec<usize>,
    epoch_len: u64,
    shuffle_len: u64,
    last_epoch: u64,
    last_shuffle: u64,
    /// Fraction of total traffic allowed into the latency cluster.
    cluster_fraction: f64,
}

impl Tcm {
    /// Creates TCM with the given clustering epoch and shuffle interval.
    #[must_use]
    pub fn new(threads: usize, epoch_len: u64, shuffle_len: u64) -> Self {
        Tcm {
            epoch_requests: vec![0; threads],
            latency_cluster: vec![true; threads],
            shuffle: (0..threads).collect(),
            epoch_len: epoch_len.max(1),
            shuffle_len: shuffle_len.max(1),
            last_epoch: 0,
            last_shuffle: 0,
            cluster_fraction: 0.2,
        }
    }

    fn recluster(&mut self) {
        let total: u64 = self.epoch_requests.iter().sum();
        if total == 0 {
            return;
        }
        // Least-intensive threads join the latency cluster until the
        // cluster holds `cluster_fraction` of traffic.
        let mut order: Vec<usize> = (0..self.epoch_requests.len()).collect();
        order.sort_by_key(|&t| self.epoch_requests[t]);
        let budget = (total as f64 * self.cluster_fraction) as u64;
        let mut used = 0u64;
        self.latency_cluster.iter_mut().for_each(|c| *c = false);
        for t in order {
            if used + self.epoch_requests[t] <= budget {
                used += self.epoch_requests[t];
                self.latency_cluster[t] = true;
            }
        }
        self.epoch_requests.iter_mut().for_each(|r| *r = 0);
    }
}

impl Scheduler for Tcm {
    fn name(&self) -> &'static str {
        "TCM"
    }

    fn clone_box(&self) -> Box<dyn Scheduler> {
        Box::new(self.clone())
    }

    // lint: hot-path
    fn select(&mut self, queue: &RequestQueue, view: &IssueView) -> Option<ReqId> {
        view.ready
            .iter()
            .min_by_key(|&&(h, hit)| {
                let p = queue.req(h);
                let t = p.request.thread;
                let latency = self.latency_cluster.get(t).copied().unwrap_or(false);
                let rank = self
                    .shuffle
                    .iter()
                    .position(|&x| x == t)
                    .unwrap_or(usize::MAX);
                (!latency, rank, !hit, p.arrival, p.request.id)
            })
            .map(|&(h, _)| h)
    }

    fn on_complete(&mut self, completed: &Completed, _now: Cycle) {
        if let Some(r) = self.epoch_requests.get_mut(completed.request.thread) {
            *r += 1;
        }
    }

    fn on_tick(&mut self, now: Cycle) {
        let epoch = now.as_u64() / self.epoch_len;
        if epoch > self.last_epoch {
            self.last_epoch = epoch;
            self.recluster();
        }
        let shuffle = now.as_u64() / self.shuffle_len;
        if shuffle > self.last_shuffle {
            self.last_shuffle = shuffle;
            self.shuffle.rotate_left(1);
        }
    }

    fn on_advance(&mut self, from: Cycle, to: Cycle) {
        if to <= from {
            return;
        }
        let from_c = from.as_u64();
        let last_c = to.as_u64() - 1;
        let last_epoch = last_c / self.epoch_len;
        if epoch_crossings(from_c / self.epoch_len, last_epoch, self.last_epoch) > 0 {
            self.last_epoch = last_epoch;
            // Only the first skipped boundary can do work: no completions
            // land mid-skip, so later reclusters would see zero traffic
            // and return unchanged.
            self.recluster();
        }
        let last_shuffle = last_c / self.shuffle_len;
        let rotations = epoch_crossings(from_c / self.shuffle_len, last_shuffle, self.last_shuffle);
        if rotations > 0 {
            self.last_shuffle = last_shuffle;
            let len = self.shuffle.len();
            if len > 0 {
                self.shuffle.rotate_left((rotations % len as u64) as usize);
            }
        }
    }
}

/// BLISS: blacklist any thread served four times consecutively; everyone
/// else outranks the blacklisted — "achieving high performance and
/// fairness at low cost" with two counters.
#[derive(Debug, Clone)]
pub struct Bliss {
    blacklist: HashSet<usize>,
    last_thread: Option<usize>,
    streak: u32,
    /// Streak length triggering blacklisting (paper: 4).
    threshold: u32,
    /// Blacklist clearing interval in cycles (paper: 10 000).
    clear_interval: u64,
    last_clear: u64,
}

impl Bliss {
    /// Creates BLISS with the published constants.
    #[must_use]
    pub fn new() -> Self {
        Bliss {
            blacklist: HashSet::new(),
            last_thread: None,
            streak: 0,
            threshold: 4,
            clear_interval: 10_000,
            last_clear: 0,
        }
    }

    /// Currently blacklisted threads (for inspection).
    #[must_use]
    pub fn blacklisted(&self) -> &HashSet<usize> {
        &self.blacklist
    }
}

impl Default for Bliss {
    fn default() -> Self {
        Bliss::new()
    }
}

impl Scheduler for Bliss {
    fn name(&self) -> &'static str {
        "BLISS"
    }

    fn clone_box(&self) -> Box<dyn Scheduler> {
        Box::new(self.clone())
    }

    // lint: hot-path
    fn select(&mut self, queue: &RequestQueue, view: &IssueView) -> Option<ReqId> {
        view.ready
            .iter()
            .min_by_key(|&&(h, hit)| {
                let p = queue.req(h);
                (
                    self.blacklist.contains(&p.request.thread),
                    !hit,
                    p.arrival,
                    p.request.id,
                )
            })
            .map(|&(h, _)| h)
    }

    fn on_complete(&mut self, completed: &Completed, _now: Cycle) {
        let t = completed.request.thread;
        if self.last_thread == Some(t) {
            self.streak += 1;
            if self.streak >= self.threshold {
                self.blacklist.insert(t);
            }
        } else {
            self.last_thread = Some(t);
            self.streak = 1;
        }
    }

    fn on_tick(&mut self, now: Cycle) {
        let window = now.as_u64() / self.clear_interval;
        if window > self.last_clear {
            self.last_clear = window;
            self.blacklist.clear();
            self.streak = 0;
        }
    }

    fn on_advance(&mut self, from: Cycle, to: Cycle) {
        if to <= from {
            return;
        }
        let first = from.as_u64() / self.clear_interval;
        let last = (to.as_u64() - 1) / self.clear_interval;
        if epoch_crossings(first, last, self.last_clear) > 0 {
            // Clearing twice is clearing once: nothing repopulates the
            // blacklist mid-skip.
            self.last_clear = last;
            self.blacklist.clear();
            self.streak = 0;
        }
    }
}

/// Extension trait giving [`Pending`]'s location a flat per-channel bank
/// key for batching maps.
///
/// [`Pending`]: crate::request::Pending
trait FlatBankKey {
    fn flat_bank_key(&self) -> usize;
}

impl FlatBankKey for ia_dram::Location {
    fn flat_bank_key(&self) -> usize {
        (self.rank << 16) | (self.bank_group << 8) | self.bank
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::ViewMode;
    use crate::request::{MemRequest, Pending};
    use ia_dram::{DramConfig, DramModule, PhysAddr};

    fn dram() -> DramModule {
        DramModule::new(DramConfig::ddr3_1600()).unwrap()
    }

    fn pending(id: u64, addr: u64, thread: usize, arrival: u64, dram: &DramModule) -> Pending {
        Pending {
            request: MemRequest {
                id,
                ..MemRequest::read(addr, thread)
            },
            loc: dram.decode(PhysAddr::new(addr)),
            arrival: Cycle::new(arrival),
            batched: false,
            started: false,
        }
    }

    fn queue_of(d: &DramModule, ps: &[Pending]) -> RequestQueue {
        let mut q = RequestQueue::new();
        for &p in ps {
            q.insert(p, d);
        }
        q
    }

    fn full_view(q: &mut RequestQueue, d: &DramModule, now: Cycle) -> IssueView {
        let mut v = IssueView::default();
        q.build_view(d, now, ViewMode::Full, &mut v);
        v
    }

    #[test]
    fn parbs_batches_and_ranks_shortest_job_first() {
        let d = dram();
        let mut queue = queue_of(
            &d,
            &[
                pending(1, 0, 0, 0, &d),
                pending(2, 64, 0, 1, &d),
                pending(3, 128, 0, 2, &d),
                pending(4, 1 << 20, 1, 3, &d),
            ],
        );
        let mut parbs = ParBs::new(2);
        parbs.maybe_form_batch(&mut queue);
        assert!(queue.iter().all(|(_, p)| p.batched));
        // Thread 1 has fewer requests → better rank.
        assert!(parbs.rank[1] < parbs.rank[0]);
        let view = full_view(&mut queue, &d, Cycle::new(1000));
        let pick = parbs.select(&queue, &view).unwrap();
        assert_eq!(
            queue.req(pick).request.thread,
            1,
            "shortest job served first"
        );
    }

    #[test]
    fn parbs_serves_batch_before_new_arrivals() {
        let d = dram();
        let mut queue = queue_of(&d, &[pending(1, 0, 0, 0, &d)]);
        let mut parbs = ParBs::new(2);
        parbs.maybe_form_batch(&mut queue);
        // A newer unbatched request from another thread arrives.
        queue.insert(pending(2, 1 << 20, 1, 50, &d), &d);
        let view = full_view(&mut queue, &d, Cycle::new(1000));
        let pick = parbs.select(&queue, &view).unwrap();
        assert_eq!(
            queue.req(pick).request.id,
            1,
            "batched request outranks unbatched"
        );
    }

    #[test]
    fn atlas_prioritizes_least_attained_service() {
        let d = dram();
        let mut atlas = Atlas::new(2, 1000);
        // Thread 0 has received lots of service.
        for _ in 0..50 {
            atlas.on_complete(
                &Completed {
                    request: MemRequest::read(0, 0),
                    arrival: Cycle::ZERO,
                    finished: Cycle::new(10),
                },
                Cycle::new(10),
            );
        }
        let mut queue = queue_of(
            &d,
            &[pending(1, 0, 0, 0, &d), pending(2, 1 << 20, 1, 90, &d)],
        );
        let view = full_view(&mut queue, &d, Cycle::new(1000));
        let pick = atlas.select(&queue, &view).unwrap();
        assert_eq!(
            queue.req(pick).request.thread,
            1,
            "starved thread outranks heavy thread"
        );
    }

    #[test]
    fn atlas_decays_attained_service_each_epoch() {
        let mut atlas = Atlas::new(1, 100);
        atlas.on_complete(
            &Completed {
                request: MemRequest::read(0, 0),
                arrival: Cycle::ZERO,
                finished: Cycle::new(1),
            },
            Cycle::new(1),
        );
        let before = atlas.attained[0];
        atlas.on_tick(Cycle::new(250));
        assert!(atlas.attained[0] < before);
    }

    #[test]
    fn tcm_clusters_low_intensity_threads_as_latency_sensitive() {
        let d = dram();
        let mut tcm = Tcm::new(2, 100, 50);
        // Thread 1 is a bandwidth hog this epoch.
        for i in 0..100 {
            tcm.on_complete(
                &Completed {
                    request: MemRequest::read(0, 1),
                    arrival: Cycle::ZERO,
                    finished: Cycle::new(i),
                },
                Cycle::new(i),
            );
        }
        for i in 0..3 {
            tcm.on_complete(
                &Completed {
                    request: MemRequest::read(0, 0),
                    arrival: Cycle::ZERO,
                    finished: Cycle::new(i),
                },
                Cycle::new(i),
            );
        }
        tcm.on_tick(Cycle::new(150)); // epoch boundary → recluster
        assert!(tcm.latency_cluster[0]);
        assert!(!tcm.latency_cluster[1]);
        let mut queue = queue_of(
            &d,
            &[pending(1, 0, 1, 0, &d), pending(2, 1 << 20, 0, 90, &d)],
        );
        let view = full_view(&mut queue, &d, Cycle::new(1000));
        let pick = tcm.select(&queue, &view).unwrap();
        assert_eq!(queue.req(pick).request.thread, 0, "latency cluster wins");
    }

    #[test]
    fn bliss_blacklists_streaks_and_clears() {
        let d = dram();
        let mut bliss = Bliss::new();
        for i in 0..4 {
            bliss.on_complete(
                &Completed {
                    request: MemRequest::read(0, 0),
                    arrival: Cycle::ZERO,
                    finished: Cycle::new(i),
                },
                Cycle::new(i),
            );
        }
        assert!(bliss.blacklisted().contains(&0));
        let mut queue = queue_of(
            &d,
            &[pending(1, 0, 0, 0, &d), pending(2, 1 << 20, 1, 90, &d)],
        );
        let view = full_view(&mut queue, &d, Cycle::new(1000));
        let pick = bliss.select(&queue, &view).unwrap();
        assert_eq!(
            queue.req(pick).request.thread,
            1,
            "non-blacklisted thread wins"
        );
        // Clearing interval resets the blacklist.
        bliss.on_tick(Cycle::new(20_000));
        assert!(bliss.blacklisted().is_empty());
    }

    #[test]
    fn scheduler_names() {
        assert_eq!(ParBs::new(1).name(), "PAR-BS");
        assert_eq!(Atlas::new(1, 1).name(), "ATLAS");
        assert_eq!(Tcm::new(1, 1, 1).name(), "TCM");
        assert_eq!(Bliss::new().name(), "BLISS");
    }
}
