//! Multi-programmed performance and fairness metrics, as defined in the
//! scheduling literature (weighted speedup, harmonic speedup, maximum
//! slowdown).

use crate::controller::RunReport;

/// Per-thread slowdowns: `shared_time / alone_time` for each thread, where
/// times are the cycles needed to complete the thread's request stream.
///
/// Threads that completed nothing get a slowdown of `f64::INFINITY`.
#[must_use]
pub fn slowdowns(alone_finish: &[u64], shared: &RunReport) -> Vec<f64> {
    shared
        .threads
        .iter()
        .zip(alone_finish)
        .map(|(t, &alone)| {
            if t.finish == 0 || alone == 0 {
                f64::INFINITY
            } else {
                t.finish as f64 / alone as f64
            }
        })
        .collect()
}

/// Weighted speedup: Σ (alone_time / shared_time), the standard system
/// throughput metric (higher is better; max = thread count).
#[must_use]
pub fn weighted_speedup(alone_finish: &[u64], shared: &RunReport) -> f64 {
    slowdowns(alone_finish, shared)
        .iter()
        .map(|s| {
            if s.is_finite() && *s > 0.0 {
                1.0 / s
            } else {
                0.0
            }
        })
        .sum()
}

/// Maximum slowdown: the unfairness metric (lower is better; 1.0 = no
/// interference).
#[must_use]
pub fn max_slowdown(alone_finish: &[u64], shared: &RunReport) -> f64 {
    slowdowns(alone_finish, shared)
        .into_iter()
        .fold(1.0, f64::max)
}

/// Harmonic mean of speedups: balances fairness and throughput.
#[must_use]
pub fn harmonic_speedup(alone_finish: &[u64], shared: &RunReport) -> f64 {
    let s = slowdowns(alone_finish, shared);
    let n = s.len() as f64;
    let denom: f64 = s.iter().map(|x| if x.is_finite() { *x } else { 1e9 }).sum();
    if denom == 0.0 {
        0.0
    } else {
        n / denom
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::{CtrlStats, ThreadReport};

    fn report(finishes: &[u64]) -> RunReport {
        RunReport {
            scheduler: "test".into(),
            cycles: *finishes.iter().max().unwrap_or(&0),
            threads: finishes
                .iter()
                .map(|&f| ThreadReport {
                    completed: 10,
                    avg_latency: 10.0,
                    finish: f,
                })
                .collect(),
            stats: CtrlStats::default(),
            row_hit_rate: 0.0,
            charge_cache_hit_rate: 0.0,
            dynamic_energy_pj: 0.0,
            io_energy_pj: 0.0,
            engine: ia_sim::EngineStats::default(),
            reliability: None,
            trace: None,
        }
    }

    #[test]
    fn no_interference_means_unity() {
        let alone = [100, 200];
        let shared = report(&[100, 200]);
        assert!((weighted_speedup(&alone, &shared) - 2.0).abs() < 1e-12);
        assert!((max_slowdown(&alone, &shared) - 1.0).abs() < 1e-12);
        assert!((harmonic_speedup(&alone, &shared) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn interference_shows_in_metrics() {
        let alone = [100, 100];
        let shared = report(&[200, 400]);
        let ws = weighted_speedup(&alone, &shared);
        assert!((ws - 0.75).abs() < 1e-12, "1/2 + 1/4");
        assert!((max_slowdown(&alone, &shared) - 4.0).abs() < 1e-12);
        let slow = slowdowns(&alone, &shared);
        assert_eq!(slow, vec![2.0, 4.0]);
    }

    #[test]
    fn incomplete_thread_is_infinite_slowdown() {
        let alone = [100];
        let shared = report(&[0]);
        assert!(slowdowns(&alone, &shared)[0].is_infinite());
        assert_eq!(weighted_speedup(&alone, &shared), 0.0);
    }
}
