//! Hybrid DRAM + PCM main memory (Qureshi+ ISCA 2009; Yoon+ ICCD 2012):
//! a small fast DRAM tier in front of a large slow non-volatile tier, with
//! either LRU or row-buffer-locality-aware (RBLA) placement.
//!
//! The data-centric argument: PCM offers capacity at low cost but slow,
//! write-limited cells; an intelligent controller places in DRAM exactly
//! the pages whose access pattern suffers most on PCM (those with poor
//! row-buffer locality — PCM row hits are nearly as fast as DRAM).

use std::collections::HashMap;

use crate::error::CtrlError;

/// Relative access costs of the two tiers, in controller cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HybridTiming {
    /// DRAM access (row miss).
    pub dram_miss: u64,
    /// DRAM row hit.
    pub dram_hit: u64,
    /// PCM array read (row miss): ~4x DRAM.
    pub pcm_read_miss: u64,
    /// PCM row hit: comparable to DRAM (row buffer is SRAM/DRAM-like).
    pub pcm_hit: u64,
    /// PCM array write (row miss): ~8-12x DRAM.
    pub pcm_write_miss: u64,
    /// Page migration cost (copy a page between tiers).
    pub migration: u64,
}

impl Default for HybridTiming {
    fn default() -> Self {
        HybridTiming {
            dram_miss: 50,
            dram_hit: 15,
            pcm_read_miss: 200,
            pcm_hit: 18,
            pcm_write_miss: 500,
            migration: 1000,
        }
    }
}

/// Placement policy for the DRAM tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PlacementPolicy {
    /// Cache the most-recently-used pages (conventional DRAM cache).
    Lru,
    /// Row-Buffer-Locality-Aware: only promote pages that keep *missing*
    /// the row buffer (pages with good locality run fine from PCM).
    Rbla {
        /// Row-buffer misses on PCM before a page is promoted.
        miss_threshold: u32,
    },
}

/// A page-granularity hybrid-memory model.
///
/// # Examples
///
/// ```
/// use ia_memctrl::{HybridMemory, HybridTiming, PlacementPolicy};
/// let mut mem = HybridMemory::new(16, 4096, HybridTiming::default(),
///     PlacementPolicy::Rbla { miss_threshold: 2 })?;
/// let cost = mem.access(0x1000, false);
/// assert!(cost > 0);
/// # Ok::<(), ia_memctrl::CtrlError>(())
/// ```
#[derive(Debug, Clone)]
pub struct HybridMemory {
    dram_capacity_pages: usize,
    page_bytes: u64,
    timing: HybridTiming,
    policy: PlacementPolicy,
    /// Pages resident in DRAM: page → last-use stamp.
    dram: HashMap<u64, u64>,
    /// PCM row-buffer: last open page per (implicit single) bank region.
    open_pcm_page: Option<u64>,
    open_dram_page: Option<u64>,
    /// RBLA: row-miss counters per PCM page.
    miss_counts: HashMap<u64, u32>,
    clock: u64,
    /// Total cycles spent serving accesses.
    pub total_cycles: u64,
    /// Accesses served from DRAM.
    pub dram_hits: u64,
    /// Accesses served from PCM.
    pub pcm_accesses: u64,
    /// Pages migrated into DRAM.
    pub migrations: u64,
}

impl HybridMemory {
    /// Creates a hybrid memory with a DRAM tier of `dram_capacity_pages`.
    ///
    /// # Errors
    ///
    /// Returns [`CtrlError::Invalid`] on zero capacity or page size.
    pub fn new(
        dram_capacity_pages: usize,
        page_bytes: u64,
        timing: HybridTiming,
        policy: PlacementPolicy,
    ) -> Result<Self, CtrlError> {
        if dram_capacity_pages == 0 || page_bytes == 0 {
            return Err(CtrlError::Invalid(
                "hybrid memory needs capacity and page size",
            ));
        }
        Ok(HybridMemory {
            dram_capacity_pages,
            page_bytes,
            timing,
            policy,
            dram: HashMap::new(),
            open_pcm_page: None,
            open_dram_page: None,
            miss_counts: HashMap::new(),
            clock: 0,
            total_cycles: 0,
            dram_hits: 0,
            pcm_accesses: 0,
            migrations: 0,
        })
    }

    fn promote(&mut self, page: u64) {
        if self.dram.len() >= self.dram_capacity_pages {
            // Evict the LRU DRAM page.
            if let Some((&victim, _)) = self.dram.iter().min_by_key(|(_, &stamp)| stamp) {
                self.dram.remove(&victim);
            }
        }
        self.dram.insert(page, self.clock);
        self.miss_counts.remove(&page);
        self.migrations += 1;
        self.total_cycles += self.timing.migration;
    }

    /// Accesses `addr` (`write` = store). Returns the access cost in
    /// cycles and updates placement state.
    pub fn access(&mut self, addr: u64, write: bool) -> u64 {
        self.clock += 1;
        let page = addr / self.page_bytes;
        let cost = if self.dram.contains_key(&page) {
            self.dram.insert(page, self.clock);
            self.dram_hits += 1;
            let hit = self.open_dram_page == Some(page);
            self.open_dram_page = Some(page);
            if hit {
                self.timing.dram_hit
            } else {
                self.timing.dram_miss
            }
        } else {
            self.pcm_accesses += 1;
            let hit = self.open_pcm_page == Some(page);
            self.open_pcm_page = Some(page);
            let cost = match (hit, write) {
                (true, _) => self.timing.pcm_hit,
                (false, false) => self.timing.pcm_read_miss,
                (false, true) => self.timing.pcm_write_miss,
            };
            match self.policy {
                PlacementPolicy::Lru => self.promote(page),
                PlacementPolicy::Rbla { miss_threshold } => {
                    if !hit {
                        let c = self.miss_counts.entry(page).or_insert(0);
                        *c += 1;
                        if *c >= miss_threshold {
                            self.promote(page);
                        }
                    }
                }
            }
            cost
        };
        self.total_cycles += cost;
        cost
    }

    /// Mean cycles per access so far.
    #[must_use]
    pub fn avg_cost(&self) -> f64 {
        let n = self.dram_hits + self.pcm_accesses;
        if n == 0 {
            0.0
        } else {
            self.total_cycles as f64 / n as f64
        }
    }

    /// Fraction of accesses served by the DRAM tier.
    #[must_use]
    pub fn dram_serve_rate(&self) -> f64 {
        let n = self.dram_hits + self.pcm_accesses;
        if n == 0 {
            0.0
        } else {
            self.dram_hits as f64 / n as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(policy: PlacementPolicy) -> HybridMemory {
        HybridMemory::new(4, 4096, HybridTiming::default(), policy).unwrap()
    }

    #[test]
    fn construction_validates() {
        assert!(HybridMemory::new(0, 4096, HybridTiming::default(), PlacementPolicy::Lru).is_err());
        assert!(HybridMemory::new(4, 0, HybridTiming::default(), PlacementPolicy::Lru).is_err());
    }

    #[test]
    fn first_access_hits_pcm_then_dram_after_promotion() {
        let mut m = mk(PlacementPolicy::Lru);
        let c1 = m.access(0, false);
        assert_eq!(c1, HybridTiming::default().pcm_read_miss);
        let c2 = m.access(0, false);
        assert!(
            c2 <= HybridTiming::default().dram_miss,
            "promoted page serves from DRAM"
        );
        assert_eq!(m.migrations, 1);
    }

    #[test]
    fn lru_capacity_evicts() {
        let mut m = mk(PlacementPolicy::Lru);
        for p in 0..6u64 {
            m.access(p * 4096, false);
        }
        assert!(m.dram.len() <= 4);
    }

    #[test]
    fn rbla_does_not_promote_high_locality_pages() {
        let mut m = mk(PlacementPolicy::Rbla { miss_threshold: 3 });
        // Repeated access to the same page: one PCM row miss then hits.
        for _ in 0..10 {
            m.access(0, false);
        }
        assert_eq!(m.migrations, 0, "row-hit-friendly page stays in PCM");
        assert!(m.avg_cost() < HybridTiming::default().pcm_read_miss as f64);
    }

    #[test]
    fn rbla_promotes_row_missing_pages() {
        let mut m = mk(PlacementPolicy::Rbla { miss_threshold: 2 });
        // Alternate two pages: every access is a PCM row miss.
        for _ in 0..4 {
            m.access(0, false);
            m.access(8192, false);
        }
        assert!(m.migrations >= 1, "thrashing pages must be promoted");
    }

    #[test]
    fn writes_cost_more_on_pcm() {
        let mut m = mk(PlacementPolicy::Rbla {
            miss_threshold: 100,
        });
        let r = m.access(0, false);
        let w = m.access(8192, true);
        assert!(w > r);
    }

    #[test]
    fn rates_and_averages() {
        let mut m = mk(PlacementPolicy::Lru);
        assert_eq!(m.avg_cost(), 0.0);
        assert_eq!(m.dram_serve_rate(), 0.0);
        m.access(0, false);
        m.access(0, false);
        assert!(m.dram_serve_rate() > 0.0);
        assert!(m.avg_cost() > 0.0);
    }
}
