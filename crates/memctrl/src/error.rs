//! Error type for the memory controller.

use std::error::Error;
use std::fmt;

use ia_dram::ConfigError;

/// Controller-level failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CtrlError {
    /// The request queue is at capacity.
    QueueFull,
    /// A run harness was given an empty trace.
    EmptyTrace,
    /// Underlying DRAM configuration error.
    Config(ConfigError),
    /// Invalid argument.
    Invalid(&'static str),
    /// The simulation engine's watchdog detected a component that
    /// stopped making forward progress.
    Stalled(ia_sim::StallReport),
}

impl fmt::Display for CtrlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CtrlError::QueueFull => f.write_str("request queue is full")?,
            CtrlError::EmptyTrace => f.write_str("trace must contain at least one request")?,
            CtrlError::Config(e) => write!(f, "dram configuration error: {e}")?,
            CtrlError::Invalid(msg) => f.write_str(msg)?,
            CtrlError::Stalled(report) => write!(f, "{report}")?,
        }
        // When a record/replay or fuzz session is active, every failure
        // message cites the artifact and seed that reproduce it.
        f.write_str(&crate::replay::context_suffix())
    }
}

impl Error for CtrlError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            CtrlError::Config(e) => Some(e),
            _ => None,
        }
    }
}

impl From<ConfigError> for CtrlError {
    fn from(e: ConfigError) -> Self {
        CtrlError::Config(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_and_source() {
        fn check<T: Error + Send + Sync>() {}
        check::<CtrlError>();
        assert!(!CtrlError::QueueFull.to_string().is_empty());
        assert!(!CtrlError::EmptyTrace.to_string().is_empty());
        assert!(!CtrlError::Invalid("x").to_string().is_empty());
    }
}
