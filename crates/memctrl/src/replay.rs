//! Record/replay glue: conversions between controller workloads and the
//! `ia-tracefmt` IR, plus the process-global replay context that failure
//! reports cite.
//!
//! The context exists for one reason: when a replayed or fuzzed run
//! fails (a watchdog stall, an oracle violation), the error message must
//! carry enough to reproduce it — the trace artifact driving the run and
//! the fault-plan seed perturbing it. [`CtrlError`](crate::CtrlError)'s
//! `Display` appends the active context automatically, so every consumer
//! of the error string gets the repro pointer for free.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, PoisonError};

use ia_dram::AccessKind;
use ia_tracefmt::{TraceOp, TraceRecord, TraceWriter};

use crate::MemRequest;

/// What is driving the current run, for error attribution.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ReplayContext {
    /// Path of the trace artifact being replayed (or recorded).
    pub trace_path: Option<String>,
    /// Seed of the fault plan injected into the run, if any.
    pub fault_seed: Option<u64>,
}

impl ReplayContext {
    fn is_empty(&self) -> bool {
        self.trace_path.is_none() && self.fault_seed.is_none()
    }
}

static CONTEXT_SET: AtomicBool = AtomicBool::new(false);
static CONTEXT: Mutex<Option<ReplayContext>> = Mutex::new(None);

/// Installs the process-wide replay context. Pass what is known — a
/// trace path, a fault seed, or both; an all-`None` context clears.
pub fn set_replay_context(ctx: ReplayContext) {
    let empty = ctx.is_empty();
    *CONTEXT.lock().unwrap_or_else(PoisonError::into_inner) = if empty { None } else { Some(ctx) };
    CONTEXT_SET.store(!empty, Ordering::Release);
}

/// Clears the replay context.
pub fn clear_replay_context() {
    set_replay_context(ReplayContext::default());
}

/// The active replay context, if one is installed.
#[must_use]
pub fn replay_context() -> Option<ReplayContext> {
    if !CONTEXT_SET.load(Ordering::Acquire) {
        return None;
    }
    CONTEXT
        .lock()
        .unwrap_or_else(PoisonError::into_inner)
        .clone()
}

/// The suffix error displays append: empty when no context is set. The
/// atomic fast path keeps the default (no record/replay) error path free
/// of lock traffic.
pub(crate) fn context_suffix() -> String {
    let Some(ctx) = replay_context() else {
        return String::new();
    };
    let mut out = String::from(" [");
    if let Some(path) = &ctx.trace_path {
        out.push_str("trace: ");
        out.push_str(path);
    }
    if let Some(seed) = ctx.fault_seed {
        if ctx.trace_path.is_some() {
            out.push_str("; ");
        }
        out.push_str(&format!("fault seed: {seed:#x}"));
    }
    out.push(']');
    out
}

/// Records a per-thread controller workload into `w`: `stream` = thread
/// index, `at` = the caller-chosen segment tag (the bench session uses
/// it to delimit successive workloads in one file). The inverse is
/// [`workload_from_records`].
pub fn record_workload(traces: &[Vec<MemRequest>], at: u64, w: &mut TraceWriter) {
    for (thread, list) in traces.iter().enumerate() {
        for req in list {
            let op = match req.kind {
                AccessKind::Read => TraceOp::Read,
                AccessKind::Write => TraceOp::Write,
            };
            w.push(&TraceRecord::new(req.addr.as_u64(), op, thread as u32, at));
        }
    }
}

/// Rebuilds a per-thread workload from decoded records: requests group
/// by `stream` (one `Vec` per stream id up to the maximum present),
/// preserving record order within each thread.
#[must_use]
pub fn workload_from_records(records: &[TraceRecord]) -> Vec<Vec<MemRequest>> {
    let threads = records
        .iter()
        .map(|r| r.stream as usize + 1)
        .max()
        .unwrap_or(0);
    let mut out = vec![Vec::new(); threads];
    for rec in records {
        let req = match rec.op {
            TraceOp::Read => MemRequest::read(rec.addr, rec.stream as usize),
            TraceOp::Write => MemRequest::write(rec.addr, rec.stream as usize),
        };
        out[rec.stream as usize].push(req);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_round_trips_through_the_ir() {
        let traces = vec![
            vec![MemRequest::read(0x1000, 0), MemRequest::write(0x1040, 0)],
            vec![MemRequest::read(0x2000, 1)],
        ];
        let mut w = TraceWriter::new(3);
        record_workload(&traces, 7, &mut w);
        let reader = ia_tracefmt::TraceReader::from_bytes(&w.finish()).unwrap();
        assert!(reader.records().iter().all(|r| r.at == 7));
        let back = workload_from_records(reader.records());
        // `id` is assigned on enqueue, so fresh requests compare equal.
        assert_eq!(back, traces);
    }

    #[test]
    fn context_suffix_reflects_what_is_set() {
        // This single test owns the global context (tests run in
        // parallel threads); start clean and leave clean.
        clear_replay_context();
        assert_eq!(context_suffix(), "");
        assert!(replay_context().is_none());

        set_replay_context(ReplayContext {
            trace_path: Some("runs/exp05.trace".into()),
            fault_seed: None,
        });
        assert_eq!(context_suffix(), " [trace: runs/exp05.trace]");

        set_replay_context(ReplayContext {
            trace_path: Some("f.trace".into()),
            fault_seed: Some(0xBEEF),
        });
        assert_eq!(context_suffix(), " [trace: f.trace; fault seed: 0xbeef]");

        set_replay_context(ReplayContext {
            trace_path: None,
            fault_seed: Some(5),
        });
        assert_eq!(context_suffix(), " [fault seed: 0x5]");

        // Errors carry the context while it is installed.
        set_replay_context(ReplayContext {
            trace_path: Some("repro.trace".into()),
            fault_seed: Some(1),
        });
        assert_eq!(
            crate::CtrlError::QueueFull.to_string(),
            "request queue is full [trace: repro.trace; fault seed: 0x1]"
        );

        clear_replay_context();
        assert_eq!(context_suffix(), "");
        assert_eq!(
            crate::CtrlError::QueueFull.to_string(),
            "request queue is full"
        );
    }
}
