//! The memory controller: request queue, scheduler invocation, refresh
//! engine, and a closed-loop multi-programmed run harness.
//!
//! The controller implements [`ia_sim::Clocked`], so the event-driven
//! [`SimLoop`] can cycle-skip over idle spans (refresh gaps, long DRAM
//! timing waits) with results numerically identical to per-cycle polling
//! — see `crates/sim/src/lib.rs` for the contract and
//! [`run_closed_loop_per_cycle`] for the differential-testing oracle.

use std::fmt;

use ia_dram::{Command, ConfigError, Cycle, DramConfig, DramModule};
use ia_reliability::Raidr;
use ia_sim::{Clocked, CompletionSink, EngineStats, SimLoop, StepOutcome};
use ia_telemetry::{Histogram, MetricSource, Scope, TraceBuffer};
use ia_trace::{TraceLog, Tracer};

use crate::error::CtrlError;
use crate::pool::{IssueView, RequestQueue, ViewMode};
use crate::reliability::{ReliabilityPipeline, ReliabilityReport};
use crate::request::{Completed, MemRequest, Pending};
use crate::scheduler::Scheduler;

/// One scheduler decision as captured by the controller's trace buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SchedEvent {
    /// Cycle of the decision.
    pub at: Cycle,
    /// Id of the request the command serves.
    pub request: u64,
    /// Thread that issued the request.
    pub thread: usize,
    /// The DRAM command issued on its behalf.
    pub cmd: Command,
}

/// How the controller refreshes the devices.
#[derive(Debug, Clone)]
pub enum RefreshMode {
    /// No refresh (short simulations where retention is out of scope).
    Disabled,
    /// Standard auto-refresh: one REF per rank every tREFI.
    AllBank,
    /// RAIDR retention-aware refresh: REF slots are skipped for windows in
    /// which the corresponding row bins do not need service.
    Raidr(Raidr),
}

#[derive(Debug, Clone)]
struct RefreshEngine {
    mode: RefreshMode,
    next_at: Cycle,
    t_refi: u64,
    /// REF slots per 64 ms retention window.
    slots_per_window: u64,
    slot: u64,
    window: u64,
    /// Slots to actually issue this window (RAIDR skips the rest).
    issue_slots: u64,
    /// Total REF commands issued / skipped.
    issued: u64,
    skipped: u64,
}

impl RefreshEngine {
    fn new(mode: RefreshMode, config: &DramConfig) -> Self {
        let t_refi = config.timing.t_refi;
        let window_cycles = (64_000_000.0 / config.timing.tck_ns()) as u64;
        let slots_per_window = (window_cycles / t_refi).max(1);
        let mut engine = RefreshEngine {
            mode,
            next_at: Cycle::new(t_refi),
            t_refi,
            slots_per_window,
            slot: 0,
            window: 0,
            issue_slots: slots_per_window,
            issued: 0,
            skipped: 0,
        };
        engine.recompute_window();
        engine
    }

    fn recompute_window(&mut self) {
        self.issue_slots = match &self.mode {
            RefreshMode::Disabled => 0,
            RefreshMode::AllBank => self.slots_per_window,
            RefreshMode::Raidr(raidr) => {
                // Slots proportional to the fraction of rows whose bin is
                // due in this window.
                let rows = raidr.baseline_refreshes_over(1);
                let needed = raidr.refreshes_over_window(self.window);
                ((needed as f64 / rows as f64) * self.slots_per_window as f64).ceil() as u64
            }
        };
    }

    /// Returns true if a REF must be issued at `now`.
    fn due(&self, now: Cycle) -> Option<bool> {
        if matches!(self.mode, RefreshMode::Disabled) {
            return None;
        }
        (now >= self.next_at).then_some(self.slot < self.issue_slots)
    }

    fn advance(&mut self, issued: bool) {
        if issued {
            self.issued += 1;
        } else {
            self.skipped += 1;
        }
        self.next_at += self.t_refi;
        self.slot += 1;
        if self.slot >= self.slots_per_window {
            self.slot = 0;
            self.window += 1;
            self.recompute_window();
        }
    }
}

/// Extension used by the refresh engine to ask RAIDR how many row
/// refreshes a single 64 ms window needs.
trait RaidrWindow {
    fn refreshes_over_window(&self, window: u64) -> u64;
}

impl RaidrWindow for Raidr {
    fn refreshes_over_window(&self, window: u64) -> u64 {
        let rows = self.baseline_refreshes_over(1);
        (0..rows).filter(|&r| self.needs_refresh(r, window)).count() as u64
    }
}

/// Controller-level statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CtrlStats {
    /// Requests completed.
    pub completed: u64,
    /// Sum of request latencies (cycles).
    pub total_latency: u64,
    /// Refresh commands issued.
    pub refreshes_issued: u64,
    /// Refresh slots skipped (RAIDR).
    pub refreshes_skipped: u64,
    /// Cycles in which a column command issued (bus utilization).
    pub busy_cycles: u64,
}

impl CtrlStats {
    /// Mean request latency in cycles.
    #[must_use]
    pub fn avg_latency(&self) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.completed as f64
        }
    }

    /// Merges another counter set into this one (e.g. to aggregate the
    /// stats of several controllers or epochs).
    pub fn merge(&mut self, other: &CtrlStats) {
        self.completed += other.completed;
        self.total_latency += other.total_latency;
        self.refreshes_issued += other.refreshes_issued;
        self.refreshes_skipped += other.refreshes_skipped;
        self.busy_cycles += other.busy_cycles;
    }
}

impl fmt::Display for CtrlStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} completed, avg latency {:.1} cyc | REF {} issued / {} skipped | {} busy cycles",
            self.completed,
            self.avg_latency(),
            self.refreshes_issued,
            self.refreshes_skipped,
            self.busy_cycles
        )
    }
}

impl MetricSource for CtrlStats {
    fn export_into(&self, scope: &mut Scope<'_>) {
        scope.set_counter("completed", self.completed);
        scope.set_counter("total_latency", self.total_latency);
        scope.set_counter("refreshes_issued", self.refreshes_issued);
        scope.set_counter("refreshes_skipped", self.refreshes_skipped);
        scope.set_counter("busy_cycles", self.busy_cycles);
        scope.set_gauge("avg_latency", self.avg_latency());
    }
}

/// A single-module memory controller driving [`DramModule`] through a
/// pluggable [`Scheduler`].
///
/// # Examples
///
/// ```
/// use ia_dram::DramConfig;
/// use ia_memctrl::{FrFcfs, MemRequest, MemoryController};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut ctrl = MemoryController::new(DramConfig::ddr3_1600(), Box::new(FrFcfs::new()))?;
/// ctrl.enqueue(MemRequest::read(0x1000, 0))?;
/// let done = ctrl.run_until_drained(100_000);
/// assert_eq!(done.len(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct MemoryController {
    dram: DramModule,
    scheduler: Box<dyn Scheduler>,
    queue: RequestQueue,
    /// Reused per-cycle scheduling view (capacity persists across ticks).
    view: IssueView,
    inflight: Vec<(Pending, Cycle)>,
    now: Cycle,
    next_id: u64,
    queue_capacity: usize,
    refresh: RefreshEngine,
    stats: CtrlStats,
    latency: Histogram,
    queue_depth: Histogram,
    sched_column: u64,
    sched_prep: u64,
    sched_idle: u64,
    engine: EngineStats,
    trace: TraceBuffer<SchedEvent>,
    /// Cycle-attribution tracer (track `"ctrl"`): every simulated cycle
    /// is classified into exactly one phase, so the profile partition
    /// sums to the run's total cycles. Disabled by default — each trace
    /// point costs one branch.
    tracer: Tracer,
    reliability: Option<ReliabilityPipeline>,
    /// True when the last tick was provably idle (nothing retired, issued,
    /// or refreshed) and nothing has been enqueued since. Gates the full
    /// timing scan in `next_event_at`: while work is flowing, the next
    /// event is simply "now", and computing anything more precise costs
    /// more than it saves.
    quiet: bool,
    /// True when the most recent tick validated the queue's per-bank
    /// tags (i.e. built a non-[`ViewMode::Skip`] view). Gates the
    /// O(occupied-banks) timing bound in `next_event_at`; Skip-mode
    /// schedulers fall back to the per-request scan.
    tags_current: bool,
}

impl MemoryController {
    /// Creates a controller over a fresh DRAM module.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the DRAM configuration is invalid.
    pub fn new(config: DramConfig, scheduler: Box<dyn Scheduler>) -> Result<Self, ConfigError> {
        let refresh = RefreshEngine::new(RefreshMode::Disabled, &config);
        Ok(MemoryController {
            dram: DramModule::new(config)?,
            scheduler,
            queue: RequestQueue::new(),
            view: IssueView::default(),
            inflight: Vec::new(),
            now: Cycle::ZERO,
            next_id: 1,
            queue_capacity: 64,
            refresh,
            stats: CtrlStats::default(),
            latency: Histogram::new(),
            queue_depth: Histogram::new(),
            sched_column: 0,
            sched_prep: 0,
            sched_idle: 0,
            engine: EngineStats::default(),
            trace: TraceBuffer::disabled(),
            tracer: Tracer::disabled(),
            reliability: None,
            quiet: false,
            tags_current: false,
        })
    }

    /// Sets the refresh mode (chainable).
    #[must_use]
    pub fn with_refresh_mode(mut self, mode: RefreshMode) -> Self {
        self.refresh = RefreshEngine::new(mode, self.dram.config());
        self
    }

    /// Sets the request-queue capacity (chainable).
    #[must_use]
    pub fn with_queue_capacity(mut self, capacity: usize) -> Self {
        self.queue_capacity = capacity.max(1);
        self
    }

    /// Replaces the scheduling policy (chainable) — the fork-side half
    /// of a warm sweep: construct and warm one controller, fork it per
    /// configuration ([`ia_sim::SnapshotState::fork`]), and hand each
    /// fork its own policy. Construction is scheduler-independent, so a
    /// fork with a swapped scheduler is bit-identical to a controller
    /// built fresh with that scheduler.
    #[must_use]
    pub fn with_scheduler(mut self, scheduler: Box<dyn Scheduler>) -> Self {
        self.scheduler = scheduler;
        self
    }

    /// Attaches a reliability pipeline (chainable). Turns on the DRAM
    /// module's injection event log; from then on every activate, read,
    /// write, and refresh flows through the pipeline's closed
    /// detect → correct → degrade loop at the end of each tick.
    #[must_use]
    pub fn with_reliability(mut self, pipeline: ReliabilityPipeline) -> Self {
        self.dram.enable_injection();
        self.reliability = Some(pipeline);
        self
    }

    /// The attached reliability pipeline, if any.
    #[must_use]
    pub fn reliability(&self) -> Option<&ReliabilityPipeline> {
        self.reliability.as_ref()
    }

    /// Sets the DRAM latency mode (AL-DRAM / ChargeCache) (chainable).
    #[must_use]
    pub fn with_latency_mode(mut self, mode: ia_dram::LatencyMode) -> Self {
        // Rebuilding the module would lose state; the module applies the
        // mode to future commands only, which is exactly what we want.
        let dram = std::mem::replace(
            &mut self.dram,
            // lint: allow(P001, the ddr3_1600 preset is statically valid)
            DramModule::new(DramConfig::ddr3_1600()).expect("preset is valid"),
        );
        self.dram = dram.with_latency_mode(mode);
        self
    }

    /// Current simulated cycle.
    #[must_use]
    pub fn now(&self) -> Cycle {
        self.now
    }

    /// Outstanding queued (not yet issued) requests.
    #[must_use]
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Outstanding requests including in-flight data transfers.
    #[must_use]
    pub fn outstanding(&self) -> usize {
        self.queue.len() + self.inflight.len()
    }

    /// Controller statistics.
    #[must_use]
    pub fn stats(&self) -> &CtrlStats {
        &self.stats
    }

    /// Request-latency distribution (one sample per completed request).
    #[must_use]
    pub fn latency_histogram(&self) -> &Histogram {
        &self.latency
    }

    /// Queue-depth distribution (one sample per simulated cycle).
    #[must_use]
    pub fn queue_depth_histogram(&self) -> &Histogram {
        &self.queue_depth
    }

    /// Enables scheduler-decision tracing into a bounded ring of
    /// `capacity` events. Off by default; one branch per issued command.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = TraceBuffer::new(capacity);
    }

    /// The scheduler-decision trace (empty unless
    /// [`enable_trace`](MemoryController::enable_trace) was called).
    #[must_use]
    pub fn trace(&self) -> &TraceBuffer<SchedEvent> {
        &self.trace
    }

    /// Enables cycle-attribution tracing on this controller (track
    /// `"ctrl"`) and its DRAM module (track `"dram"`): each simulated
    /// cycle is classified into exactly one phase
    /// (`sched.issue_column`, `sched.issue_prep`, `refresh.auto`,
    /// `dram.burst_retire`, `dram.timing_stall`, `dram.data_burst`,
    /// `idle.empty`), and reliability-ladder activity is recorded as
    /// instant deltas. Off by default; one branch per cycle.
    pub fn enable_cycle_tracing(&mut self, capacity: usize) {
        self.tracer = Tracer::new("ctrl", capacity);
        self.dram.enable_cycle_trace(capacity);
    }

    /// Drains the controller's and DRAM module's cycle traces into a
    /// [`TraceLog`]; `None` if cycle tracing was never enabled.
    #[must_use]
    pub fn take_trace_log(&mut self) -> Option<TraceLog> {
        if !self.tracer.is_enabled() {
            return None;
        }
        let mut log = TraceLog::new();
        log.push(self.tracer.take());
        log.push(self.dram.take_cycle_trace());
        Some(log)
    }

    /// The underlying DRAM module (timing/energy statistics).
    #[must_use]
    pub fn dram(&self) -> &DramModule {
        &self.dram
    }

    /// The scheduler's display name.
    #[must_use]
    pub fn scheduler_name(&self) -> &'static str {
        self.scheduler.name()
    }

    /// Enqueues a request, assigning it an id.
    ///
    /// # Errors
    ///
    /// Returns [`CtrlError::QueueFull`] when at capacity.
    pub fn enqueue(&mut self, mut request: MemRequest) -> Result<u64, CtrlError> {
        if self.queue.len() >= self.queue_capacity {
            return Err(CtrlError::QueueFull);
        }
        if request.id == 0 {
            request.id = self.next_id;
            self.next_id += 1;
        }
        let loc = self.dram.decode(request.addr);
        self.queue.insert(
            Pending {
                request,
                loc,
                arrival: self.now,
                batched: false,
                started: false,
            },
            &self.dram,
        );
        self.quiet = false;
        Ok(request.id)
    }

    /// Advances one cycle, delivering any completed requests into `sink`.
    ///
    /// This is the allocation-free core of the controller: the caller owns
    /// the completion storage (a reused scratch `Vec`, or a closure via
    /// [`ia_sim::FnSink`]), so the steady-state tick path never touches
    /// the heap.
    pub fn tick_into(&mut self, sink: &mut dyn CompletionSink<Completed>) {
        self.scheduler.on_tick(self.now);

        // 1. Retire in-flight requests whose data burst has finished,
        //    compacting in place so retirement order (= insertion order)
        //    is preserved.
        let now = self.now;
        let had_inflight = self.inflight.len();
        let mut kept = 0;
        for i in 0..self.inflight.len() {
            if self.inflight[i].1 <= now {
                let (p, ready) = self.inflight[i];
                let c = Completed {
                    request: p.request,
                    arrival: p.arrival,
                    finished: ready,
                };
                self.stats.completed += 1;
                self.stats.total_latency += c.latency();
                self.latency.record(c.latency());
                self.scheduler.on_complete(&c, now);
                sink.complete(c);
            } else {
                // Shift only once a gap exists, like `Vec::retain`: the
                // common all-kept tick never copies an entry.
                if kept != i {
                    self.inflight[kept] = self.inflight[i];
                }
                kept += 1;
            }
        }
        self.inflight.truncate(kept);
        self.queue_depth.record(self.queue.len() as u64);

        // 2. Refresh engine.
        let mut refresh_fired = false;
        if let Some(must_issue) = self.refresh.due(self.now) {
            refresh_fired = true;
            if must_issue {
                for ch in 0..self.dram.config().geometry.channels {
                    for rk in 0..self.dram.config().geometry.ranks {
                        // refresh_rank sequences precharges internally.
                        let _ = self.dram.refresh_rank(ch, rk, self.now);
                    }
                }
                self.stats.refreshes_issued += 1;
            } else {
                self.stats.refreshes_skipped += 1;
            }
            self.refresh.advance(must_issue);
        }

        // 3. Scheduling: one command per cycle. The view is built from
        //    the queue's indexed per-bank ready lists at the depth the
        //    policy asks for — O(occupied banks), not O(queue depth).
        self.scheduler.prepare(&mut self.queue);
        let mut issued_this_cycle = false;
        let mut column_issued = false;
        let mode = self.scheduler.view_mode();
        self.queue
            .build_view(&self.dram, self.now, mode, &mut self.view);
        self.tags_current = mode != ViewMode::Skip;
        if let Some(h) = self.scheduler.select(&self.queue, &self.view) {
            if let Some(&p) = self.queue.get(h) {
                let cmd = self.dram.next_needed(&p.loc, p.request.kind);
                if self.dram.ready_at(&p.loc, &cmd) <= self.now {
                    // Classify the row-buffer outcome once, when the
                    // request first makes progress.
                    if !p.started {
                        let outcome = self.dram.row_buffer_outcome(&p.loc);
                        self.dram.stats_mut().record_outcome(outcome);
                        self.queue.set_started(h);
                    }
                    let column = matches!(cmd, Command::Read { .. } | Command::Write { .. });
                    if let Ok(out) = self.dram.issue(&p.loc, cmd, self.now) {
                        issued_this_cycle = true;
                        column_issued = column;
                        if column {
                            self.sched_column += 1;
                        } else {
                            self.sched_prep += 1;
                        }
                        self.trace.record_with(|| SchedEvent {
                            at: now,
                            request: p.request.id,
                            thread: p.request.thread,
                            cmd,
                        });
                        self.scheduler.on_issue(column, self.now);
                        if column {
                            self.stats.busy_cycles += 1;
                            let ready = out.data_ready.unwrap_or(self.now);
                            let p = self.queue.remove(h);
                            self.inflight.push((p, ready));
                        }
                    }
                }
            }
        }
        if !issued_this_cycle && !self.queue.is_empty() {
            self.sched_idle += 1;
        }
        // A tick that retired nothing, refreshed nothing, and issued
        // nothing cannot have moved any event earlier: the timing scan in
        // `next_event_at` is now worth its cost.
        self.quiet = !issued_this_cycle && !refresh_fired && kept == had_inflight;

        // Cycle attribution: classify this cycle into exactly one phase
        // (highest-priority activity wins) so the per-phase totals
        // partition the run's cycles exactly.
        if self.tracer.is_enabled() {
            let phase = if column_issued {
                "sched.issue_column"
            } else if issued_this_cycle {
                "sched.issue_prep"
            } else if refresh_fired {
                "refresh.auto"
            } else if kept != had_inflight {
                "dram.burst_retire"
            } else if !self.queue.is_empty() {
                "dram.timing_stall"
            } else if !self.inflight.is_empty() {
                "dram.data_burst"
            } else {
                "idle.empty"
            };
            self.tracer.mark(phase, now.as_u64());
        }

        if let Some(rel) = &mut self.reliability {
            if self.tracer.is_enabled() {
                // Record the reliability ladder's per-tick activity as
                // instant deltas (counts since the previous tick).
                let stats_before = *rel.stats();
                let faults_before = rel.fault_stats().injected();
                rel.process(&mut self.dram);
                let s = *rel.stats();
                let at = now.as_u64();
                for (name, before, after) in [
                    ("reliability.corrected", stats_before.corrected, s.corrected),
                    (
                        "reliability.uncorrected",
                        stats_before.uncorrected,
                        s.uncorrected,
                    ),
                    ("reliability.scrubs", stats_before.scrubs, s.scrubs),
                    ("reliability.remaps", stats_before.remaps, s.remaps),
                    (
                        "reliability.quarantines",
                        stats_before.quarantines,
                        s.quarantines,
                    ),
                    (
                        "reliability.escalated_refreshes",
                        stats_before.escalated_refreshes,
                        s.escalated_refreshes,
                    ),
                ] {
                    let delta = after.saturating_sub(before);
                    if delta > 0 {
                        self.tracer.instant_value(name, at, delta as f64);
                    }
                }
                let injected = rel.fault_stats().injected().saturating_sub(faults_before);
                if injected > 0 {
                    self.tracer
                        .instant_value("faults.injected", at, injected as f64);
                }
            } else {
                rel.process(&mut self.dram);
            }
        }

        self.now += 1;
    }

    /// Advances one cycle, returning any requests that completed.
    ///
    /// Compatibility wrapper over [`tick_into`](MemoryController::tick_into)
    /// that allocates a fresh `Vec` per call; hot loops should pass a
    /// reused sink to `tick_into` instead.
    pub fn tick(&mut self) -> Vec<Completed> {
        let mut done = Vec::new();
        self.tick_into(&mut done);
        done
    }

    /// Runs until the queue and in-flight set drain or `max_cycles` pass.
    /// Returns all completions in retirement order.
    ///
    /// Driven by the event-skipping [`SimLoop`]; numerically identical to
    /// ticking every cycle.
    pub fn run_until_drained(&mut self, max_cycles: u64) -> Vec<Completed> {
        let deadline = self.now + max_cycles;
        let mut engine = SimLoop::new();
        let mut all = Vec::new();
        engine.run_while(self, &mut all, deadline, |c| c.outstanding() > 0);
        self.engine.merge(engine.stats());
        all
    }

    /// Simulation-engine counters accumulated by this controller's runs
    /// (events processed, cycles skipped, sink high-water mark).
    #[must_use]
    pub fn engine_stats(&self) -> &EngineStats {
        &self.engine
    }

    /// Folds an external driver's engine counters into this controller's
    /// accumulated [`MemoryController::engine_stats`].
    pub fn merge_engine_stats(&mut self, stats: &EngineStats) {
        self.engine.merge(stats);
    }
}

impl Clocked for MemoryController {
    type Completion = Completed;

    fn now(&self) -> Cycle {
        self.now
    }

    fn tick_into(&mut self, sink: &mut dyn CompletionSink<Completed>) {
        MemoryController::tick_into(self, sink);
    }

    /// Earliest cycle at which anything observable can happen: an
    /// in-flight burst retiring, a refresh slot falling due, or a queued
    /// request's next DRAM command becoming issuable. While the
    /// controller idles, all three sources are static, so skipping
    /// straight to this cycle is exact.
    fn next_event_at(&self) -> Option<Cycle> {
        let refresh_on = !matches!(self.refresh.mode, RefreshMode::Disabled);
        if self.inflight.is_empty() && self.queue.is_empty() && !refresh_on {
            return None;
        }
        // While work is flowing (last tick did something observable, or a
        // request arrived since), "now" is the conservative-early answer
        // the contract allows — the engine simply ticks again, exactly as
        // a per-cycle loop would, and the full timing scan below is saved
        // for genuinely idle stretches where it pays for the skip.
        if !self.quiet {
            return Some(self.now);
        }
        // The result is clamped to `now`, so any candidate at or before
        // `now` ends the scan immediately.
        let mut next: Option<Cycle> = None;
        for (_, ready) in &self.inflight {
            if *ready <= self.now {
                return Some(self.now);
            }
            next = Some(next.map_or(*ready, |n| n.min(*ready)));
        }
        if refresh_on {
            let at = self.refresh.next_at;
            if at <= self.now {
                return Some(self.now);
            }
            next = Some(next.map_or(at, |n| n.min(at)));
        }
        if self.tags_current {
            // The queue's (bank, class) buckets are current — the quiet
            // tick that got us here validated them against this exact
            // DRAM state — and timing gates ignore row/column operands,
            // so the per-request minimum collapses to one bound per
            // occupied bank class: identical value, O(occupied banks).
            if let Some(at) = self.queue.next_ready_min(&self.dram) {
                if at <= self.now {
                    return Some(self.now);
                }
                next = Some(next.map_or(at, |n| n.min(at)));
            }
        } else {
            for (_, p) in &self.queue {
                let at = self.dram.next_ready_for(&p.loc, p.request.kind);
                if at <= self.now {
                    return Some(self.now);
                }
                next = Some(next.map_or(at, |n| n.min(at)));
            }
        }
        next.map(|n| n.max(self.now))
    }

    /// Applies the bookkeeping the skipped idle ticks would have done, in
    /// bulk: per-cycle queue-depth samples, the stalled-cycle counter, and
    /// scheduler epoch housekeeping (via [`Scheduler::on_advance`]).
    fn skip_to(&mut self, target: Cycle) {
        if target <= self.now {
            return;
        }
        let n = target - self.now;
        self.scheduler.on_advance(self.now, target);
        self.queue_depth.record_n(self.queue.len() as u64, n);
        if !self.queue.is_empty() {
            self.sched_idle += n;
        }
        if self.tracer.is_enabled() {
            // Bulk-attribute the skipped idle span with the same
            // classification a per-cycle loop would have produced.
            let phase = if !self.queue.is_empty() {
                "dram.timing_stall"
            } else if !self.inflight.is_empty() {
                "dram.data_burst"
            } else {
                "idle.empty"
            };
            self.tracer.mark_n(phase, self.now.as_u64(), n);
        }
        self.now = target;
    }
}

impl ia_sim::SnapshotState for MemoryController {
    type Snapshot = MemoryController;

    /// The snapshot is a deep copy of the whole controller: DRAM timing
    /// and row-buffer state, queue and in-flight requests, refresh
    /// engine position, scheduler state (via [`Scheduler::clone_box`]),
    /// reliability pipeline (fault-hook state included), and every
    /// statistic. A restored controller is bit-identical to the donor —
    /// the warm-fork guarantee parameter sweeps rely on.
    fn snapshot(&self) -> MemoryController {
        self.clone()
    }

    fn restore(&mut self, saved: &MemoryController) {
        *self = saved.clone();
    }
}

impl MetricSource for MemoryController {
    /// Publishes controller counters and distributions at this scope and
    /// the DRAM module's metrics under a `dram` child scope.
    fn export_into(&self, scope: &mut Scope<'_>) {
        self.stats.export_into(scope);
        scope.set_histogram("latency_cycles", &self.latency);
        scope.set_histogram("queue_depth", &self.queue_depth);
        scope.set_counter("sched_column", self.sched_column);
        scope.set_counter("sched_prep", self.sched_prep);
        scope.set_counter("sched_stalled", self.sched_idle);
        scope.set_counter("trace_recorded", self.trace.recorded());
        scope.set_counter("trace_dropped", self.trace.dropped());
        scope.collect("engine", &self.engine);
        scope.collect("dram", &self.dram);
        if let Some(rel) = &self.reliability {
            scope.collect("reliability", rel);
        }
    }
}

/// Per-thread results of a closed-loop run.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreadReport {
    /// Requests completed.
    pub completed: u64,
    /// Mean latency in cycles.
    pub avg_latency: f64,
    /// Cycle at which this thread's last request completed.
    pub finish: u64,
}

/// Results of a closed-loop multi-programmed run.
#[derive(Debug, Clone, PartialEq)]
pub struct RunReport {
    /// Scheduler used.
    pub scheduler: String,
    /// Total cycles simulated.
    pub cycles: u64,
    /// Per-thread outcomes.
    pub threads: Vec<ThreadReport>,
    /// Aggregate controller stats.
    pub stats: CtrlStats,
    /// DRAM row-buffer hit rate over the run.
    pub row_hit_rate: f64,
    /// ChargeCache hit rate (0 unless that latency mode is active).
    pub charge_cache_hit_rate: f64,
    /// Dynamic DRAM energy consumed, picojoules.
    pub dynamic_energy_pj: f64,
    /// Off-chip I/O (data movement) energy, picojoules.
    pub io_energy_pj: f64,
    /// Simulation-engine effort counters (events processed vs cycles
    /// skipped). Describes how the run was *driven*, not what it
    /// computed — excluded from [`RunReport::same_results`].
    pub engine: EngineStats,
    /// Reliability outcome (fault and mitigation counters); `None`
    /// unless the controller ran with a reliability pipeline attached.
    pub reliability: Option<ReliabilityReport>,
    /// Cycle-attribution trace of the run (`None` unless tracing was
    /// enabled — see [`MemoryController::enable_cycle_tracing`]).
    /// Describes how the run was *observed*, not what it computed, so
    /// it is excluded from [`RunReport::same_results`].
    pub trace: Option<TraceLog>,
}

impl RunReport {
    /// Aggregate throughput: requests per kilo-cycle.
    #[must_use]
    pub fn throughput_rpkc(&self) -> f64 {
        if self.cycles == 0 {
            return 0.0;
        }
        self.stats.completed as f64 / self.cycles as f64 * 1000.0
    }

    /// True if two runs produced identical simulated results — every
    /// field except [`RunReport::engine`], which describes how the
    /// simulation was driven rather than the simulated outcome. This is
    /// the equality the event-driven engine guarantees against the
    /// per-cycle oracle ([`run_closed_loop_per_cycle`]).
    #[must_use]
    pub fn same_results(&self, other: &RunReport) -> bool {
        self.scheduler == other.scheduler
            && self.cycles == other.cycles
            && self.threads == other.threads
            && self.stats == other.stats
            && self.row_hit_rate == other.row_hit_rate
            && self.charge_cache_hit_rate == other.charge_cache_hit_rate
            && self.dynamic_energy_pj == other.dynamic_energy_pj
            && self.io_energy_pj == other.io_energy_pj
            && self.reliability == other.reliability
    }
}

/// Runs `traces` (one request list per thread) through a controller in
/// closed-loop fashion: each thread keeps up to `window` requests
/// outstanding. Returns the per-thread and aggregate report.
///
/// # Errors
///
/// Returns [`CtrlError`] if the DRAM configuration is invalid or a trace
/// is empty.
pub fn run_closed_loop(
    config: DramConfig,
    scheduler: Box<dyn Scheduler>,
    traces: &[Vec<MemRequest>],
    window: usize,
    max_cycles: u64,
) -> Result<RunReport, CtrlError> {
    let ctrl = MemoryController::new(config, scheduler).map_err(CtrlError::Config)?;
    run_closed_loop_with(ctrl, traces, window, max_cycles)
}

/// [`run_closed_loop`] over a caller-configured controller (custom refresh
/// mode, latency mode on the DRAM module, queue capacity…). The queue
/// capacity is raised to fit the per-thread windows if needed.
///
/// # Errors
///
/// Returns [`CtrlError::EmptyTrace`] if any trace is empty.
pub fn run_closed_loop_with(
    ctrl: MemoryController,
    traces: &[Vec<MemRequest>],
    window: usize,
    max_cycles: u64,
) -> Result<RunReport, CtrlError> {
    if traces.is_empty() || traces.iter().any(Vec::is_empty) {
        return Err(CtrlError::EmptyTrace);
    }
    let mut ctrl = ctrl.with_queue_capacity(traces.len() * window.max(1) + 8);
    // Session capture (the bench CLI's `--trace`/`--profile`) turns on
    // cycle tracing for every closed-loop run; the trace rides back on
    // the report so parallel sweeps can submit it in task order.
    let tracing = ia_trace::capture_enabled();
    if tracing {
        ctrl.enable_cycle_tracing(ia_trace::DEFAULT_EVENT_CAPACITY);
    }
    let mut cursor = vec![0usize; traces.len()];
    let mut outstanding = vec![0usize; traces.len()];
    let mut completed = vec![0u64; traces.len()];
    let mut latency = vec![0u64; traces.len()];
    let mut finish = vec![0u64; traces.len()];

    let all_done = |cursor: &[usize], outstanding: &[usize]| {
        cursor.iter().zip(traces).all(|(&c, t)| c >= t.len()) && outstanding.iter().all(|&o| o == 0)
    };

    // Event-driven drive: feed, process exactly one event, account. The
    // scratch buffer is reused across steps, so the steady-state loop
    // performs no heap allocation. Feeding opportunities only arise after
    // completions (the queue never rejects: capacity covers every
    // window), so feeding once per processed event sees exactly the
    // states the per-cycle loop would feed in.
    let mut engine = SimLoop::new();
    if tracing {
        engine.enable_tracing(ia_trace::DEFAULT_EVENT_CAPACITY);
        engine.tracer_mut().begin("run", 0);
    }
    let deadline = Cycle::new(max_cycles);
    let mut scratch: Vec<Completed> = Vec::new();
    while !all_done(&cursor, &outstanding) && ctrl.now().as_u64() < max_cycles {
        // Feed each thread up to its window.
        for (t, trace) in traces.iter().enumerate() {
            while outstanding[t] < window && cursor[t] < trace.len() {
                let mut req = trace[cursor[t]];
                req.thread = t;
                if ctrl.enqueue(req).is_err() {
                    break;
                }
                cursor[t] += 1;
                outstanding[t] += 1;
            }
        }
        scratch.clear();
        match engine.step(&mut ctrl, &mut scratch, deadline) {
            StepOutcome::Drained => {
                // Degenerate case (window == 0): nothing can ever enter
                // the controller. The per-cycle loop would idle-tick out
                // the whole horizon; jump there with the same
                // bookkeeping.
                Clocked::skip_to(&mut ctrl, deadline);
                break;
            }
            StepOutcome::Stalled(report) => return Err(CtrlError::Stalled(report)),
            _ => {}
        }
        for c in &scratch {
            let t = c.request.thread;
            outstanding[t] -= 1;
            completed[t] += 1;
            latency[t] += c.latency();
            finish[t] = c.finished.as_u64();
        }
    }
    ctrl.merge_engine_stats(engine.stats());
    let threads = (0..traces.len())
        .map(|t| ThreadReport {
            completed: completed[t],
            avg_latency: if completed[t] == 0 {
                0.0
            } else {
                latency[t] as f64 / completed[t] as f64
            },
            finish: finish[t],
        })
        .collect();
    let mut report = report_of(&mut ctrl, threads);
    if tracing {
        let now = report.cycles;
        engine.tracer_mut().end(now);
        if let Some(log) = &mut report.trace {
            log.components.insert(0, engine.take_trace());
        }
    }
    Ok(report)
}

/// Per-cycle oracle for [`run_closed_loop_with`]: drives the controller
/// with [`MemoryController::tick`] every single cycle instead of the
/// event-skipping engine. Slow by design — kept public so differential
/// tests (and skeptical users) can verify that the engine's reports are
/// identical (`RunReport::same_results`).
///
/// # Errors
///
/// Returns [`CtrlError::EmptyTrace`] if any trace is empty.
pub fn run_closed_loop_per_cycle(
    ctrl: MemoryController,
    traces: &[Vec<MemRequest>],
    window: usize,
    max_cycles: u64,
) -> Result<RunReport, CtrlError> {
    if traces.is_empty() || traces.iter().any(Vec::is_empty) {
        return Err(CtrlError::EmptyTrace);
    }
    let mut ctrl = ctrl.with_queue_capacity(traces.len() * window.max(1) + 8);
    let mut cursor = vec![0usize; traces.len()];
    let mut outstanding = vec![0usize; traces.len()];
    let mut completed = vec![0u64; traces.len()];
    let mut latency = vec![0u64; traces.len()];
    let mut finish = vec![0u64; traces.len()];

    let all_done = |cursor: &[usize], outstanding: &[usize]| {
        cursor.iter().zip(traces).all(|(&c, t)| c >= t.len()) && outstanding.iter().all(|&o| o == 0)
    };

    while !all_done(&cursor, &outstanding) && ctrl.now().as_u64() < max_cycles {
        for (t, trace) in traces.iter().enumerate() {
            while outstanding[t] < window && cursor[t] < trace.len() {
                let mut req = trace[cursor[t]];
                req.thread = t;
                if ctrl.enqueue(req).is_err() {
                    break;
                }
                cursor[t] += 1;
                outstanding[t] += 1;
            }
        }
        for c in ctrl.tick() {
            let t = c.request.thread;
            outstanding[t] -= 1;
            completed[t] += 1;
            latency[t] += c.latency();
            finish[t] = c.finished.as_u64();
        }
    }
    let threads = (0..traces.len())
        .map(|t| ThreadReport {
            completed: completed[t],
            avg_latency: if completed[t] == 0 {
                0.0
            } else {
                latency[t] as f64 / completed[t] as f64
            },
            finish: finish[t],
        })
        .collect();
    Ok(report_of(&mut ctrl, threads))
}

fn report_of(ctrl: &mut MemoryController, threads: Vec<ThreadReport>) -> RunReport {
    let trace = ctrl.take_trace_log();
    RunReport {
        scheduler: ctrl.scheduler_name().to_owned(),
        cycles: ctrl.now().as_u64(),
        threads,
        stats: ctrl.stats().clone(),
        row_hit_rate: ctrl.dram().stats().row_hit_rate(),
        charge_cache_hit_rate: ctrl.dram().charge_cache_hit_rate(),
        dynamic_energy_pj: ctrl.dram().energy().dynamic_pj(),
        io_energy_pj: ctrl.dram().energy().io_pj,
        engine: *ctrl.engine_stats(),
        reliability: ctrl.reliability().map(ReliabilityPipeline::report),
        trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scheduler::{Fcfs, FrFcfs};

    #[test]
    fn single_request_completes_with_miss_latency() {
        let mut ctrl =
            MemoryController::new(DramConfig::ddr3_1600(), Box::new(FrFcfs::new())).unwrap();
        ctrl.enqueue(MemRequest::read(0, 0)).unwrap();
        let done = ctrl.run_until_drained(10_000);
        assert_eq!(done.len(), 1);
        let t = DramConfig::ddr3_1600().timing;
        // ACT at 0, RD at tRCD, data at tRCD+tCL+tBL; retire next cycle.
        assert!(done[0].latency() >= t.t_rcd + t.t_cl + t.t_bl);
        assert!(done[0].latency() < t.t_rcd + t.t_cl + t.t_bl + 10);
    }

    #[test]
    fn queue_capacity_is_enforced() {
        let mut ctrl = MemoryController::new(DramConfig::ddr3_1600(), Box::new(Fcfs::new()))
            .unwrap()
            .with_queue_capacity(2);
        ctrl.enqueue(MemRequest::read(0, 0)).unwrap();
        ctrl.enqueue(MemRequest::read(64, 0)).unwrap();
        assert!(matches!(
            ctrl.enqueue(MemRequest::read(128, 0)),
            Err(CtrlError::QueueFull)
        ));
    }

    #[test]
    fn row_hits_finish_faster_than_conflicts() {
        let mut ctrl =
            MemoryController::new(DramConfig::ddr3_1600(), Box::new(FrFcfs::new())).unwrap();
        // Stream within one row: after the first miss, all hits.
        for i in 0..16u64 {
            ctrl.enqueue(MemRequest::read(i * 64, 0)).unwrap();
        }
        let done = ctrl.run_until_drained(100_000);
        assert_eq!(done.len(), 16);
        assert!(ctrl.dram().stats().row_hit_rate() > 0.9);
    }

    #[test]
    fn refresh_blocks_and_counts() {
        let mut ctrl = MemoryController::new(DramConfig::ddr3_1600(), Box::new(FrFcfs::new()))
            .unwrap()
            .with_refresh_mode(RefreshMode::AllBank);
        // Run past several tREFI intervals with no load.
        for _ in 0..40_000 {
            ctrl.tick();
        }
        let expected = 40_000 / DramConfig::ddr3_1600().timing.t_refi;
        assert!(ctrl.stats().refreshes_issued >= expected - 1);
    }

    #[test]
    fn raidr_engine_skips_most_slots_across_windows() {
        use ia_reliability::{Raidr, RetentionModel};
        use rand::SeedableRng;
        let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
        let profile = RetentionModel::typical().profile(8192, &mut rng);
        let raidr = Raidr::from_profile(&profile).unwrap();
        let cfg = DramConfig::ddr3_1600();
        let mut engine = RefreshEngine::new(RefreshMode::Raidr(raidr), &cfg);
        // Drive the engine through 4 full 64 ms windows slot-by-slot.
        let slots = engine.slots_per_window * 4;
        for _ in 0..slots {
            let must_issue = engine.due(engine.next_at).expect("mode enabled");
            engine.advance(must_issue);
        }
        let reduction = engine.skipped as f64 / (engine.issued + engine.skipped) as f64;
        // Window 0 refreshes every bin; windows 1-3 only the weak tails, so
        // the average over the 4-window period approaches RAIDR's ~74.6%.
        assert!(
            (0.65..0.80).contains(&reduction),
            "expected ≈3/4 of slots skipped, got {reduction:.3}"
        );
    }

    #[test]
    fn all_bank_engine_never_skips() {
        let cfg = DramConfig::ddr3_1600();
        let mut engine = RefreshEngine::new(RefreshMode::AllBank, &cfg);
        for _ in 0..100 {
            assert_eq!(engine.due(engine.next_at), Some(true));
            engine.advance(true);
        }
        assert_eq!(engine.skipped, 0);
    }

    #[test]
    fn closed_loop_run_completes_all_requests() {
        let traces: Vec<Vec<MemRequest>> = (0..2)
            .map(|t| {
                (0..50u64)
                    .map(|i| MemRequest::read((t * (1 << 22)) as u64 + i * 64, t))
                    .collect()
            })
            .collect();
        let report = run_closed_loop(
            DramConfig::ddr3_1600(),
            Box::new(FrFcfs::new()),
            &traces,
            4,
            1_000_000,
        )
        .unwrap();
        assert_eq!(report.stats.completed, 100);
        assert_eq!(report.threads.len(), 2);
        assert!(report.threads.iter().all(|t| t.completed == 50));
        assert!(report.throughput_rpkc() > 0.0);
        assert_eq!(report.scheduler, "FR-FCFS");
    }

    #[test]
    fn closed_loop_rejects_empty_traces() {
        let r = run_closed_loop(DramConfig::ddr3_1600(), Box::new(Fcfs::new()), &[], 4, 1000);
        assert!(r.is_err());
        let r = run_closed_loop(
            DramConfig::ddr3_1600(),
            Box::new(Fcfs::new()),
            &[vec![]],
            4,
            1000,
        );
        assert!(r.is_err());
    }

    #[test]
    fn stats_avg_latency() {
        let s = CtrlStats {
            completed: 4,
            total_latency: 100,
            ..CtrlStats::default()
        };
        assert!((s.avg_latency() - 25.0).abs() < 1e-12);
        assert_eq!(CtrlStats::default().avg_latency(), 0.0);
    }

    #[test]
    fn stats_merge_and_display() {
        let mut a = CtrlStats {
            completed: 4,
            total_latency: 100,
            ..CtrlStats::default()
        };
        let b = CtrlStats {
            completed: 6,
            total_latency: 200,
            refreshes_issued: 2,
            refreshes_skipped: 1,
            busy_cycles: 50,
        };
        a.merge(&b);
        assert_eq!(a.completed, 10);
        assert_eq!(a.total_latency, 300);
        assert_eq!(a.refreshes_issued, 2);
        assert!((a.avg_latency() - 30.0).abs() < 1e-12);
        let shown = a.to_string();
        assert!(shown.contains("10 completed"), "got: {shown}");
        assert!(shown.contains("avg latency 30.0"), "got: {shown}");
    }

    #[test]
    fn controller_exports_latency_histogram_and_dram_child() {
        let mut ctrl =
            MemoryController::new(DramConfig::ddr3_1600(), Box::new(FrFcfs::new())).unwrap();
        for i in 0..16u64 {
            ctrl.enqueue(MemRequest::read(i * 64, 0)).unwrap();
        }
        let done = ctrl.run_until_drained(100_000);
        assert_eq!(done.len(), 16);

        let mut reg = ia_telemetry::Registry::new();
        reg.collect("ctrl", &ctrl);
        let snap = reg.snapshot(ctrl.now().as_u64());
        assert_eq!(snap.counter("ctrl.completed"), Some(16));
        assert_eq!(snap.counter("ctrl.dram.reads"), Some(16));
        match snap.get("ctrl.latency_cycles") {
            Some(ia_telemetry::MetricValue::Histogram(h)) => {
                assert_eq!(h.count(), 16, "one sample per completion");
                assert!(h.p50() <= h.p99());
                assert!(h.max() >= ctrl.stats().avg_latency() as u64);
            }
            other => panic!("expected latency histogram, got {other:?}"),
        }
        match snap.get("ctrl.queue_depth") {
            Some(ia_telemetry::MetricValue::Histogram(h)) => {
                assert!(h.count() > 0, "sampled every cycle");
            }
            other => panic!("expected queue-depth histogram, got {other:?}"),
        }
        assert!(snap.counter("ctrl.sched_column").unwrap() >= 16);
    }

    #[test]
    fn reliability_pipeline_detects_corrects_and_exports_through_a_real_run() {
        use crate::reliability::ReliabilityConfig;
        use ia_faults::FaultPlan;

        let config = DramConfig::ddr3_1600();
        let plan = FaultPlan::new(7).transient(0.2).stuck(0.002);
        let pipeline =
            ReliabilityPipeline::new(ReliabilityConfig::full(100_000), plan, &config.geometry);
        let mut ctrl = MemoryController::new(config, Box::new(FrFcfs::new()))
            .unwrap()
            .with_refresh_mode(RefreshMode::AllBank)
            .with_queue_capacity(512)
            .with_reliability(pipeline);
        for i in 0..256u64 {
            ctrl.enqueue(MemRequest::read(i * 64, 0)).unwrap();
        }
        let done = ctrl.run_until_drained(1_000_000);
        assert_eq!(done.len(), 256);

        let rel = ctrl.reliability().expect("pipeline attached");
        assert_eq!(
            rel.stats().reads_checked,
            256,
            "every read went through ECC"
        );
        let faults = rel.fault_stats();
        assert!(faults.injected() > 0, "fault model was active: {faults:?}");
        assert!(
            rel.stats().corrected > 0,
            "single-bit flips get corrected: {:?}",
            rel.stats()
        );

        let mut reg = ia_telemetry::Registry::new();
        reg.collect("ctrl", &ctrl);
        let snap = reg.snapshot(ctrl.now().as_u64());
        assert!(snap.counter("ctrl.reliability.faults_injected").unwrap() > 0);
        for key in [
            "ctrl.reliability.corrected",
            "ctrl.reliability.uncorrected",
            "ctrl.reliability.remaps",
            "ctrl.reliability.quarantines",
            "ctrl.reliability.scrubs",
            "ctrl.reliability.retries",
        ] {
            assert!(snap.counter(key).is_some(), "missing counter {key}");
        }
    }

    #[test]
    fn reliability_report_is_deterministic_and_part_of_same_results() {
        use crate::reliability::ReliabilityConfig;
        use ia_faults::FaultPlan;

        let run = || {
            let config = DramConfig::ddr3_1600();
            let plan = FaultPlan::new(11).transient(0.1);
            let pipeline =
                ReliabilityPipeline::new(ReliabilityConfig::full(100_000), plan, &config.geometry);
            let ctrl = MemoryController::new(config, Box::new(FrFcfs::new()))
                .unwrap()
                .with_refresh_mode(RefreshMode::AllBank)
                .with_reliability(pipeline);
            let trace: Vec<MemRequest> = (0..64).map(|i| MemRequest::read(i * 64, 0)).collect();
            run_closed_loop_with(ctrl, &[trace], 8, 1_000_000).unwrap()
        };
        let a = run();
        let b = run();
        let rel = a.reliability.as_ref().expect("report carries reliability");
        assert!(rel.stats.reads_checked > 0);
        assert_eq!(a.reliability, b.reliability, "same seed, same outcome");
        assert!(a.same_results(&b));
    }

    #[test]
    fn cycle_trace_partitions_every_simulated_cycle() {
        let traces: Vec<Vec<MemRequest>> = (0..2)
            .map(|t| {
                (0..40u64)
                    .map(|i| MemRequest::read((t * (1 << 22)) as u64 + i * 64, t))
                    .collect()
            })
            .collect();
        let mut ctrl = MemoryController::new(DramConfig::ddr3_1600(), Box::new(FrFcfs::new()))
            .unwrap()
            .with_refresh_mode(RefreshMode::AllBank);
        ctrl.enable_cycle_tracing(1024);
        let report = run_closed_loop_with(ctrl, &traces, 4, 1_000_000).unwrap();
        let log = report.trace.as_ref().expect("tracing was enabled");
        let ctrl_trace = log
            .components
            .iter()
            .find(|c| c.track == "ctrl")
            .expect("ctrl track present");
        assert_eq!(
            ctrl_trace.attributed(),
            report.cycles,
            "per-phase attribution must partition the run exactly: {:?}",
            ctrl_trace.marks
        );
        assert!(
            ctrl_trace
                .marks
                .iter()
                .any(|&(p, _)| p == "sched.issue_column"),
            "column issues attributed"
        );
        let dram_trace = log
            .components
            .iter()
            .find(|c| c.track == "dram")
            .expect("dram track present");
        assert!(
            dram_trace.instants.iter().any(|i| i.name == "bank.act"),
            "activates recorded"
        );
        let reads = dram_trace
            .instants
            .iter()
            .find(|i| i.name == "bank.rd")
            .expect("reads recorded");
        assert_eq!(
            reads.count, report.stats.completed,
            "one bank.rd instant per completed read"
        );
    }

    #[test]
    fn cycle_trace_is_identical_between_engine_and_per_cycle_oracle() {
        let traces: Vec<Vec<MemRequest>> =
            vec![(0..32u64).map(|i| MemRequest::read(i * 64, 0)).collect()];
        let run = |per_cycle: bool| {
            let mut ctrl =
                MemoryController::new(DramConfig::ddr3_1600(), Box::new(FrFcfs::new())).unwrap();
            ctrl.enable_cycle_tracing(4096);
            if per_cycle {
                run_closed_loop_per_cycle(ctrl, &traces, 4, 100_000).unwrap()
            } else {
                run_closed_loop_with(ctrl, &traces, 4, 100_000).unwrap()
            }
        };
        let engine = run(false);
        let oracle = run(true);
        assert!(engine.same_results(&oracle));
        let et = engine.trace.expect("engine run traced");
        let ot = oracle.trace.expect("oracle run traced");
        let phase_totals = |log: &TraceLog| {
            log.components
                .iter()
                .find(|c| c.track == "ctrl")
                .map(|c| c.marks.clone())
                .expect("ctrl track")
        };
        assert_eq!(
            phase_totals(&et),
            phase_totals(&ot),
            "skip bulk-marks must attribute exactly what per-cycle marks do"
        );
    }

    #[test]
    fn scheduler_trace_records_decisions_when_enabled() {
        let mut ctrl =
            MemoryController::new(DramConfig::ddr3_1600(), Box::new(FrFcfs::new())).unwrap();
        ctrl.enable_trace(8);
        ctrl.enqueue(MemRequest::read(0, 0)).unwrap();
        ctrl.run_until_drained(10_000);
        let cmds: Vec<Command> = ctrl.trace().iter().map(|e| e.cmd).collect();
        assert_eq!(cmds.len(), 2, "miss = ACT then RD");
        assert!(matches!(cmds[0], Command::Activate { .. }));
        assert!(matches!(cmds[1], Command::Read { .. }));
        assert!(ctrl.trace().iter().all(|e| e.request == 1));
    }
}
