//! Differential property test: the indexed per-(bank, class) ready
//! lists against the legacy linear scan.
//!
//! Drives a [`RequestQueue`] and a [`DramModule`] through random
//! enqueue / issue / cancel interleavings and checks, at every step,
//! that the indexed [`RequestQueue::build_view`] agrees with the
//! retired linear scan (kept as [`linear_issue_view`], the differential
//! oracle) — same candidate set, same row-hit count, and the same pick
//! from every scheduler policy — and that the pooled
//! [`RequestQueue::next_ready_min`] wake-up bound equals the
//! fold of [`DramModule::next_ready_for`] over the whole queue.

use ia_dram::{Cycle, DramConfig, DramModule, PhysAddr};
use ia_memctrl::scheduler::linear_issue_view;
use ia_memctrl::{
    Atlas, Bliss, Fcfs, FrFcfs, IssueView, MemRequest, ParBs, Pending, ReqId, RequestQueue,
    RlScheduler, RlSchedulerConfig, Scheduler, Tcm, ViewMode,
};
use proptest::prelude::*;

const THREADS: usize = 4;

fn schedulers() -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(Fcfs::new()),
        Box::new(FrFcfs::new()),
        Box::new(ParBs::new(THREADS)),
        Box::new(Atlas::new(THREADS, 10_000)),
        Box::new(Tcm::new(THREADS, 10_000, 1_000)),
        Box::new(Bliss::new()),
        Box::new(RlScheduler::new(RlSchedulerConfig::default())),
    ]
}

fn pending(
    dram: &DramModule,
    id: u64,
    addr: u64,
    write: bool,
    thread: usize,
    now: Cycle,
) -> Pending {
    let request = if write {
        MemRequest {
            id,
            ..MemRequest::write(addr, thread)
        }
    } else {
        MemRequest {
            id,
            ..MemRequest::read(addr, thread)
        }
    };
    Pending {
        loc: dram.decode(PhysAddr::new(addr)),
        request,
        arrival: now,
        batched: false,
        started: false,
    }
}

/// Snapshot of the queue in iteration order, for the linear oracle.
fn flatten(queue: &RequestQueue) -> (Vec<ReqId>, Vec<Pending>) {
    queue.iter().map(|(id, p)| (id, *p)).unzip()
}

/// The candidate set as `(request id, row-hit)` pairs, order-erased.
fn as_set(view: &IssueView, queue: &RequestQueue) -> Vec<(u64, bool)> {
    let mut v: Vec<(u64, bool)> = view
        .ready
        .iter()
        .map(|&(h, hit)| (queue.req(h).request.id, hit))
        .collect();
    v.sort_unstable();
    v
}

/// One differential step: indexed view vs linear oracle on the current
/// queue and DRAM state.
fn check_step(queue: &mut RequestQueue, dram: &DramModule, now: Cycle) {
    let (ids, pendings) = flatten(queue);
    let oracle = linear_issue_view(&pendings, dram, now);
    let reference = IssueView {
        ready: oracle.ready.iter().map(|&(i, hit)| (ids[i], hit)).collect(),
        row_hits: oracle.row_hits,
    };

    let mut full = IssueView::default();
    queue.build_view(dram, now, ViewMode::Full, &mut full);
    prop_assert_eq!(
        as_set(&full, queue),
        as_set(&reference, queue),
        "candidate sets diverge at {:?}",
        now
    );
    prop_assert_eq!(full.row_hits, reference.row_hits, "row-hit counts diverge");

    // build_view just validated every occupied bank's tag against this
    // exact DRAM state, so the pooled wake-up bound must be exact here.
    let oracle_min = pendings
        .iter()
        .map(|p| dram.next_ready_for(&p.loc, p.request.kind))
        .min();
    prop_assert_eq!(
        queue.next_ready_min(dram),
        oracle_min,
        "pooled next_ready_min diverges from the per-request fold"
    );

    // Every policy must pick identically from its own (possibly
    // frontier-only) indexed view and from the oracle's full view. The
    // pair starts from identical state, so stateful policies (and the
    // RL scheduler's RNG) stay in lockstep for the single select.
    for sched in schedulers() {
        let name = sched.name();
        let mut indexed_side = sched.clone_box();
        let mut oracle_side = sched;
        let mut view = IssueView::default();
        queue.build_view(dram, now, indexed_side.view_mode(), &mut view);
        let indexed_pick = indexed_side.select(queue, &view);
        let oracle_pick = oracle_side.select(queue, &reference);
        prop_assert_eq!(
            indexed_pick.map(|h| queue.req(h).request.id),
            oracle_pick.map(|h| queue.req(h).request.id),
            "{} picks diverge at {:?}",
            name,
            now
        );
    }
}

proptest! {
    // Every case replays the full differential check (7 policies) at
    // every step of the interleaving, so keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random enqueue/issue/cancel interleavings: the indexed queue and
    /// the linear oracle agree on the candidate set, the wake-up bound,
    /// and every scheduler's pick at every step.
    #[test]
    fn indexed_queue_matches_linear_scan_under_interleavings(
        ops in prop::collection::vec(
            (0u64..(1 << 22), any::<bool>(), 0usize..THREADS, 0u8..4, 0u8..12),
            1..50,
        ),
    ) {
        let mut dram = DramModule::new(DramConfig::ddr3_1600()).unwrap();
        let mut queue = RequestQueue::new();
        let mut now = Cycle::ZERO;
        let mut next_id = 1u64;

        for &(addr, write, thread, op, gap) in &ops {
            let addr = addr & !63;
            match op {
                // Enqueue (half the ops): a fresh request lands.
                0 | 1 => {
                    let p = pending(&dram, next_id, addr, write, thread, now);
                    next_id += 1;
                    queue.insert(p, &dram);
                }
                // Issue: serve FR-FCFS's pick, mutating bank state the
                // way a real command stream does.
                2 => {
                    let mut view = IssueView::default();
                    queue.build_view(&dram, now, ViewMode::Frontier, &mut view);
                    if let Some(id) = FrFcfs::new().select(&queue, &view) {
                        let p = queue.remove(id);
                        dram.access(p.request.addr, p.request.kind, now)
                            .unwrap();
                    }
                }
                // Cancel: drop an arbitrary queued request.
                _ => {
                    let (ids, _) = flatten(&queue);
                    if !ids.is_empty() {
                        queue.remove(ids[gap as usize % ids.len()]);
                    }
                }
            }
            now += u64::from(gap);
            check_step(&mut queue, &dram, now);
        }
    }
}
