//! Property-based tests of the memory controller: liveness and latency
//! bounds under every scheduler.

use ia_dram::DramConfig;
use ia_memctrl::{
    run_closed_loop, Atlas, Bliss, Fcfs, FrFcfs, MemRequest, ParBs, RlScheduler,
    RlSchedulerConfig, Scheduler, Tcm,
};
use proptest::prelude::*;

fn schedulers(threads: usize) -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(Fcfs::new()),
        Box::new(FrFcfs::new()),
        Box::new(ParBs::new(threads)),
        Box::new(Atlas::new(threads, 10_000)),
        Box::new(Tcm::new(threads, 10_000, 1_000)),
        Box::new(Bliss::new()),
        Box::new(RlScheduler::new(RlSchedulerConfig::default())),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Liveness: every scheduler completes every request of any random
    /// multi-threaded trace (no starvation, no deadlock).
    #[test]
    fn every_scheduler_drains_every_trace(
        traces in prop::collection::vec(
            prop::collection::vec((0u64..(1 << 22), any::<bool>()), 1..40),
            1..4,
        ),
    ) {
        let total: usize = traces.iter().map(Vec::len).sum();
        let mem_traces: Vec<Vec<MemRequest>> = traces
            .iter()
            .enumerate()
            .map(|(t, reqs)| {
                reqs.iter()
                    .map(|&(addr, w)| {
                        if w {
                            MemRequest::write(addr & !63, t)
                        } else {
                            MemRequest::read(addr & !63, t)
                        }
                    })
                    .collect()
            })
            .collect();
        for sched in schedulers(traces.len()) {
            let name = sched.name();
            let report = run_closed_loop(
                DramConfig::ddr3_1600(),
                sched,
                &mem_traces,
                4,
                50_000_000,
            )
            .unwrap();
            prop_assert_eq!(
                report.stats.completed,
                total as u64,
                "{} left requests unserved", name
            );
        }
    }

    /// Latency lower bound: no request can complete faster than the
    /// row-hit column latency.
    #[test]
    fn latency_never_beats_physics(addrs in prop::collection::vec(0u64..(1 << 20), 1..30)) {
        let trace: Vec<MemRequest> = addrs.iter().map(|&a| MemRequest::read(a & !63, 0)).collect();
        let report = run_closed_loop(
            DramConfig::ddr3_1600(),
            Box::new(FrFcfs::new()),
            &[trace],
            4,
            50_000_000,
        )
        .unwrap();
        let t = DramConfig::ddr3_1600().timing;
        let min = (t.t_cl + t.t_bl) as f64;
        prop_assert!(report.stats.avg_latency() >= min);
    }

    /// Throughput upper bound: completed requests per cycle can never
    /// exceed the data-bus burst rate (one per tBL cycles).
    #[test]
    fn throughput_respects_the_bus(addrs in prop::collection::vec(0u64..(1 << 16), 10..60)) {
        let trace: Vec<MemRequest> = addrs.iter().map(|&a| MemRequest::read(a & !63, 0)).collect();
        let report = run_closed_loop(
            DramConfig::ddr3_1600(),
            Box::new(FrFcfs::new()),
            &[trace],
            8,
            50_000_000,
        )
        .unwrap();
        let t = DramConfig::ddr3_1600().timing;
        let max_rpkc = 1000.0 / t.t_bl as f64;
        prop_assert!(report.throughput_rpkc() <= max_rpkc + 1e-9);
    }
}
