//! Property-based tests of the memory controller: liveness and latency
//! bounds under every scheduler.

use ia_dram::DramConfig;
use ia_memctrl::{
    run_closed_loop, run_closed_loop_per_cycle, run_closed_loop_with, Atlas, Bliss, Fcfs, FrFcfs,
    MemRequest, MemoryController, ParBs, RefreshMode, RlScheduler, RlSchedulerConfig, Scheduler,
    Tcm,
};
use proptest::prelude::*;

fn schedulers(threads: usize) -> Vec<Box<dyn Scheduler>> {
    vec![
        Box::new(Fcfs::new()),
        Box::new(FrFcfs::new()),
        Box::new(ParBs::new(threads)),
        Box::new(Atlas::new(threads, 10_000)),
        Box::new(Tcm::new(threads, 10_000, 1_000)),
        Box::new(Bliss::new()),
        Box::new(RlScheduler::new(RlSchedulerConfig::default())),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Liveness: every scheduler completes every request of any random
    /// multi-threaded trace (no starvation, no deadlock).
    #[test]
    fn every_scheduler_drains_every_trace(
        traces in prop::collection::vec(
            prop::collection::vec((0u64..(1 << 22), any::<bool>()), 1..40),
            1..4,
        ),
    ) {
        let total: usize = traces.iter().map(Vec::len).sum();
        let mem_traces: Vec<Vec<MemRequest>> = traces
            .iter()
            .enumerate()
            .map(|(t, reqs)| {
                reqs.iter()
                    .map(|&(addr, w)| {
                        if w {
                            MemRequest::write(addr & !63, t)
                        } else {
                            MemRequest::read(addr & !63, t)
                        }
                    })
                    .collect()
            })
            .collect();
        for sched in schedulers(traces.len()) {
            let name = sched.name();
            let report = run_closed_loop(
                DramConfig::ddr3_1600(),
                sched,
                &mem_traces,
                4,
                50_000_000,
            )
            .unwrap();
            prop_assert_eq!(
                report.stats.completed,
                total as u64,
                "{} left requests unserved", name
            );
        }
    }

    /// Latency lower bound: no request can complete faster than the
    /// row-hit column latency.
    #[test]
    fn latency_never_beats_physics(addrs in prop::collection::vec(0u64..(1 << 20), 1..30)) {
        let trace: Vec<MemRequest> = addrs.iter().map(|&a| MemRequest::read(a & !63, 0)).collect();
        let report = run_closed_loop(
            DramConfig::ddr3_1600(),
            Box::new(FrFcfs::new()),
            &[trace],
            4,
            50_000_000,
        )
        .unwrap();
        let t = DramConfig::ddr3_1600().timing;
        let min = (t.t_cl + t.t_bl) as f64;
        prop_assert!(report.stats.avg_latency() >= min);
    }

    /// Throughput upper bound: completed requests per cycle can never
    /// exceed the data-bus burst rate (one per tBL cycles).
    #[test]
    fn throughput_respects_the_bus(addrs in prop::collection::vec(0u64..(1 << 16), 10..60)) {
        let trace: Vec<MemRequest> = addrs.iter().map(|&a| MemRequest::read(a & !63, 0)).collect();
        let report = run_closed_loop(
            DramConfig::ddr3_1600(),
            Box::new(FrFcfs::new()),
            &[trace],
            8,
            50_000_000,
        )
        .unwrap();
        let t = DramConfig::ddr3_1600().timing;
        let max_rpkc = 1000.0 / t.t_bl as f64;
        prop_assert!(report.throughput_rpkc() <= max_rpkc + 1e-9);
    }

    /// Accounting invariant: at every point of an arbitrary
    /// enqueue/drain interleaving, `outstanding()` equals exactly the
    /// number of accepted requests not yet returned as completions.
    #[test]
    fn outstanding_counts_queue_plus_inflight(
        stream in prop::collection::vec((0u64..(1 << 20), 0u8..8), 1..60),
    ) {
        let mut ctrl =
            MemoryController::new(DramConfig::ddr3_1600(), Box::new(FrFcfs::new())).unwrap();
        let mut accepted: u64 = 0;
        let mut retired: u64 = 0;
        for &(addr, gap) in &stream {
            if ctrl.enqueue(MemRequest::read(addr & !63, 0)).is_ok() {
                accepted += 1;
            }
            for _ in 0..gap {
                retired += ctrl.tick().len() as u64;
                prop_assert_eq!(ctrl.outstanding() as u64, accepted - retired);
            }
        }
        retired += ctrl.run_until_drained(50_000_000).len() as u64;
        prop_assert_eq!(retired, accepted, "drain completes everything");
        prop_assert_eq!(ctrl.outstanding(), 0);
    }

    /// Completions retire in nondecreasing `finished` order, for every
    /// scheduler: the controller retires bursts as their data arrives,
    /// never out of time order.
    #[test]
    fn completions_retire_in_time_order(
        addrs in prop::collection::vec(0u64..(1 << 22), 1..40),
    ) {
        for sched in schedulers(1) {
            let name = sched.name();
            let mut ctrl = MemoryController::new(DramConfig::ddr3_1600(), sched).unwrap()
                .with_queue_capacity(64);
            for &a in &addrs {
                ctrl.enqueue(MemRequest::read(a & !63, 0)).unwrap();
            }
            let done = ctrl.run_until_drained(50_000_000);
            prop_assert_eq!(done.len(), addrs.len());
            for pair in done.windows(2) {
                prop_assert!(
                    pair[0].finished <= pair[1].finished,
                    "{} retired out of order: {} after {}",
                    name, pair[1].finished, pair[0].finished
                );
            }
        }
    }
}

proptest! {
    // The oracle ticks every cycle, so keep the case count modest.
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The tentpole guarantee: the event-skipping engine produces a
    /// report identical (`same_results`) to the per-cycle oracle, for
    /// every scheduler, with refresh enabled and disabled, on arbitrary
    /// seeded multi-threaded workloads.
    #[test]
    fn cycle_skipping_matches_per_cycle_oracle(
        traces in prop::collection::vec(
            prop::collection::vec((0u64..(1 << 22), any::<bool>()), 1..25),
            1..3,
        ),
        refresh in any::<bool>(),
    ) {
        let mem_traces: Vec<Vec<MemRequest>> = traces
            .iter()
            .enumerate()
            .map(|(t, reqs)| {
                reqs.iter()
                    .map(|&(addr, w)| {
                        if w {
                            MemRequest::write(addr & !63, t)
                        } else {
                            MemRequest::read(addr & !63, t)
                        }
                    })
                    .collect()
            })
            .collect();
        let threads = traces.len();
        let mode = || if refresh { RefreshMode::AllBank } else { RefreshMode::Disabled };
        for (fast_sched, slow_sched) in schedulers(threads).into_iter().zip(schedulers(threads)) {
            let name = fast_sched.name();
            let fast_ctrl = MemoryController::new(DramConfig::ddr3_1600(), fast_sched)
                .unwrap()
                .with_refresh_mode(mode());
            let slow_ctrl = MemoryController::new(DramConfig::ddr3_1600(), slow_sched)
                .unwrap()
                .with_refresh_mode(mode());
            let fast = run_closed_loop_with(fast_ctrl, &mem_traces, 4, 2_000_000).unwrap();
            let slow = run_closed_loop_per_cycle(slow_ctrl, &mem_traces, 4, 2_000_000).unwrap();
            prop_assert!(
                fast.same_results(&slow),
                "{} diverged under cycle skipping (refresh={}):\n event-driven: {:?}\n per-cycle:   {:?}",
                name, refresh, fast, slow
            );
            prop_assert!(
                fast.engine.events_processed <= slow.cycles + 1,
                "engine did more ticks than cycles exist"
            );
        }
    }
}
