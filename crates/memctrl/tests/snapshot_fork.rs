//! The `SnapshotState` bit-identity contract on the full controller:
//! save → mutate (keep simulating) → restore → re-run must reproduce the
//! exact completion stream and statistics, and a warm fork must be
//! indistinguishable from cold construction.

use ia_dram::DramConfig;
use ia_memctrl::{
    run_closed_loop, run_closed_loop_with, Completed, FrFcfs, MemRequest, MemoryController,
    Mitigation, RefreshMode, ReliabilityConfig, ReliabilityPipeline,
};
use ia_sim::{Cycle, SimLoop, SnapshotState, StepOutcome};

/// A deterministic read-heavy request pattern spanning several banks and
/// rows (hits, misses, and conflicts).
fn requests(n: u64) -> Vec<MemRequest> {
    (0..n)
        .map(|i| {
            let addr = (i % 7) * 0x4_0000 + (i % 13) * 0x100 + i * 64;
            if i % 5 == 0 {
                MemRequest::write(addr, 0)
            } else {
                MemRequest::read(addr, 0)
            }
        })
        .collect()
}

fn controller() -> MemoryController {
    MemoryController::new(DramConfig::ddr3_1600(), Box::new(FrFcfs::new()))
        .expect("valid preset")
        .with_refresh_mode(RefreshMode::AllBank)
        .with_queue_capacity(64)
}

/// Drains the controller, returning every completion in retirement order.
fn drain(ctrl: &mut MemoryController) -> Vec<Completed> {
    let mut engine = SimLoop::new();
    let mut done: Vec<Completed> = Vec::new();
    let deadline = Cycle::new(50_000_000);
    loop {
        match engine.step(ctrl, &mut done, deadline) {
            StepOutcome::Drained | StepOutcome::DeadlineReached => break,
            StepOutcome::Stalled(report) => panic!("controller stalled: {report}"),
            StepOutcome::Ticked => {}
        }
    }
    done
}

#[test]
fn restore_rewinds_to_a_bit_identical_controller() {
    let mut ctrl = controller();
    for req in requests(48) {
        ctrl.enqueue(req).expect("capacity fits");
    }

    // Warm up: retire roughly half the work, then save.
    let mut engine = SimLoop::new();
    let mut warmup: Vec<Completed> = Vec::new();
    let deadline = Cycle::new(50_000_000);
    while warmup.len() < 24 {
        match engine.step(&mut ctrl, &mut warmup, deadline) {
            StepOutcome::Ticked => {}
            other => panic!("warm-up ended early: {other:?}"),
        }
    }
    let saved = ctrl.snapshot();
    let saved_now = ctrl.now();

    // Mutate: run the tail to completion.
    let first_tail = drain(&mut ctrl);
    assert!(!first_tail.is_empty());
    let first_stats = ctrl.stats().clone();
    assert!(ctrl.now() > saved_now);

    // Restore and re-run: the replay must be byte-identical.
    ctrl.restore(&saved);
    assert_eq!(ctrl.now(), saved_now);
    let second_tail = drain(&mut ctrl);
    assert_eq!(first_tail, second_tail);
    assert_eq!(&first_stats, ctrl.stats());
}

#[test]
fn forks_diverge_without_disturbing_the_parent() {
    let mut parent = controller();
    for req in requests(32) {
        parent.enqueue(req).expect("capacity fits");
    }
    // Warm the parent a little so the fork copies non-trivial state.
    let mut engine = SimLoop::new();
    let mut sink: Vec<Completed> = Vec::new();
    for _ in 0..64 {
        engine.step(&mut parent, &mut sink, Cycle::new(50_000_000));
    }

    let mut fork_a = parent.fork();
    let mut fork_b = parent.fork();
    let tail_a = drain(&mut fork_a);
    // Extra traffic makes fork B genuinely diverge from A.
    fork_b
        .enqueue(MemRequest::read(0x7000, 0))
        .expect("capacity fits");
    let tail_b = drain(&mut fork_b);
    assert_eq!(tail_a.len() + 1, tail_b.len());

    // The parent was not disturbed: its own continuation still retires
    // everything the forks saw from the shared prefix.
    let tail_parent = drain(&mut parent);
    assert_eq!(tail_parent, tail_a);
}

/// The warm-fork pattern the bench sweeps use: one warm base controller,
/// forked per configuration with a swapped scheduler / attached
/// pipeline, must report exactly what cold per-config construction
/// reports.
#[test]
fn warm_fork_matches_cold_construction() {
    let traces = vec![requests(40), requests(40)];

    let warm = MemoryController::new(DramConfig::ddr3_1600(), Box::new(FrFcfs::new()))
        .expect("valid preset");
    let warm_report = run_closed_loop_with(warm.fork(), &traces, 8, 50_000_000).expect("runs");
    let cold_report = run_closed_loop(
        DramConfig::ddr3_1600(),
        Box::new(FrFcfs::new()),
        &traces,
        8,
        50_000_000,
    )
    .expect("runs");
    assert!(warm_report.same_results(&cold_report));

    // With a reliability pipeline attached post-fork (the exp24 shape).
    let config = DramConfig::ddr3_1600();
    let reliability = ReliabilityConfig {
        mitigation: Mitigation::Full,
        spare_rows_per_bank: 4,
        quarantine_threshold: 0,
    };
    let pipeline = |cfg: &DramConfig| {
        ReliabilityPipeline::new(
            reliability,
            ia_faults::FaultPlan::new(7).transient(0.01),
            &cfg.geometry,
        )
    };
    let base = MemoryController::new(config.clone(), Box::new(FrFcfs::new()))
        .expect("valid preset")
        .with_refresh_mode(RefreshMode::AllBank);
    let warm_rel = run_closed_loop_with(
        base.fork().with_reliability(pipeline(&config)),
        &traces,
        8,
        50_000_000,
    )
    .expect("runs");
    let cold_rel = run_closed_loop_with(
        MemoryController::new(config.clone(), Box::new(FrFcfs::new()))
            .expect("valid preset")
            .with_refresh_mode(RefreshMode::AllBank)
            .with_reliability(pipeline(&config)),
        &traces,
        8,
        50_000_000,
    )
    .expect("runs");
    assert!(warm_rel.same_results(&cold_rel));
    assert_eq!(warm_rel.reliability, cold_rel.reliability);
}
