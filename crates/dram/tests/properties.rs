//! Property-based tests of the DRAM substrate's core invariants.

use ia_dram::{
    AccessKind, AddressMapping, Command, Cycle, DramConfig, DramModule, Geometry, PhysAddr,
};
use proptest::prelude::*;

proptest! {
    /// Address decode/encode is a bijection on line-aligned addresses in
    /// capacity, for both mappings.
    #[test]
    fn address_mapping_roundtrips(line in 0u64..(1 << 26)) {
        let geo = Geometry::default();
        for mapping in [AddressMapping::RowInterleaved, AddressMapping::BankInterleaved] {
            let addr = PhysAddr::new(line * geo.column_bytes);
            let loc = mapping.decode(addr, &geo);
            prop_assert!(loc.row < geo.rows_per_bank);
            prop_assert!(loc.column < geo.columns_per_row());
            let back = mapping.encode(&loc, &geo);
            prop_assert_eq!(back, addr);
        }
    }

    /// Whatever `ready_at` returns for an access's next command is
    /// actually issuable at that cycle — under any interleaving of random
    /// accesses.
    #[test]
    fn ready_at_is_always_issuable(addrs in prop::collection::vec(0u64..(1 << 24), 1..40)) {
        let mut dram = DramModule::new(DramConfig::ddr3_1600()).unwrap();
        let mut now = Cycle::ZERO;
        for a in addrs {
            let loc = dram.decode(PhysAddr::new(a & !63));
            let cmd = dram.next_needed(&loc, AccessKind::Read);
            let at = dram.ready_at(&loc, &cmd).max(now);
            prop_assert!(dram.issue(&loc, cmd, at).is_ok(), "cmd {cmd} at {at}");
            now = at;
        }
    }

    /// The open-page convenience interface always completes, data_ready
    /// strictly after issue, and never earlier than the requested cycle.
    #[test]
    fn access_completes_in_order(
        addrs in prop::collection::vec(0u64..(1 << 22), 1..30),
        write_mask in 0u32..,
    ) {
        let mut dram = DramModule::new(DramConfig::ddr3_1600()).unwrap();
        let mut now = Cycle::ZERO;
        for (i, a) in addrs.iter().enumerate() {
            let kind = if write_mask >> (i % 32) & 1 == 1 { AccessKind::Write } else { AccessKind::Read };
            let r = dram.access(PhysAddr::new(a & !63), kind, now).unwrap();
            prop_assert!(r.data_ready > r.issued_at);
            prop_assert!(r.issued_at >= now);
            now = r.data_ready;
        }
        let s = dram.stats();
        prop_assert_eq!(s.reads + s.writes, addrs.len() as u64);
    }

    /// Row-buffer classification counts partition the accesses.
    #[test]
    fn outcome_counts_partition(addrs in prop::collection::vec(0u64..(1 << 20), 1..50)) {
        let mut dram = DramModule::new(DramConfig::ddr3_1600()).unwrap();
        let mut now = Cycle::ZERO;
        for a in &addrs {
            let r = dram.access(PhysAddr::new(a & !63), AccessKind::Read, now).unwrap();
            now = r.data_ready;
        }
        let s = dram.stats();
        prop_assert_eq!(s.row_hits + s.row_misses + s.row_conflicts, addrs.len() as u64);
        let rate = s.row_hit_rate();
        prop_assert!((0.0..=1.0).contains(&rate));
    }

    /// Energy is monotone: every access strictly increases dynamic energy.
    #[test]
    fn energy_is_monotone(addrs in prop::collection::vec(0u64..(1 << 20), 2..20)) {
        let mut dram = DramModule::new(DramConfig::ddr3_1600()).unwrap();
        let mut now = Cycle::ZERO;
        let mut last = 0.0f64;
        for a in addrs {
            let r = dram.access(PhysAddr::new(a & !63), AccessKind::Read, now).unwrap();
            now = r.data_ready;
            let e = dram.energy().dynamic_pj();
            prop_assert!(e > last);
            last = e;
        }
    }

    /// A refresh never leaves a rank in a state that rejects future use.
    #[test]
    fn refresh_then_access_always_works(a in 0u64..(1 << 22), at in 0u64..10_000) {
        let mut dram = DramModule::new(DramConfig::ddr3_1600()).unwrap();
        let done = dram.refresh_rank(0, 0, Cycle::new(at)).unwrap();
        let r = dram.access(PhysAddr::new(a & !63), AccessKind::Read, done).unwrap();
        prop_assert!(r.data_ready > done);
    }
}

/// Issuing the same command twice at the same cycle must fail the second
/// time (the state machines are not idempotent).
#[test]
fn double_issue_is_rejected() {
    let mut dram = DramModule::new(DramConfig::ddr3_1600()).unwrap();
    let loc = dram.decode(PhysAddr::new(0));
    dram.issue(&loc, Command::Activate { row: loc.row }, Cycle::ZERO)
        .unwrap();
    assert!(dram
        .issue(&loc, Command::Activate { row: loc.row }, Cycle::ZERO)
        .is_err());
}
