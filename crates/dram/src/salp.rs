//! Subarray-Level Parallelism (Kim+, ISCA 2012): a bank is physically
//! many subarrays, each with its own local row buffer; exposing them
//! lets accesses to *different subarrays of the same bank* overlap,
//! turning many row-buffer conflicts into (cheaper) subarray misses.
//!
//! This module models a single bank in both organizations:
//!
//! * conventional — one global row buffer, serialized tRC between any two
//!   activations;
//! * SALP (MASA variant) — per-subarray row state: activations to
//!   different subarrays are gated only by a short inter-subarray gap,
//!   and each subarray's open row keeps serving hits.

use crate::{Cycle, TimingParams};

/// How the bank exposes its subarrays.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BankOrganization {
    /// One logical row buffer: every conflicting activate pays full tRC.
    Conventional,
    /// Multiple activated subarrays (MASA): per-subarray row buffers.
    Salp,
}

/// A single-bank timing model at access granularity (the unit the SALP
/// paper evaluates), returning per-access service times.
#[derive(Debug, Clone)]
pub struct SalpBank {
    organization: BankOrganization,
    timing: TimingParams,
    subarrays: usize,
    rows_per_subarray: u64,
    /// Open row per subarray (conventional mode uses slot 0 for the single
    /// global row buffer).
    open: Vec<Option<u64>>,
    /// Earliest next activate, per subarray.
    next_act: Vec<Cycle>,
    /// Global activate gate (tRC in conventional mode; inter-subarray gap
    /// in SALP mode).
    global_gate: Cycle,
    /// Statistics.
    hits: u64,
    misses: u64,
    conflicts: u64,
}

impl SalpBank {
    /// Creates a bank with `subarrays` subarrays of `rows_per_subarray`
    /// rows each.
    ///
    /// # Panics
    ///
    /// Panics if `subarrays == 0` or `rows_per_subarray == 0`.
    #[must_use]
    pub fn new(
        organization: BankOrganization,
        timing: TimingParams,
        subarrays: usize,
        rows_per_subarray: u64,
    ) -> Self {
        assert!(
            subarrays > 0 && rows_per_subarray > 0,
            "bank must have rows"
        );
        SalpBank {
            organization,
            timing,
            subarrays,
            rows_per_subarray,
            open: vec![None; subarrays],
            next_act: vec![Cycle::ZERO; subarrays],
            global_gate: Cycle::ZERO,
            hits: 0,
            misses: 0,
            conflicts: 0,
        }
    }

    /// The organization under test.
    #[must_use]
    pub fn organization(&self) -> BankOrganization {
        self.organization
    }

    /// (hits, misses, conflicts) so far.
    #[must_use]
    pub fn outcome_counts(&self) -> (u64, u64, u64) {
        (self.hits, self.misses, self.conflicts)
    }

    fn slot_of(&self, row: u64) -> usize {
        match self.organization {
            BankOrganization::Conventional => 0,
            BankOrganization::Salp => ((row / self.rows_per_subarray) as usize) % self.subarrays,
        }
    }

    /// Serves a read of `row` no earlier than `now`; returns the cycle the
    /// data burst completes.
    pub fn read(&mut self, row: u64, now: Cycle) -> Cycle {
        let t = self.timing;
        let slot = self.slot_of(row);
        match self.open[slot] {
            Some(open) if open == row => {
                // Row hit: the open row serves immediately (column path
                // only; the activate gates do not apply to hits).
                self.hits += 1;
                now + (t.t_cl + t.t_bl)
            }
            Some(_) => {
                // Conflict: precharge + activate in this (sub)array. The
                // global gate is tRC-spaced in conventional mode but only
                // tRRD-spaced under SALP (set in `finish_activate`).
                self.conflicts += 1;
                let at = now.max(self.next_act[slot]).max(self.global_gate);
                let ready = at + (t.t_rp + t.t_rcd + t.t_cl + t.t_bl);
                self.finish_activate(slot, row, at + t.t_rp);
                ready
            }
            None => {
                self.misses += 1;
                let at = now.max(self.next_act[slot]).max(self.global_gate);
                let ready = at + (t.t_rcd + t.t_cl + t.t_bl);
                self.finish_activate(slot, row, at);
                ready
            }
        }
    }

    fn finish_activate(&mut self, slot: usize, row: u64, act_at: Cycle) {
        let t = self.timing;
        self.open[slot] = Some(row);
        // This (sub)array cannot re-activate before tRC.
        self.next_act[slot] = act_at + t.t_rc();
        self.global_gate = match self.organization {
            // Conventional: the whole bank serializes on tRC.
            BankOrganization::Conventional => act_at + t.t_rc(),
            // SALP/MASA: the shared global row-address latch only needs a
            // tRRD-class gap between subarray activations.
            BankOrganization::Salp => act_at + t.t_rrd,
        };
    }
}

/// Serves `rows` as dependent accesses (each waits for the previous) and
/// returns total cycles — the SALP paper's conflict-stream comparison.
pub fn serve_stream(bank: &mut SalpBank, rows: &[u64]) -> u64 {
    let mut now = Cycle::ZERO;
    for &row in rows {
        now = bank.read(row, now);
    }
    now.as_u64()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DramConfig;

    fn timing() -> TimingParams {
        DramConfig::ddr3_1600().timing
    }

    fn bank(org: BankOrganization) -> SalpBank {
        SalpBank::new(org, timing(), 8, 512)
    }

    #[test]
    fn hits_cost_the_same_in_both_organizations() {
        for org in [BankOrganization::Conventional, BankOrganization::Salp] {
            let mut b = bank(org);
            let first = b.read(0, Cycle::ZERO);
            let second = b.read(0, first);
            assert_eq!(second - first, timing().t_cl + timing().t_bl, "{org:?}");
        }
    }

    #[test]
    fn salp_overlaps_cross_subarray_conflicts() {
        // Alternate rows in different subarrays (rows 0 and 512): the
        // conventional bank treats this as a conflict ping-pong at tRC
        // rate, SALP keeps both rows open after the first lap.
        let stream: Vec<u64> = (0..64).map(|i| if i % 2 == 0 { 0 } else { 512 }).collect();
        let conv = serve_stream(&mut bank(BankOrganization::Conventional), &stream);
        let salp = serve_stream(&mut bank(BankOrganization::Salp), &stream);
        assert!(
            (salp as f64) < conv as f64 * 0.6,
            "SALP {salp} should be far below conventional {conv}"
        );
        // SALP sees hits after the first pair; conventional sees conflicts.
        let mut b = bank(BankOrganization::Salp);
        serve_stream(&mut b, &stream);
        let (hits, misses, conflicts) = b.outcome_counts();
        assert_eq!(misses, 2);
        assert_eq!(conflicts, 0);
        assert_eq!(hits, 62);
    }

    #[test]
    fn same_subarray_conflicts_gain_nothing() {
        // Rows 0 and 1 share subarray 0: SALP cannot help.
        let stream: Vec<u64> = (0..32).map(|i| i % 2).collect();
        let conv = serve_stream(&mut bank(BankOrganization::Conventional), &stream);
        let salp = serve_stream(&mut bank(BankOrganization::Salp), &stream);
        assert_eq!(conv, salp, "intra-subarray conflicts are identical");
    }

    #[test]
    fn sequential_single_row_stream_is_identical() {
        let stream = vec![7u64; 50];
        let conv = serve_stream(&mut bank(BankOrganization::Conventional), &stream);
        let salp = serve_stream(&mut bank(BankOrganization::Salp), &stream);
        assert_eq!(conv, salp);
    }

    #[test]
    #[should_panic(expected = "bank must have rows")]
    fn zero_subarrays_panics() {
        let _ = SalpBank::new(BankOrganization::Salp, timing(), 0, 512);
    }
}
