//! Fault-injection observation points.
//!
//! A fault model (e.g. `ia-faults`) needs to see the physical event
//! stream — which rows are activated (disturbance), read, rewritten,
//! refreshed — to decide where flips land. The module cannot hold the
//! injector itself (`DramModule` is `Clone`, injectors are stateful
//! trait objects), so it records a bounded-cost **event log** that the
//! memory controller drains each tick and forwards to its injector.
//! Injection is off by default and costs one branch per command.

use crate::Cycle;

/// One injection-relevant DRAM event. Coordinates identify the physical
/// row (flat bank index, as in [`CommandEvent`](crate::CommandEvent));
/// `column` is the burst column, which the reliability pipeline treats
/// as the protected-codeword index within the row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectEvent {
    /// A row was opened — the disturbance (RowHammer) and charge-restore
    /// event.
    Activate {
        /// Issue cycle.
        at: Cycle,
        /// Channel index.
        channel: usize,
        /// Rank index.
        rank: usize,
        /// Flat bank index.
        bank: usize,
        /// Activated row.
        row: u64,
    },
    /// A column read from the open row.
    Read {
        /// Issue cycle.
        at: Cycle,
        /// Channel index.
        channel: usize,
        /// Rank index.
        rank: usize,
        /// Flat bank index.
        bank: usize,
        /// Open row being read.
        row: u64,
        /// Burst column (codeword index).
        column: u64,
    },
    /// A column write into the open row — the scrub path.
    Write {
        /// Issue cycle.
        at: Cycle,
        /// Channel index.
        channel: usize,
        /// Rank index.
        rank: usize,
        /// Flat bank index.
        bank: usize,
        /// Open row being written.
        row: u64,
        /// Burst column (codeword index).
        column: u64,
    },
    /// A rank-level auto-refresh command.
    Refresh {
        /// Issue cycle.
        at: Cycle,
        /// Channel index.
        channel: usize,
        /// Rank index.
        rank: usize,
    },
}

/// The event log behind [`DramModule::enable_injection`]
/// (crate-internal storage; the public API is on the module).
///
/// [`DramModule::enable_injection`]: crate::DramModule::enable_injection
#[derive(Debug, Clone, Default)]
pub(crate) struct InjectLog {
    enabled: bool,
    events: Vec<InjectEvent>,
}

impl InjectLog {
    pub(crate) fn enable(&mut self) {
        self.enabled = true;
    }

    pub(crate) fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Records one event; free when disabled (`record_with` idiom from
    /// `TraceBuffer`: the closure only runs if someone is listening).
    #[inline]
    pub(crate) fn record_with(&mut self, make: impl FnOnce() -> InjectEvent) {
        if self.enabled {
            self.events.push(make());
        }
    }

    /// Moves all pending events into `out`, preserving order.
    pub(crate) fn drain_into(&mut self, out: &mut Vec<InjectEvent>) {
        out.append(&mut self.events);
    }
}
