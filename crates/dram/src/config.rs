//! Device configuration: geometry, timing, and energy parameters, with
//! presets for common device generations and a builder for custom parts.

use std::fmt;

use crate::error::ConfigError;

/// Physical organization of a DRAM module.
///
/// # Examples
///
/// ```
/// use ia_dram::Geometry;
/// let geo = Geometry::default();
/// assert!(geo.capacity_bytes() > 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Geometry {
    /// Independent memory channels.
    pub channels: usize,
    /// Ranks per channel.
    pub ranks: usize,
    /// Bank groups per rank (1 for pre-DDR4 parts).
    pub bank_groups: usize,
    /// Banks per bank group.
    pub banks_per_group: usize,
    /// Subarrays per bank (relevant to RowClone-FPM / LISA / SALP).
    pub subarrays_per_bank: usize,
    /// Rows per bank.
    pub rows_per_bank: u64,
    /// Row (page) size in bytes.
    pub row_bytes: u64,
    /// Column access granule in bytes (one burst, typically a cache line).
    pub column_bytes: u64,
}

impl Geometry {
    /// Total banks in the module across all channels/ranks/groups.
    #[must_use]
    pub fn total_banks(&self) -> usize {
        self.channels * self.ranks * self.bank_groups * self.banks_per_group
    }

    /// Banks per rank.
    #[must_use]
    pub fn banks_per_rank(&self) -> usize {
        self.bank_groups * self.banks_per_group
    }

    /// Columns (bursts) per row.
    #[must_use]
    pub fn columns_per_row(&self) -> u64 {
        self.row_bytes / self.column_bytes
    }

    /// Rows per subarray.
    #[must_use]
    pub fn rows_per_subarray(&self) -> u64 {
        self.rows_per_bank / self.subarrays_per_bank as u64
    }

    /// Subarray index holding the given row.
    #[must_use]
    pub fn subarray_of_row(&self, row: u64) -> usize {
        (row / self.rows_per_subarray()) as usize
    }

    /// Total capacity in bytes.
    #[must_use]
    pub fn capacity_bytes(&self) -> u64 {
        self.total_banks() as u64 * self.rows_per_bank * self.row_bytes
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if any dimension is zero, a size is not a
    /// power of two, or the row/column sizes are inconsistent.
    pub fn validate(&self) -> Result<(), ConfigError> {
        let dims = [
            ("channels", self.channels),
            ("ranks", self.ranks),
            ("bank_groups", self.bank_groups),
            ("banks_per_group", self.banks_per_group),
            ("subarrays_per_bank", self.subarrays_per_bank),
        ];
        for (name, v) in dims {
            if v == 0 {
                return Err(ConfigError::zero_dimension(name));
            }
        }
        if self.rows_per_bank == 0 || self.row_bytes == 0 || self.column_bytes == 0 {
            return Err(ConfigError::zero_dimension("rows/row_bytes/column_bytes"));
        }
        for (name, v) in [
            ("rows_per_bank", self.rows_per_bank),
            ("row_bytes", self.row_bytes),
            ("column_bytes", self.column_bytes),
        ] {
            if !v.is_power_of_two() {
                return Err(ConfigError::not_power_of_two(name, v));
            }
        }
        if self.column_bytes > self.row_bytes {
            return Err(ConfigError::inconsistent("column_bytes exceeds row_bytes"));
        }
        if !self
            .rows_per_bank
            .is_multiple_of(self.subarrays_per_bank as u64)
        {
            return Err(ConfigError::inconsistent(
                "rows_per_bank must be divisible by subarrays_per_bank",
            ));
        }
        Ok(())
    }
}

impl Default for Geometry {
    /// A modest DDR4-like module: 1 channel × 1 rank × 4 groups × 4 banks,
    /// 32Ki rows of 8 KiB (4 GiB total), 64 subarrays per bank.
    fn default() -> Self {
        Geometry {
            channels: 1,
            ranks: 1,
            bank_groups: 4,
            banks_per_group: 4,
            subarrays_per_bank: 64,
            rows_per_bank: 32 * 1024,
            row_bytes: 8 * 1024,
            column_bytes: 64,
        }
    }
}

/// JEDEC-style timing parameters, in device clock cycles.
///
/// Only the constraints that matter at the command-scheduling level are
/// modelled; they are the ones that determine the latency and bandwidth
/// behaviour all the reproduced experiments rest on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimingParams {
    /// Clock period in nanoseconds.
    pub tck_ns_x1000: u64,
    /// ACT to column command (RAS-to-CAS delay).
    pub t_rcd: u64,
    /// Column read command to first data (CAS latency).
    pub t_cl: u64,
    /// Column write command to first data (write latency).
    pub t_cwl: u64,
    /// PRE to ACT on the same bank.
    pub t_rp: u64,
    /// ACT to PRE on the same bank (row restoration).
    pub t_ras: u64,
    /// Write recovery: last write data to PRE.
    pub t_wr: u64,
    /// Read to PRE.
    pub t_rtp: u64,
    /// Column-to-column (burst gap), same bank group.
    pub t_ccd: u64,
    /// Burst length in cycles (BL/2 for DDR).
    pub t_bl: u64,
    /// ACT to ACT, different banks, same rank.
    pub t_rrd: u64,
    /// Four-activate window per rank.
    pub t_faw: u64,
    /// Refresh cycle time (rank busy during refresh).
    pub t_rfc: u64,
    /// Average refresh interval.
    pub t_refi: u64,
    /// Write-to-read turnaround on the shared data bus.
    pub t_wtr: u64,
}

impl TimingParams {
    /// Clock period in nanoseconds.
    #[must_use]
    pub fn tck_ns(&self) -> f64 {
        self.tck_ns_x1000 as f64 / 1000.0
    }

    /// ACT-to-ACT on the same bank (`tRAS + tRP`), a.k.a. `tRC`.
    #[must_use]
    pub fn t_rc(&self) -> u64 {
        self.t_ras + self.t_rp
    }

    /// Random access latency for a closed bank: ACT + tRCD + tCL + burst.
    #[must_use]
    pub fn closed_row_read_latency(&self) -> u64 {
        self.t_rcd + self.t_cl + self.t_bl
    }

    /// Validates that every constraint is non-zero where required.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] when a timing field is implausibly zero or
    /// ordering relationships are violated (e.g., `tRAS < tRCD`).
    pub fn validate(&self) -> Result<(), ConfigError> {
        if self.tck_ns_x1000 == 0 {
            return Err(ConfigError::zero_dimension("tck_ns"));
        }
        for (name, v) in [
            ("t_rcd", self.t_rcd),
            ("t_cl", self.t_cl),
            ("t_rp", self.t_rp),
            ("t_ras", self.t_ras),
            ("t_bl", self.t_bl),
            ("t_rfc", self.t_rfc),
            ("t_refi", self.t_refi),
        ] {
            if v == 0 {
                return Err(ConfigError::zero_dimension(name));
            }
        }
        if self.t_ras < self.t_rcd {
            return Err(ConfigError::inconsistent("tRAS must be >= tRCD"));
        }
        if self.t_faw < self.t_rrd {
            return Err(ConfigError::inconsistent("tFAW must be >= tRRD"));
        }
        Ok(())
    }
}

impl Default for TimingParams {
    fn default() -> Self {
        DramConfig::ddr4_2400().timing
    }
}

/// Per-event energy parameters in picojoules, plus static power.
///
/// Calibrated to the published DDR3/DDR4 power-model ballpark: an
/// ACT/PRE pair costs nanojoules, a column burst costs hundreds of
/// picojoules in the array and several times that in I/O — which is why
/// moving data off-chip dominates (the paper's central observation).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnergyParams {
    /// Energy of one ACT+PRE pair (row open + close), pJ.
    pub act_pre_pj: f64,
    /// Array energy of one column read burst, pJ.
    pub read_pj: f64,
    /// Array energy of one column write burst, pJ.
    pub write_pj: f64,
    /// Off-chip I/O energy per bit transferred, pJ.
    pub io_pj_per_bit: f64,
    /// Energy of one per-rank refresh command, pJ.
    pub refresh_pj: f64,
    /// Background (standby) power per rank, milliwatts.
    pub background_mw: f64,
}

impl Default for EnergyParams {
    fn default() -> Self {
        EnergyParams {
            act_pre_pj: 1900.0,
            read_pj: 450.0,
            write_pj: 470.0,
            io_pj_per_bit: 4.0,
            refresh_pj: 27000.0,
            background_mw: 60.0,
        }
    }
}

/// Complete configuration of a DRAM module: geometry + timing + energy.
///
/// # Examples
///
/// ```
/// use ia_dram::DramConfig;
/// let cfg = DramConfig::ddr4_2400();
/// assert!(cfg.validate().is_ok());
/// assert!(cfg.timing.t_rcd > 0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct DramConfig {
    /// Module organization.
    pub geometry: Geometry,
    /// Timing constraints in device cycles.
    pub timing: TimingParams,
    /// Energy model parameters.
    pub energy: EnergyParams,
    /// Human-readable part name.
    pub name: String,
}

impl DramConfig {
    /// DDR3-1600 (11-11-11): the generation RowClone and Ambit evaluate on.
    #[must_use]
    pub fn ddr3_1600() -> Self {
        DramConfig {
            geometry: Geometry {
                channels: 1,
                ranks: 1,
                bank_groups: 1,
                banks_per_group: 8,
                subarrays_per_bank: 64,
                rows_per_bank: 32 * 1024,
                row_bytes: 8 * 1024,
                column_bytes: 64,
            },
            timing: TimingParams {
                tck_ns_x1000: 1250, // 800 MHz clock, 1600 MT/s
                t_rcd: 11,
                t_cl: 11,
                t_cwl: 8,
                t_rp: 11,
                t_ras: 28,
                t_wr: 12,
                t_rtp: 6,
                t_ccd: 4,
                t_bl: 4,
                t_rrd: 5,
                t_faw: 24,
                t_rfc: 208,
                t_refi: 6240,
                t_wtr: 6,
            },
            energy: EnergyParams::default(),
            name: "DDR3-1600".to_owned(),
        }
    }

    /// DDR4-2400 (17-17-17) with bank groups.
    #[must_use]
    pub fn ddr4_2400() -> Self {
        DramConfig {
            geometry: Geometry::default(),
            timing: TimingParams {
                tck_ns_x1000: 833, // 1200 MHz clock, 2400 MT/s
                t_rcd: 17,
                t_cl: 17,
                t_cwl: 12,
                t_rp: 17,
                t_ras: 39,
                t_wr: 18,
                t_rtp: 9,
                t_ccd: 6,
                t_bl: 4,
                t_rrd: 6,
                t_faw: 26,
                t_rfc: 420,
                t_refi: 9360,
                t_wtr: 9,
            },
            energy: EnergyParams::default(),
            name: "DDR4-2400".to_owned(),
        }
    }

    /// LPDDR4-3200-like mobile part (higher latency in cycles, lower I/O
    /// energy): used by the mobile-workload energy experiment (E1).
    #[must_use]
    pub fn lpddr4_3200() -> Self {
        DramConfig {
            geometry: Geometry {
                channels: 2,
                ranks: 1,
                bank_groups: 1,
                banks_per_group: 8,
                subarrays_per_bank: 64,
                rows_per_bank: 32 * 1024,
                row_bytes: 4 * 1024,
                column_bytes: 64,
            },
            timing: TimingParams {
                tck_ns_x1000: 625, // 1600 MHz clock, 3200 MT/s
                t_rcd: 29,
                t_cl: 28,
                t_cwl: 14,
                t_rp: 34,
                t_ras: 67,
                t_wr: 29,
                t_rtp: 12,
                t_ccd: 8,
                t_bl: 8,
                t_rrd: 10,
                t_faw: 64,
                t_rfc: 448,
                t_refi: 6240,
                t_wtr: 12,
            },
            energy: EnergyParams {
                act_pre_pj: 1100.0,
                read_pj: 250.0,
                write_pj: 260.0,
                io_pj_per_bit: 2.0,
                refresh_pj: 18000.0,
                background_mw: 25.0,
            },
            name: "LPDDR4-3200".to_owned(),
        }
    }

    /// Starts a builder seeded from this configuration.
    #[must_use]
    pub fn to_builder(&self) -> DramConfigBuilder {
        DramConfigBuilder { cfg: self.clone() }
    }

    /// Validates geometry and timing together.
    ///
    /// # Errors
    ///
    /// Propagates [`ConfigError`] from [`Geometry::validate`] and
    /// [`TimingParams::validate`].
    pub fn validate(&self) -> Result<(), ConfigError> {
        self.geometry.validate()?;
        self.timing.validate()
    }
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig::ddr4_2400()
    }
}

impl fmt::Display for DramConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({} GiB, {} banks, {:.0} MHz)",
            self.name,
            self.geometry.capacity_bytes() >> 30,
            self.geometry.total_banks(),
            1000.0 / self.timing.tck_ns()
        )
    }
}

/// Builder for customized [`DramConfig`] values (C-BUILDER).
///
/// # Examples
///
/// ```
/// use ia_dram::DramConfig;
/// let cfg = DramConfig::ddr4_2400()
///     .to_builder()
///     .channels(2)
///     .t_rcd(12)
///     .build()?;
/// assert_eq!(cfg.geometry.channels, 2);
/// assert_eq!(cfg.timing.t_rcd, 12);
/// # Ok::<(), ia_dram::ConfigError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DramConfigBuilder {
    cfg: DramConfig,
}

impl DramConfigBuilder {
    /// Sets the number of channels.
    #[must_use]
    pub fn channels(mut self, n: usize) -> Self {
        self.cfg.geometry.channels = n;
        self
    }

    /// Sets the number of ranks per channel.
    #[must_use]
    pub fn ranks(mut self, n: usize) -> Self {
        self.cfg.geometry.ranks = n;
        self
    }

    /// Sets rows per bank.
    #[must_use]
    pub fn rows_per_bank(mut self, n: u64) -> Self {
        self.cfg.geometry.rows_per_bank = n;
        self
    }

    /// Sets subarrays per bank.
    #[must_use]
    pub fn subarrays_per_bank(mut self, n: usize) -> Self {
        self.cfg.geometry.subarrays_per_bank = n;
        self
    }

    /// Sets row size in bytes.
    #[must_use]
    pub fn row_bytes(mut self, n: u64) -> Self {
        self.cfg.geometry.row_bytes = n;
        self
    }

    /// Overrides tRCD.
    #[must_use]
    pub fn t_rcd(mut self, v: u64) -> Self {
        self.cfg.timing.t_rcd = v;
        self
    }

    /// Overrides tRAS.
    #[must_use]
    pub fn t_ras(mut self, v: u64) -> Self {
        self.cfg.timing.t_ras = v;
        self
    }

    /// Overrides tRP.
    #[must_use]
    pub fn t_rp(mut self, v: u64) -> Self {
        self.cfg.timing.t_rp = v;
        self
    }

    /// Overrides tRFC (refresh cycle time).
    #[must_use]
    pub fn t_rfc(mut self, v: u64) -> Self {
        self.cfg.timing.t_rfc = v;
        self
    }

    /// Overrides tREFI (refresh interval).
    #[must_use]
    pub fn t_refi(mut self, v: u64) -> Self {
        self.cfg.timing.t_refi = v;
        self
    }

    /// Overrides the part name.
    #[must_use]
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.cfg.name = name.into();
        self
    }

    /// Finishes the builder, validating the result.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the assembled configuration is invalid.
    pub fn build(self) -> Result<DramConfig, ConfigError> {
        self.cfg.validate()?;
        Ok(self.cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        for cfg in [
            DramConfig::ddr3_1600(),
            DramConfig::ddr4_2400(),
            DramConfig::lpddr4_3200(),
        ] {
            cfg.validate()
                .unwrap_or_else(|e| panic!("{} invalid: {e}", cfg.name));
        }
    }

    #[test]
    fn geometry_derived_quantities() {
        let geo = Geometry::default();
        assert_eq!(geo.total_banks(), 16);
        assert_eq!(geo.banks_per_rank(), 16);
        assert_eq!(geo.columns_per_row(), 128);
        assert_eq!(geo.rows_per_subarray(), 512);
        assert_eq!(geo.subarray_of_row(0), 0);
        assert_eq!(geo.subarray_of_row(512), 1);
        assert_eq!(geo.capacity_bytes(), 16 * 32 * 1024 * 8 * 1024);
    }

    #[test]
    fn builder_overrides_and_validates() {
        let cfg = DramConfig::ddr3_1600()
            .to_builder()
            .channels(4)
            .ranks(2)
            .t_rcd(8)
            .name("custom")
            .build()
            .expect("valid build");
        assert_eq!(cfg.geometry.channels, 4);
        assert_eq!(cfg.geometry.ranks, 2);
        assert_eq!(cfg.timing.t_rcd, 8);
        assert_eq!(cfg.name, "custom");
    }

    #[test]
    fn builder_rejects_zero_channels() {
        let err = DramConfig::default().to_builder().channels(0).build();
        assert!(err.is_err());
    }

    #[test]
    fn builder_rejects_non_power_of_two_rows() {
        let err = DramConfig::default()
            .to_builder()
            .rows_per_bank(3000)
            .build();
        assert!(err.is_err());
    }

    #[test]
    fn timing_rejects_ras_below_rcd() {
        let mut t = DramConfig::ddr4_2400().timing;
        t.t_ras = t.t_rcd - 1;
        assert!(t.validate().is_err());
    }

    #[test]
    fn trc_is_ras_plus_rp() {
        let t = DramConfig::ddr3_1600().timing;
        assert_eq!(t.t_rc(), t.t_ras + t.t_rp);
    }

    #[test]
    fn tck_ns_matches_data_rate() {
        let t = DramConfig::ddr3_1600().timing;
        assert!((t.tck_ns() - 1.25).abs() < 1e-9);
    }

    #[test]
    fn display_mentions_name() {
        let s = format!("{}", DramConfig::ddr4_2400());
        assert!(s.contains("DDR4-2400"));
    }

    #[test]
    fn geometry_rejects_indivisible_subarrays() {
        let geo = Geometry {
            subarrays_per_bank: 3,
            ..Geometry::default()
        };
        assert!(geo.validate().is_err());
    }
}
