//! Rank-level constraints: activate throttling (tRRD, tFAW) and refresh.

use crate::error::{IssueError, IssueErrorReason};
use crate::flat::BankStates;
use crate::{Bank, Command, Cycle, IssueOutcome, TimingParams};

/// Fixed-size ring of the most recent activate issue times, sized to the
/// tFAW window (four activates). Replaces an unbounded `VecDeque`: the
/// gate only ever needs the oldest of the last four activates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct ActWindow {
    slots: [Cycle; 4],
    total: u64,
}

impl ActWindow {
    fn new() -> Self {
        ActWindow {
            slots: [Cycle::ZERO; 4],
            total: 0,
        }
    }

    fn push(&mut self, now: Cycle) {
        self.slots[(self.total % 4) as usize] = now;
        self.total += 1;
    }

    /// With 4 activates inside the window, the next is legal tFAW after
    /// the oldest of the last 4.
    fn gate(&self, timing: &TimingParams) -> Cycle {
        if self.total >= 4 {
            self.slots[(self.total % 4) as usize] + timing.t_faw
        } else {
            Cycle::ZERO
        }
    }
}

/// A rank: a set of banks sharing activate-rate limits and refresh.
///
/// Bank state is stored struct-of-arrays (see [`BankStates`]) so the
/// controller's per-cycle timing queries walk contiguous memory.
///
/// # Examples
///
/// ```
/// use ia_dram::{Command, Cycle, DramConfig, Rank};
/// let cfg = DramConfig::ddr3_1600();
/// let mut rank = Rank::new(cfg.geometry.banks_per_rank());
/// rank.issue(0, Command::Activate { row: 1 }, Cycle::ZERO, &cfg.timing)?;
/// // A second activate to another bank must wait tRRD.
/// assert!(!rank.can_issue(1, &Command::Activate { row: 1 }, Cycle::ZERO, &cfg.timing));
/// # Ok::<(), ia_dram::IssueError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Rank {
    banks: BankStates,
    /// Issue times of recent activates (the tFAW window).
    recent_acts: ActWindow,
    /// Earliest next activate due to tRRD.
    next_act_rrd: Cycle,
    /// Rank busy (refreshing) until this cycle.
    refresh_until: Cycle,
    refreshes: u64,
}

impl Rank {
    /// Creates a rank with `banks` idle banks.
    #[must_use]
    pub fn new(banks: usize) -> Self {
        Rank {
            banks: BankStates::new(banks),
            recent_acts: ActWindow::new(),
            next_act_rrd: Cycle::ZERO,
            refresh_until: Cycle::ZERO,
            refreshes: 0,
        }
    }

    /// Number of banks in the rank.
    #[must_use]
    pub fn bank_count(&self) -> usize {
        self.banks.len()
    }

    /// Snapshot view of a bank (a copy of its state; cold path — hot
    /// callers use [`Rank::open_row`] / [`Rank::row_buffer_outcome`]
    /// directly on the flat state).
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    #[must_use]
    pub fn bank(&self, bank: usize) -> Bank {
        Bank::from_states(&self.banks, bank)
    }

    /// The flat per-bank state store.
    #[must_use]
    pub fn bank_states(&self) -> &BankStates {
        &self.banks
    }

    /// The open row in `bank`, if any.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    #[must_use]
    pub fn open_row(&self, bank: usize) -> Option<u64> {
        self.banks.open_row(bank)
    }

    /// Row-buffer classification of a prospective access to `row` of
    /// `bank`.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    #[must_use]
    pub fn row_buffer_outcome(&self, bank: usize, row: u64) -> crate::RowBufferOutcome {
        self.banks.row_buffer_outcome(bank, row)
    }

    /// Lifetime refresh command count.
    #[must_use]
    pub fn refreshes(&self) -> u64 {
        self.refreshes
    }

    /// True if no bank has an open row.
    #[must_use]
    pub fn all_banks_closed(&self) -> bool {
        self.banks.all_closed()
    }

    /// The cycle until which the whole rank is blocked by an in-progress
    /// refresh (`tRFC`). Used as a next-event hint by the simulation
    /// engine: nothing on this rank can issue before it.
    #[must_use]
    pub fn busy_until(&self) -> Cycle {
        self.refresh_until
    }

    /// Earliest cycle at which `cmd` to `bank` satisfies bank + rank timing.
    #[must_use]
    pub fn ready_at(&self, bank: usize, cmd: &Command, timing: &TimingParams) -> Cycle {
        let base = self.banks.ready_at(bank, cmd).max(self.refresh_until);
        match cmd {
            Command::Activate { .. } => base
                .max(self.next_act_rrd)
                .max(self.recent_acts.gate(timing)),
            // Refresh must wait until every bank is past its own gate.
            Command::Refresh => base.max(self.banks.refresh_gate()),
            _ => base,
        }
    }

    /// The open row and all rank-level command gates of `bank` in one
    /// walk: `(open_row, activate, precharge, column)`. Each gate equals
    /// the corresponding [`Rank::ready_at`] — the activate gate folds in
    /// tRRD and the tFAW window, and every gate respects the refresh
    /// blackout.
    #[must_use]
    pub fn bank_gates(
        &self,
        bank: usize,
        timing: &TimingParams,
    ) -> (Option<u64>, Cycle, Cycle, Cycle) {
        let (act, pre, col) = self.banks.command_gates(bank);
        let r = self.refresh_until;
        (
            self.banks.open_row(bank),
            act.max(r)
                .max(self.next_act_rrd)
                .max(self.recent_acts.gate(timing)),
            pre.max(r),
            col.max(r),
        )
    }

    /// True if `cmd` to `bank` is legal at `now`.
    #[must_use]
    pub fn can_issue(&self, bank: usize, cmd: &Command, now: Cycle, timing: &TimingParams) -> bool {
        if now < self.refresh_until {
            return false;
        }
        match cmd {
            Command::Activate { .. } => {
                now >= self.next_act_rrd
                    && now >= self.recent_acts.gate(timing)
                    && self.banks.can_issue(bank, cmd, now)
            }
            Command::Refresh => self.all_banks_closed() && now >= self.ready_at(bank, cmd, timing),
            _ => self.banks.can_issue(bank, cmd, now),
        }
    }

    /// Issues `cmd` to `bank` at `now`.
    ///
    /// A [`Command::Refresh`] is rank-wide: it requires every bank to be
    /// closed and blocks the whole rank for `tRFC`.
    ///
    /// # Errors
    ///
    /// Returns [`IssueError`] on any bank-, rank-, or refresh-level timing
    /// or protocol violation.
    pub fn issue(
        &mut self,
        bank: usize,
        cmd: Command,
        now: Cycle,
        timing: &TimingParams,
    ) -> Result<IssueOutcome, IssueError> {
        if bank >= self.banks.len() {
            return Err(IssueError::new(cmd, now, IssueErrorReason::OutOfRange));
        }
        if now < self.refresh_until {
            return Err(IssueError::new(
                cmd,
                now,
                IssueErrorReason::TooEarly(self.refresh_until),
            ));
        }
        match cmd {
            Command::Activate { .. } => {
                let gate = self.next_act_rrd.max(self.recent_acts.gate(timing));
                if now < gate {
                    return Err(IssueError::new(cmd, now, IssueErrorReason::TooEarly(gate)));
                }
                let out = self.banks.issue(bank, cmd, now, timing)?;
                self.next_act_rrd = now + timing.t_rrd;
                self.recent_acts.push(now);
                Ok(out)
            }
            Command::Refresh => {
                if !self.all_banks_closed() {
                    return Err(IssueError::new(cmd, now, IssueErrorReason::RankNotIdle));
                }
                let ready = self.ready_at(bank, &cmd, timing);
                if now < ready {
                    return Err(IssueError::new(cmd, now, IssueErrorReason::TooEarly(ready)));
                }
                let until = now + timing.t_rfc;
                self.banks.block_all_until(until);
                self.refresh_until = until;
                self.refreshes += 1;
                Ok(IssueOutcome {
                    data_ready: None,
                    outcome: None,
                })
            }
            _ => self.banks.issue(bank, cmd, now, timing),
        }
    }

    /// Per-bank lifetime activate counts (RowHammer accounting).
    #[must_use]
    pub fn activation_counts(&self) -> Vec<u64> {
        self.banks.activation_counts()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DramConfig;

    fn timing() -> TimingParams {
        DramConfig::ddr3_1600().timing
    }

    #[test]
    fn trrd_gates_cross_bank_activates() {
        let t = timing();
        let mut rank = Rank::new(8);
        rank.issue(0, Command::Activate { row: 0 }, Cycle::ZERO, &t)
            .unwrap();
        let err = rank
            .issue(1, Command::Activate { row: 0 }, Cycle::new(t.t_rrd - 1), &t)
            .unwrap_err();
        assert_eq!(err.ready_at(), Some(Cycle::new(t.t_rrd)));
        rank.issue(1, Command::Activate { row: 0 }, Cycle::new(t.t_rrd), &t)
            .unwrap();
    }

    #[test]
    fn tfaw_limits_four_activates() {
        let t = timing();
        let mut rank = Rank::new(8);
        let mut now = Cycle::ZERO;
        for b in 0..4 {
            now = rank.ready_at(b, &Command::Activate { row: 0 }, &t);
            rank.issue(b, Command::Activate { row: 0 }, now, &t)
                .unwrap();
        }
        // Fifth activate must wait until tFAW after the first.
        let fifth_ready = rank.ready_at(4, &Command::Activate { row: 0 }, &t);
        assert_eq!(fifth_ready, Cycle::new(t.t_faw));
        assert!(fifth_ready > now, "tFAW stricter than tRRD for DDR3 parts");
    }

    #[test]
    fn tfaw_window_slides_past_the_oldest_activate() {
        let t = timing();
        let mut rank = Rank::new(8);
        for b in 0..6 {
            let at = rank.ready_at(b, &Command::Activate { row: 0 }, &t);
            rank.issue(b, Command::Activate { row: 0 }, at, &t).unwrap();
        }
        // The seventh activate is gated by the fourth-most-recent (index
        // 3), not the very first: the fixed ring must slide.
        let gate = rank.ready_at(6, &Command::Activate { row: 0 }, &t);
        assert!(gate > Cycle::new(t.t_faw), "window must keep sliding");
    }

    #[test]
    fn refresh_requires_closed_banks_and_blocks_rank() {
        let t = timing();
        let mut rank = Rank::new(2);
        rank.issue(0, Command::Activate { row: 0 }, Cycle::ZERO, &t)
            .unwrap();
        let err = rank
            .issue(0, Command::Refresh, Cycle::new(1000), &t)
            .unwrap_err();
        assert_eq!(err.reason(), IssueErrorReason::RankNotIdle);

        rank.issue(0, Command::Precharge, Cycle::new(t.t_ras), &t)
            .unwrap();
        let ref_at = rank.ready_at(0, &Command::Refresh, &t);
        rank.issue(0, Command::Refresh, ref_at, &t).unwrap();
        assert_eq!(rank.refreshes(), 1);
        // The whole rank is blocked for tRFC.
        assert!(!rank.can_issue(1, &Command::Activate { row: 0 }, ref_at + (t.t_rfc - 1), &t));
        assert!(rank.can_issue(1, &Command::Activate { row: 0 }, ref_at + t.t_rfc, &t));
    }

    #[test]
    fn out_of_range_bank_is_reported() {
        let t = timing();
        let mut rank = Rank::new(2);
        let err = rank
            .issue(5, Command::Precharge, Cycle::ZERO, &t)
            .unwrap_err();
        assert_eq!(err.reason(), IssueErrorReason::OutOfRange);
    }

    #[test]
    fn activation_counts_are_per_bank() {
        let t = timing();
        let mut rank = Rank::new(3);
        let at = rank.ready_at(1, &Command::Activate { row: 4 }, &t);
        rank.issue(1, Command::Activate { row: 4 }, at, &t).unwrap();
        assert_eq!(rank.activation_counts(), vec![0, 1, 0]);
        assert_eq!(rank.bank(1).activations(), 1);
        assert_eq!(rank.bank(1).open_row(), Some(4));
        assert_eq!(rank.open_row(0), None);
    }

    #[test]
    fn reads_in_different_banks_are_independent_of_trrd() {
        let t = timing();
        let mut rank = Rank::new(2);
        rank.issue(0, Command::Activate { row: 0 }, Cycle::ZERO, &t)
            .unwrap();
        let act1 = rank.ready_at(1, &Command::Activate { row: 0 }, &t);
        rank.issue(1, Command::Activate { row: 0 }, act1, &t)
            .unwrap();
        let rd0 = rank.ready_at(0, &Command::Read { column: 0 }, &t);
        let rd1 = rank.ready_at(1, &Command::Read { column: 0 }, &t);
        rank.issue(0, Command::Read { column: 0 }, rd0, &t).unwrap();
        rank.issue(1, Command::Read { column: 0 }, rd1, &t).unwrap();
    }
}
