//! Core value types shared across the DRAM simulator.
//!
//! Newtypes ([`Cycle`], [`PhysAddr`]) statically distinguish the two numeric
//! domains the simulator juggles constantly — simulation time and memory
//! addresses — so they can never be confused (C-NEWTYPE).
//!
//! [`Cycle`] itself lives in `ia-sim` (the simulation engine sits below
//! every clocked component in the dependency graph); it is re-exported here
//! so `ia_dram::Cycle` keeps working for downstream crates.

use std::fmt;

pub use ia_sim::Cycle;

/// A physical memory byte address.
///
/// # Examples
///
/// ```
/// use ia_dram::PhysAddr;
/// let a = PhysAddr::new(0x4000);
/// assert_eq!(a.as_u64(), 0x4000);
/// assert_eq!(a.offset(64).as_u64(), 0x4040);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct PhysAddr(u64);

impl PhysAddr {
    /// Creates a physical address from a raw byte address.
    pub const fn new(raw: u64) -> Self {
        PhysAddr(raw)
    }

    /// Returns the raw byte address.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Returns the address `bytes` past this one.
    #[must_use]
    pub const fn offset(self, bytes: u64) -> PhysAddr {
        PhysAddr(self.0 + bytes)
    }

    /// Aligns the address down to a power-of-two boundary.
    ///
    /// # Panics
    ///
    /// Panics if `align` is not a power of two.
    #[must_use]
    pub fn align_down(self, align: u64) -> PhysAddr {
        assert!(align.is_power_of_two(), "alignment must be a power of two");
        PhysAddr(self.0 & !(align - 1))
    }
}

impl From<u64> for PhysAddr {
    fn from(raw: u64) -> Self {
        PhysAddr(raw)
    }
}

impl fmt::Display for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl fmt::LowerHex for PhysAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

/// Fully decoded coordinates of one column of one row within the device
/// hierarchy: channel → rank → bank group → bank → subarray → row → column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Location {
    /// Channel index.
    pub channel: usize,
    /// Rank index within the channel.
    pub rank: usize,
    /// Bank group index within the rank.
    pub bank_group: usize,
    /// Bank index within the bank group.
    pub bank: usize,
    /// Subarray index within the bank (derived from the row index).
    pub subarray: usize,
    /// Row index within the bank.
    pub row: u64,
    /// Column (cache-line granule) index within the row.
    pub column: u64,
}

impl Location {
    /// Returns the flat bank index within the whole module
    /// (channel-major, then rank, bank group, bank).
    #[must_use]
    pub fn flat_bank(&self, geo: &crate::Geometry) -> usize {
        ((self.channel * geo.ranks + self.rank) * geo.bank_groups + self.bank_group)
            * geo.banks_per_group
            + self.bank
    }

    /// True if `other` names the same bank (ignoring row/column/subarray).
    #[must_use]
    pub fn same_bank(&self, other: &Location) -> bool {
        self.channel == other.channel
            && self.rank == other.rank
            && self.bank_group == other.bank_group
            && self.bank == other.bank
    }
}

impl fmt::Display for Location {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ch{}.rk{}.bg{}.bk{}.sa{}.row{}.col{}",
            self.channel,
            self.rank,
            self.bank_group,
            self.bank,
            self.subarray,
            self.row,
            self.column
        )
    }
}

/// The DRAM command set understood by the bank/rank state machines.
///
/// This mirrors the JEDEC command vocabulary plus the in-memory-compute
/// extensions used by the PUM crate (RowClone's back-to-back activate and
/// Ambit's triple-row activate are modelled as command sequences built from
/// these primitives by the PUM layer).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Command {
    /// Activate (open) a row: latches the row into the row buffer.
    Activate {
        /// Row to open.
        row: u64,
    },
    /// Precharge (close) the currently open row.
    Precharge,
    /// Column read burst from the open row.
    Read {
        /// Column granule to read.
        column: u64,
    },
    /// Column write burst to the open row.
    Write {
        /// Column granule to write.
        column: u64,
    },
    /// Per-rank auto refresh.
    Refresh,
}

impl Command {
    /// Short mnemonic, matching datasheet vocabulary.
    #[must_use]
    pub fn mnemonic(&self) -> &'static str {
        match self {
            Command::Activate { .. } => "ACT",
            Command::Precharge => "PRE",
            Command::Read { .. } => "RD",
            Command::Write { .. } => "WR",
            Command::Refresh => "REF",
        }
    }
}

impl fmt::Display for Command {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Command::Activate { row } => write!(f, "ACT(row={row})"),
            Command::Read { column } => write!(f, "RD(col={column})"),
            Command::Write { column } => write!(f, "WR(col={column})"),
            _ => f.write_str(self.mnemonic()),
        }
    }
}

/// Direction of a data access as seen by the memory system.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// A load / read request.
    Read,
    /// A store / write request.
    Write,
}

impl AccessKind {
    /// True for [`AccessKind::Read`].
    #[must_use]
    pub fn is_read(self) -> bool {
        matches!(self, AccessKind::Read)
    }
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AccessKind::Read => "read",
            AccessKind::Write => "write",
        })
    }
}

/// Classification of a column access relative to the row-buffer state,
/// the key locality signal exploited by FR-FCFS-class schedulers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RowBufferOutcome {
    /// The needed row was already open: column access only.
    Hit,
    /// The bank was idle (no row open): activate then access.
    Miss,
    /// A different row was open: precharge, activate, then access.
    Conflict,
}

impl fmt::Display for RowBufferOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            RowBufferOutcome::Hit => "row-hit",
            RowBufferOutcome::Miss => "row-miss",
            RowBufferOutcome::Conflict => "row-conflict",
        })
    }
}

/// Every command gate of one bank plus its open row, gathered in a
/// single walk of the channel/rank/bank hierarchy (see
/// [`crate::DramModule::bank_gates`]).
///
/// Each gate is the earliest legal issue cycle for that command kind at
/// the bank, with every level's constraint already folded in: bank-local
/// timing, the rank's refresh window and activate throttles (tRRD,
/// tFAW), and the channel's bus serialization and write-to-read
/// turnaround. Gate for gate equal to [`crate::DramModule::ready_at`] —
/// timing depends on the command kind, never its row/column operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BankGates {
    /// The open row, `None` when the bank is closed.
    pub open_row: Option<u64>,
    /// Earliest legal `Read`.
    pub read: Cycle,
    /// Earliest legal `Write`.
    pub write: Cycle,
    /// Earliest legal `Activate`.
    pub activate: Cycle,
    /// Earliest legal `Precharge`.
    pub precharge: Cycle,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phys_addr_align_down() {
        let a = PhysAddr::new(0x1234);
        assert_eq!(a.align_down(64).as_u64(), 0x1200);
        assert_eq!(a.align_down(1).as_u64(), 0x1234);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn phys_addr_align_down_rejects_non_power_of_two() {
        let _ = PhysAddr::new(0x100).align_down(48);
    }

    #[test]
    fn command_mnemonics() {
        assert_eq!(Command::Activate { row: 3 }.mnemonic(), "ACT");
        assert_eq!(Command::Precharge.mnemonic(), "PRE");
        assert_eq!(Command::Read { column: 0 }.mnemonic(), "RD");
        assert_eq!(Command::Write { column: 0 }.mnemonic(), "WR");
        assert_eq!(Command::Refresh.mnemonic(), "REF");
    }

    #[test]
    fn display_impls_are_nonempty() {
        assert!(!format!("{}", PhysAddr::new(1)).is_empty());
        assert!(!format!("{}", Location::default()).is_empty());
        assert!(!format!("{}", Command::Refresh).is_empty());
        assert!(!format!("{}", AccessKind::Read).is_empty());
        assert!(!format!("{}", RowBufferOutcome::Conflict).is_empty());
    }

    #[test]
    fn same_bank_ignores_row_and_column() {
        let a = Location {
            row: 1,
            column: 2,
            ..Location::default()
        };
        let b = Location {
            row: 9,
            column: 7,
            subarray: 3,
            ..Location::default()
        };
        assert!(a.same_bank(&b));
        let c = Location {
            bank: 1,
            ..Location::default()
        };
        assert!(!a.same_bank(&c));
    }
}
