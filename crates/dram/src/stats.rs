//! Aggregate DRAM statistics.

use std::fmt;

use ia_telemetry::{MetricSource, Scope};

use crate::RowBufferOutcome;

/// Command and locality counters for a simulated module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DramStats {
    /// Activate commands issued.
    pub activates: u64,
    /// Precharge commands issued.
    pub precharges: u64,
    /// Read bursts issued.
    pub reads: u64,
    /// Write bursts issued.
    pub writes: u64,
    /// Refresh commands issued.
    pub refreshes: u64,
    /// Accesses that hit the open row.
    pub row_hits: u64,
    /// Accesses to an idle bank.
    pub row_misses: u64,
    /// Accesses that had to close another row first.
    pub row_conflicts: u64,
}

impl DramStats {
    /// A zeroed counter set.
    #[must_use]
    pub fn new() -> Self {
        DramStats::default()
    }

    /// Total column accesses (reads + writes).
    #[must_use]
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }

    /// Row-buffer hit rate over all classified accesses, in [0, 1].
    ///
    /// Returns zero when nothing has been classified.
    #[must_use]
    pub fn row_hit_rate(&self) -> f64 {
        let total = self.row_hits + self.row_misses + self.row_conflicts;
        if total == 0 {
            0.0
        } else {
            self.row_hits as f64 / total as f64
        }
    }

    /// Records one row-buffer outcome.
    pub fn record_outcome(&mut self, outcome: RowBufferOutcome) {
        match outcome {
            RowBufferOutcome::Hit => self.row_hits += 1,
            RowBufferOutcome::Miss => self.row_misses += 1,
            RowBufferOutcome::Conflict => self.row_conflicts += 1,
        }
    }

    /// Merges another counter set into this one.
    pub fn merge(&mut self, other: &DramStats) {
        self.activates += other.activates;
        self.precharges += other.precharges;
        self.reads += other.reads;
        self.writes += other.writes;
        self.refreshes += other.refreshes;
        self.row_hits += other.row_hits;
        self.row_misses += other.row_misses;
        self.row_conflicts += other.row_conflicts;
    }
}

impl MetricSource for DramStats {
    fn export_into(&self, scope: &mut Scope<'_>) {
        scope.set_counter("activates", self.activates);
        scope.set_counter("precharges", self.precharges);
        scope.set_counter("reads", self.reads);
        scope.set_counter("writes", self.writes);
        scope.set_counter("refreshes", self.refreshes);
        scope.set_counter("row_hits", self.row_hits);
        scope.set_counter("row_misses", self.row_misses);
        scope.set_counter("row_conflicts", self.row_conflicts);
        scope.set_gauge("row_hit_rate", self.row_hit_rate());
    }
}

impl fmt::Display for DramStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "ACT {} PRE {} RD {} WR {} REF {} | hit-rate {:.1}% ({} hit / {} miss / {} conflict)",
            self.activates,
            self.precharges,
            self.reads,
            self.writes,
            self.refreshes,
            self.row_hit_rate() * 100.0,
            self.row_hits,
            self.row_misses,
            self.row_conflicts
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_rate_handles_empty() {
        assert_eq!(DramStats::new().row_hit_rate(), 0.0);
    }

    #[test]
    fn outcome_recording_and_hit_rate() {
        let mut s = DramStats::new();
        s.record_outcome(RowBufferOutcome::Hit);
        s.record_outcome(RowBufferOutcome::Hit);
        s.record_outcome(RowBufferOutcome::Miss);
        s.record_outcome(RowBufferOutcome::Conflict);
        assert!((s.row_hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn export_publishes_counters_and_hit_rate() {
        let mut s = DramStats::new();
        s.reads = 7;
        s.record_outcome(RowBufferOutcome::Hit);
        s.record_outcome(RowBufferOutcome::Miss);
        let mut reg = ia_telemetry::Registry::new();
        reg.collect("dram", &s);
        let snap = reg.snapshot(0);
        assert_eq!(snap.counter("dram.reads"), Some(7));
        assert_eq!(snap.counter("dram.row_hits"), Some(1));
        assert_eq!(snap.gauge("dram.row_hit_rate"), Some(0.5));
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = DramStats {
            activates: 1,
            reads: 2,
            ..DramStats::new()
        };
        let b = DramStats {
            activates: 3,
            writes: 4,
            row_hits: 5,
            ..DramStats::new()
        };
        a.merge(&b);
        assert_eq!(a.activates, 4);
        assert_eq!(a.reads, 2);
        assert_eq!(a.writes, 4);
        assert_eq!(a.row_hits, 5);
        assert_eq!(a.accesses(), 6);
        assert!(!a.to_string().is_empty());
    }
}
