//! Reduced-latency DRAM operating modes.
//!
//! Models the two low-latency mechanisms the paper highlights as
//! data-centric exemplars:
//!
//! * **AL-DRAM** (Lee+, HPCA'15): most devices have large timing margins at
//!   common-case temperature, so tRCD/tRAS/tRP can be uniformly reduced.
//! * **ChargeCache** (Hassan+, HPCA'16): rows accessed recently are still
//!   highly charged, so a small per-controller cache of recently-closed row
//!   addresses allows activating those rows with reduced tRCD/tRAS.

use std::collections::HashMap;

use crate::{Cycle, TimingParams};

/// Latency mode applied on top of nominal device timing.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum LatencyMode {
    /// Nominal datasheet timing.
    #[default]
    Standard,
    /// AL-DRAM-style uniform reduction of the core timing parameters.
    AlDram {
        /// Multiplier applied to tRCD/tRAS/tRP/tRC, e.g. `0.7` for a 30%
        /// reduction. Must be in `(0, 1]`.
        scale: f64,
    },
    /// ChargeCache-style reduction for recently-closed rows.
    ChargeCache {
        /// Entries tracked per bank.
        entries_per_bank: usize,
        /// How long (cycles) a closed row stays "highly charged".
        window: u64,
        /// Multiplier on tRCD/tRAS for hits. Must be in `(0, 1]`.
        scale: f64,
    },
    /// TL-DRAM (Lee+, HPCA 2013): each subarray's bitlines are split by an
    /// isolation transistor into a short *near* segment (fast) and a long
    /// *far* segment (slightly slower than nominal). Rows in the first
    /// `near_fraction` of each bank get `near_scale` timing; the rest pay
    /// `far_scale`.
    TieredLatency {
        /// Fraction of rows in the near segment, in `(0, 1)`.
        near_fraction: f64,
        /// Timing multiplier for near-segment rows (e.g. `0.6`).
        near_scale: f64,
        /// Timing multiplier for far-segment rows (e.g. `1.1`).
        far_scale: f64,
    },
}

impl LatencyMode {
    /// Applies a uniform scale to the row-timing parameters.
    pub(crate) fn scaled(timing: &TimingParams, scale: f64) -> TimingParams {
        let s = |v: u64| ((v as f64 * scale).round() as u64).max(1);
        TimingParams {
            t_rcd: s(timing.t_rcd),
            t_ras: s(timing.t_ras),
            t_rp: s(timing.t_rp),
            ..*timing
        }
    }
}

/// Runtime state for [`LatencyMode::ChargeCache`]: per-bank tables of
/// recently-closed rows with their close timestamps.
#[derive(Debug, Clone, Default)]
pub struct ChargeCacheState {
    /// (flat bank, row) → cycle at which the row was closed.
    closed: HashMap<(usize, u64), Cycle>,
    /// Per-bank insertion order for capacity eviction (bank → rows FIFO).
    fifo: HashMap<usize, Vec<u64>>,
    /// Hits observed (activations that used reduced timing).
    pub hits: u64,
    /// Misses observed.
    pub misses: u64,
}

impl ChargeCacheState {
    /// Creates an empty state.
    #[must_use]
    pub fn new() -> Self {
        ChargeCacheState::default()
    }

    /// Records that `row` in `bank` was just precharged.
    pub fn note_close(&mut self, bank: usize, row: u64, now: Cycle, capacity: usize) {
        let order = self.fifo.entry(bank).or_default();
        if let Some(pos) = order.iter().position(|&r| r == row) {
            order.remove(pos);
        }
        order.push(row);
        if order.len() > capacity {
            let evicted = order.remove(0);
            self.closed.remove(&(bank, evicted));
        }
        self.closed.insert((bank, row), now);
    }

    /// Checks (and counts) whether activating `row` in `bank` at `now`
    /// qualifies for reduced timing.
    pub fn lookup(&mut self, bank: usize, row: u64, now: Cycle, window: u64) -> bool {
        match self.closed.get(&(bank, row)) {
            Some(&closed_at) if now - closed_at <= window => {
                self.hits += 1;
                true
            }
            _ => {
                self.misses += 1;
                false
            }
        }
    }

    /// Hit rate so far, in [0, 1].
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DramConfig;

    #[test]
    fn scaled_timing_reduces_row_params_only() {
        let t = DramConfig::ddr3_1600().timing;
        let s = LatencyMode::scaled(&t, 0.5);
        assert_eq!(s.t_rcd, (t.t_rcd as f64 * 0.5).round() as u64);
        assert_eq!(s.t_cl, t.t_cl, "CAS latency is not margin-limited");
        assert_eq!(s.t_rfc, t.t_rfc);
    }

    #[test]
    fn scaled_timing_never_hits_zero() {
        let t = DramConfig::ddr3_1600().timing;
        let s = LatencyMode::scaled(&t, 0.0001);
        assert!(s.t_rcd >= 1 && s.t_ras >= 1 && s.t_rp >= 1);
    }

    #[test]
    fn charge_cache_hits_within_window() {
        let mut cc = ChargeCacheState::new();
        cc.note_close(0, 42, Cycle::new(100), 8);
        assert!(cc.lookup(0, 42, Cycle::new(150), 100));
        assert!(!cc.lookup(0, 42, Cycle::new(500), 100), "expired entry");
        assert!(!cc.lookup(0, 43, Cycle::new(150), 100), "unknown row");
        assert_eq!(cc.hits, 1);
        assert_eq!(cc.misses, 2);
        assert!((cc.hit_rate() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn charge_cache_capacity_evicts_oldest() {
        let mut cc = ChargeCacheState::new();
        for row in 0..4u64 {
            cc.note_close(0, row, Cycle::new(10), 2);
        }
        assert!(!cc.lookup(0, 0, Cycle::new(11), 100), "row 0 evicted");
        assert!(cc.lookup(0, 3, Cycle::new(11), 100));
    }

    #[test]
    fn renoting_a_row_refreshes_its_fifo_position() {
        let mut cc = ChargeCacheState::new();
        cc.note_close(0, 1, Cycle::new(1), 2);
        cc.note_close(0, 2, Cycle::new(2), 2);
        cc.note_close(0, 1, Cycle::new(3), 2); // row 1 moves to MRU
        cc.note_close(0, 3, Cycle::new(4), 2); // evicts row 2
        assert!(cc.lookup(0, 1, Cycle::new(5), 100));
        assert!(!cc.lookup(0, 2, Cycle::new(5), 100));
    }
}
