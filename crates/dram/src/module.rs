//! The top-level DRAM module: channels + mapping + stats + energy, with a
//! Ramulator-style fine-grained command interface and an open-page
//! convenience interface.

use ia_telemetry::{MetricSource, Scope, TraceBuffer};
use ia_trace::{ComponentTrace, Tracer};

use crate::error::{ConfigError, IssueError};
use crate::inject::{InjectEvent, InjectLog};
use crate::latency::{ChargeCacheState, LatencyMode};
use crate::{
    AccessKind, AddressMapping, BankGates, Channel, Command, Cycle, DramConfig, DramStats,
    EnergyCounter, IssueOutcome, Location, PhysAddr, RowBufferOutcome, TimingParams,
};

/// One DRAM command as captured by the module's trace buffer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CommandEvent {
    /// Cycle at which the command was issued.
    pub at: Cycle,
    /// Channel index.
    pub channel: usize,
    /// Rank index within the channel.
    pub rank: usize,
    /// Flat bank index within the rank.
    pub bank: usize,
    /// The command itself.
    pub cmd: Command,
}

/// Result of a full open-page access performed by [`DramModule::access`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessResult {
    /// Cycle at which the column command was issued.
    pub issued_at: Cycle,
    /// Cycle at which the data burst completed.
    pub data_ready: Cycle,
    /// How the access met the row buffer.
    pub outcome: RowBufferOutcome,
}

/// A complete simulated DRAM module.
///
/// Two interfaces are offered:
///
/// * the **command interface** ([`next_needed`](DramModule::next_needed),
///   [`ready_at`](DramModule::ready_at), [`issue`](DramModule::issue)) used
///   by the `ia-memctrl` schedulers, and
/// * the **access interface** ([`access`](DramModule::access)) which plays
///   an open-page controller for callers that do not care about scheduling.
///
/// # Examples
///
/// ```
/// use ia_dram::{AccessKind, Cycle, DramConfig, DramModule, PhysAddr};
/// let mut dram = DramModule::new(DramConfig::ddr3_1600())?;
/// let r = dram.access(PhysAddr::new(0x1000), AccessKind::Read, Cycle::ZERO)?;
/// assert!(r.data_ready > Cycle::ZERO);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct DramModule {
    config: DramConfig,
    mapping: AddressMapping,
    channels: Vec<Channel>,
    stats: DramStats,
    energy: EnergyCounter,
    latency: LatencyMode,
    charge_cache: ChargeCacheState,
    trace: TraceBuffer<CommandEvent>,
    inject: InjectLog,
    tracer: Tracer,
}

impl DramModule {
    /// Creates a module from a validated configuration.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] if the configuration is invalid.
    pub fn new(config: DramConfig) -> Result<Self, ConfigError> {
        config.validate()?;
        let channels = (0..config.geometry.channels)
            .map(|_| Channel::new(config.geometry.ranks, config.geometry.banks_per_rank()))
            .collect();
        Ok(DramModule {
            config,
            mapping: AddressMapping::default(),
            channels,
            stats: DramStats::new(),
            energy: EnergyCounter::new(),
            latency: LatencyMode::Standard,
            charge_cache: ChargeCacheState::new(),
            trace: TraceBuffer::disabled(),
            inject: InjectLog::default(),
            tracer: Tracer::disabled(),
        })
    }

    /// Enables command-level tracing into a bounded ring of `capacity`
    /// events (older events are overwritten and counted as dropped).
    /// Tracing is off by default and costs one branch per issued command.
    pub fn enable_trace(&mut self, capacity: usize) {
        self.trace = TraceBuffer::new(capacity);
    }

    /// The command trace buffer (empty unless
    /// [`enable_trace`](DramModule::enable_trace) was called).
    #[must_use]
    pub fn trace(&self) -> &TraceBuffer<CommandEvent> {
        &self.trace
    }

    /// Enables `ia-trace` instant recording of issued commands
    /// (`bank.act`/`bank.pre`/`bank.rd`/`bank.wr`/`bank.ref`) on track
    /// `"dram"`. Off by default; one branch per issued command.
    pub fn enable_cycle_trace(&mut self, capacity: usize) {
        self.tracer = Tracer::new("dram", capacity);
    }

    /// Drains the module's `ia-trace` recording (empty unless
    /// [`enable_cycle_trace`](DramModule::enable_cycle_trace) was called).
    #[must_use]
    pub fn take_cycle_trace(&mut self) -> ComponentTrace {
        self.tracer.take()
    }

    /// Enables the fault-injection observation point: activates, column
    /// reads/writes, and rank refreshes are recorded as [`InjectEvent`]s
    /// for the controller to drain via
    /// [`drain_inject_events`](DramModule::drain_inject_events) and feed
    /// to its fault model. Off by default; one branch per command when
    /// off.
    pub fn enable_injection(&mut self) {
        self.inject.enable();
    }

    /// Whether the injection observation point is recording.
    #[must_use]
    pub fn injection_enabled(&self) -> bool {
        self.inject.is_enabled()
    }

    /// Moves all pending injection events into `out` in issue order.
    pub fn drain_inject_events(&mut self, out: &mut Vec<InjectEvent>) {
        self.inject.drain_into(out);
    }

    /// Sets the address mapping (consumes and returns `self` for chaining).
    #[must_use]
    pub fn with_mapping(mut self, mapping: AddressMapping) -> Self {
        self.mapping = mapping;
        self
    }

    /// Sets the latency mode.
    #[must_use]
    pub fn with_latency_mode(mut self, mode: LatencyMode) -> Self {
        self.latency = mode;
        self
    }

    /// The module configuration.
    #[must_use]
    pub fn config(&self) -> &DramConfig {
        &self.config
    }

    /// The active address mapping.
    #[must_use]
    pub fn mapping(&self) -> AddressMapping {
        self.mapping
    }

    /// Accumulated command statistics.
    #[must_use]
    pub fn stats(&self) -> &DramStats {
        &self.stats
    }

    /// Accumulated energy.
    #[must_use]
    pub fn energy(&self) -> &EnergyCounter {
        &self.energy
    }

    /// ChargeCache hit rate (zero unless that latency mode is active).
    #[must_use]
    pub fn charge_cache_hit_rate(&self) -> f64 {
        self.charge_cache.hit_rate()
    }

    /// Decodes a physical address to device coordinates.
    #[must_use]
    pub fn decode(&self, addr: PhysAddr) -> Location {
        self.mapping.decode(addr, &self.config.geometry)
    }

    /// The open row in the bank addressed by `loc`, if any.
    #[must_use]
    pub fn open_row(&self, loc: &Location) -> Option<u64> {
        self.channels[loc.channel]
            .rank(loc.rank)
            .open_row(self.bank_index(loc))
    }

    fn bank_index(&self, loc: &Location) -> usize {
        loc.bank_group * self.config.geometry.banks_per_group + loc.bank
    }

    /// The next command required to serve an access to `loc`, under
    /// open-page bank management.
    #[must_use]
    pub fn next_needed(&self, loc: &Location, kind: AccessKind) -> Command {
        match self.row_buffer_outcome(loc) {
            RowBufferOutcome::Hit => match kind {
                AccessKind::Read => Command::Read { column: loc.column },
                AccessKind::Write => Command::Write { column: loc.column },
            },
            RowBufferOutcome::Miss => Command::Activate { row: loc.row },
            RowBufferOutcome::Conflict => Command::Precharge,
        }
    }

    /// Row-buffer classification of a prospective access to `loc`.
    #[must_use]
    pub fn row_buffer_outcome(&self, loc: &Location) -> RowBufferOutcome {
        self.channels[loc.channel]
            .rank(loc.rank)
            .row_buffer_outcome(self.bank_index(loc), loc.row)
    }

    /// Timing parameters in effect for an activate of `loc.row` at `now`
    /// (reduced under AL-DRAM, or on a ChargeCache hit).
    fn effective_timing(&mut self, loc: &Location, cmd: &Command, now: Cycle) -> TimingParams {
        let nominal = self.config.timing;
        match (self.latency, cmd) {
            (LatencyMode::AlDram { scale }, _) => LatencyMode::scaled(&nominal, scale),
            (LatencyMode::ChargeCache { window, scale, .. }, Command::Activate { row }) => {
                let bank = loc.flat_bank(&self.config.geometry);
                if self.charge_cache.lookup(bank, *row, now, window) {
                    LatencyMode::scaled(&nominal, scale)
                } else {
                    nominal
                }
            }
            (
                LatencyMode::TieredLatency {
                    near_fraction,
                    near_scale,
                    far_scale,
                },
                Command::Activate { row },
            ) => {
                let near_rows = (self.config.geometry.rows_per_bank as f64 * near_fraction) as u64;
                if *row < near_rows {
                    LatencyMode::scaled(&nominal, near_scale)
                } else {
                    LatencyMode::scaled(&nominal, far_scale)
                }
            }
            _ => nominal,
        }
    }

    /// Earliest cycle at which `cmd` for `loc` satisfies all timing.
    #[must_use]
    pub fn ready_at(&self, loc: &Location, cmd: &Command) -> Cycle {
        self.channels[loc.channel].ready_at(
            loc.rank,
            self.bank_index(loc),
            cmd,
            &self.config.timing,
        )
    }

    /// The open row and every command gate of the bank addressed by
    /// `loc`, in one walk of the channel/rank/bank hierarchy. Gate for
    /// gate equal to [`DramModule::ready_at`] per command kind and to
    /// [`DramModule::open_row`] — the scheduler's per-bank fast path:
    /// one probe answers what would otherwise take four.
    #[must_use]
    pub fn bank_gates(&self, loc: &Location) -> BankGates {
        self.channels[loc.channel].bank_gates(loc.rank, self.bank_index(loc), &self.config.timing)
    }

    /// Earliest cycle at which *the next command needed* to serve an
    /// access to `loc` becomes issuable. This is the per-request
    /// next-event hint the simulation engine aggregates over the request
    /// queue: while the controller sits idle, no queued request can make
    /// progress before the minimum of these.
    #[must_use]
    pub fn next_ready_for(&self, loc: &Location, kind: AccessKind) -> Cycle {
        self.ready_at(loc, &self.next_needed(loc, kind))
    }

    /// Issues `cmd` for `loc` at `now`, updating stats and energy.
    ///
    /// # Errors
    ///
    /// Returns [`IssueError`] on any protocol or timing violation.
    pub fn issue(
        &mut self,
        loc: &Location,
        cmd: Command,
        now: Cycle,
    ) -> Result<IssueOutcome, IssueError> {
        let timing = self.effective_timing(loc, &cmd, now);
        let bank_idx = self.bank_index(loc);
        let open_before = self.channels[loc.channel].rank(loc.rank).open_row(bank_idx);
        let out = self.channels[loc.channel].issue(loc.rank, bank_idx, cmd, now, &timing)?;
        self.trace.record_with(|| CommandEvent {
            at: now,
            channel: loc.channel,
            rank: loc.rank,
            bank: bank_idx,
            cmd,
        });
        if self.tracer.is_enabled() {
            let name = match cmd {
                Command::Activate { .. } => "bank.act",
                Command::Read { .. } => "bank.rd",
                Command::Write { .. } => "bank.wr",
                Command::Refresh => "bank.ref",
                Command::Precharge => "bank.pre",
            };
            self.tracer.instant(name, now.as_u64());
        }
        match cmd {
            Command::Activate { row } => self.inject.record_with(|| InjectEvent::Activate {
                at: now,
                channel: loc.channel,
                rank: loc.rank,
                bank: bank_idx,
                row,
            }),
            Command::Read { column } => self.inject.record_with(|| InjectEvent::Read {
                at: now,
                channel: loc.channel,
                rank: loc.rank,
                bank: bank_idx,
                row: loc.row,
                column,
            }),
            Command::Write { column } => self.inject.record_with(|| InjectEvent::Write {
                at: now,
                channel: loc.channel,
                rank: loc.rank,
                bank: bank_idx,
                row: loc.row,
                column,
            }),
            Command::Refresh => self.inject.record_with(|| InjectEvent::Refresh {
                at: now,
                channel: loc.channel,
                rank: loc.rank,
            }),
            Command::Precharge => {}
        }
        self.energy
            .record(&cmd, self.config.geometry.column_bytes, &self.config.energy);
        match cmd {
            Command::Activate { .. } => self.stats.activates += 1,
            Command::Precharge => {
                self.stats.precharges += 1;
                if let (
                    LatencyMode::ChargeCache {
                        entries_per_bank, ..
                    },
                    Some(row),
                ) = (self.latency, open_before)
                {
                    let bank = loc.flat_bank(&self.config.geometry);
                    self.charge_cache
                        .note_close(bank, row, now, entries_per_bank);
                }
            }
            Command::Read { .. } => self.stats.reads += 1,
            Command::Write { .. } => self.stats.writes += 1,
            Command::Refresh => self.stats.refreshes += 1,
        }
        Ok(out)
    }

    /// Performs a complete access to `addr` no earlier than `earliest`,
    /// acting as an open-page controller: precharge and/or activate as
    /// needed, then issue the column command at the first legal cycle.
    ///
    /// # Errors
    ///
    /// Propagates [`IssueError`]; with correct internal sequencing this
    /// only occurs on geometry violations.
    pub fn access(
        &mut self,
        addr: PhysAddr,
        kind: AccessKind,
        earliest: Cycle,
    ) -> Result<AccessResult, IssueError> {
        let loc = self.decode(addr);
        self.access_loc(&loc, kind, earliest)
    }

    /// [`DramModule::access`] with pre-decoded coordinates.
    ///
    /// # Errors
    ///
    /// Propagates [`IssueError`] from command issue.
    pub fn access_loc(
        &mut self,
        loc: &Location,
        kind: AccessKind,
        earliest: Cycle,
    ) -> Result<AccessResult, IssueError> {
        let outcome = self.row_buffer_outcome(loc);
        self.stats.record_outcome(outcome);
        loop {
            let cmd = self.next_needed(loc, kind);
            let at = self.ready_at(loc, &cmd).max(earliest);
            let out = self.issue(loc, cmd, at)?;
            if let Some(data_ready) = out.data_ready {
                return Ok(AccessResult {
                    issued_at: at,
                    data_ready,
                    outcome,
                });
            }
        }
    }

    /// Issues a rank refresh at the first legal cycle at or after
    /// `earliest`, precharging any open banks first. Returns the cycle at
    /// which the refresh completes (rank usable again).
    ///
    /// # Errors
    ///
    /// Propagates [`IssueError`] from command issue.
    pub fn refresh_rank(
        &mut self,
        channel: usize,
        rank: usize,
        earliest: Cycle,
    ) -> Result<Cycle, IssueError> {
        let timing = self.config.timing;
        let banks = self.config.geometry.banks_per_rank();
        // Close any open banks.
        for bank in 0..banks {
            if self.channels[channel].rank(rank).open_row(bank).is_some() {
                let at = self.channels[channel]
                    .ready_at(rank, bank, &Command::Precharge, &timing)
                    .max(earliest);
                self.channels[channel].issue(rank, bank, Command::Precharge, at, &timing)?;
                self.stats.precharges += 1;
            }
        }
        let at = self.channels[channel]
            .ready_at(rank, 0, &Command::Refresh, &timing)
            .max(earliest);
        self.channels[channel].issue(rank, 0, Command::Refresh, at, &timing)?;
        self.inject
            .record_with(|| InjectEvent::Refresh { at, channel, rank });
        self.stats.refreshes += 1;
        self.energy
            .record(&Command::Refresh, 0, &self.config.energy);
        Ok(at + timing.t_rfc)
    }

    /// Per-bank activation counts for one rank (RowHammer accounting).
    #[must_use]
    pub fn activation_counts(&self, channel: usize, rank: usize) -> Vec<u64> {
        self.channels[channel].rank(rank).activation_counts()
    }

    /// Direct channel access for advanced callers (PUM command sequences).
    #[must_use]
    pub fn channel(&self, channel: usize) -> &Channel {
        &self.channels[channel]
    }

    /// Mutable channel access for advanced callers.
    pub fn channel_mut(&mut self, channel: usize) -> &mut Channel {
        &mut self.channels[channel]
    }

    /// Mutable access to the energy counter (PUM operations account their
    /// own internal bursts).
    pub fn energy_mut(&mut self) -> &mut EnergyCounter {
        &mut self.energy
    }

    /// Mutable access to the stats counter (for composite operations).
    pub fn stats_mut(&mut self) -> &mut DramStats {
        &mut self.stats
    }
}

impl MetricSource for DramModule {
    /// Publishes command/locality counters at this scope, energy under an
    /// `energy` child scope, and the trace-buffer occupancy counters.
    fn export_into(&self, scope: &mut Scope<'_>) {
        self.stats.export_into(scope);
        scope.collect("energy", &self.energy);
        scope.set_gauge("charge_cache_hit_rate", self.charge_cache.hit_rate());
        scope.set_counter("trace_recorded", self.trace.recorded());
        scope.set_counter("trace_dropped", self.trace.dropped());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn module() -> DramModule {
        DramModule::new(DramConfig::ddr3_1600()).expect("valid preset")
    }

    #[test]
    fn first_access_is_a_row_miss() {
        let mut dram = module();
        let r = dram
            .access(PhysAddr::new(0), AccessKind::Read, Cycle::ZERO)
            .unwrap();
        assert_eq!(r.outcome, RowBufferOutcome::Miss);
        let t = dram.config().timing;
        assert_eq!(r.data_ready, Cycle::new(t.t_rcd + t.t_cl + t.t_bl));
        assert_eq!(dram.stats().activates, 1);
        assert_eq!(dram.stats().reads, 1);
    }

    #[test]
    fn second_access_same_row_hits() {
        let mut dram = module();
        dram.access(PhysAddr::new(0), AccessKind::Read, Cycle::ZERO)
            .unwrap();
        let r = dram
            .access(PhysAddr::new(64), AccessKind::Read, Cycle::ZERO)
            .unwrap();
        assert_eq!(r.outcome, RowBufferOutcome::Hit);
        assert_eq!(dram.stats().activates, 1, "no second activate");
    }

    #[test]
    fn conflicting_row_precharges_first() {
        let mut dram = module();
        dram.access(PhysAddr::new(0), AccessKind::Read, Cycle::ZERO)
            .unwrap();
        // Same bank, different row (row-interleaved: one full row stride × banks).
        let geo = dram.config().geometry;
        let row_stride = geo.row_bytes
            * (geo.banks_per_group * geo.bank_groups * geo.ranks) as u64
            * geo.channels as u64;
        let r = dram
            .access(PhysAddr::new(row_stride), AccessKind::Read, Cycle::ZERO)
            .unwrap();
        assert_eq!(r.outcome, RowBufferOutcome::Conflict);
        assert_eq!(dram.stats().precharges, 1);
        assert_eq!(dram.stats().activates, 2);
    }

    #[test]
    fn writes_are_counted_and_charged() {
        let mut dram = module();
        dram.access(PhysAddr::new(0), AccessKind::Write, Cycle::ZERO)
            .unwrap();
        assert_eq!(dram.stats().writes, 1);
        assert!(dram.energy().io_pj > 0.0);
    }

    #[test]
    fn refresh_rank_closes_banks_and_blocks() {
        let mut dram = module();
        dram.access(PhysAddr::new(0), AccessKind::Read, Cycle::ZERO)
            .unwrap();
        let done = dram.refresh_rank(0, 0, Cycle::new(100)).unwrap();
        assert!(done > Cycle::new(100 + dram.config().timing.t_rfc - 1));
        assert_eq!(dram.stats().refreshes, 1);
        // Next access must be after the refresh completes.
        let r = dram
            .access(PhysAddr::new(0), AccessKind::Read, Cycle::ZERO)
            .unwrap();
        assert!(r.issued_at >= done);
    }

    #[test]
    fn al_dram_mode_is_faster() {
        let mut nominal = module();
        let mut fast = DramModule::new(DramConfig::ddr3_1600())
            .unwrap()
            .with_latency_mode(LatencyMode::AlDram { scale: 0.6 });
        let a = nominal
            .access(PhysAddr::new(0), AccessKind::Read, Cycle::ZERO)
            .unwrap();
        let b = fast
            .access(PhysAddr::new(0), AccessKind::Read, Cycle::ZERO)
            .unwrap();
        assert!(
            b.data_ready < a.data_ready,
            "AL-DRAM must reduce miss latency"
        );
    }

    #[test]
    fn charge_cache_accelerates_reopened_rows() {
        let mode = LatencyMode::ChargeCache {
            entries_per_bank: 8,
            window: 100_000,
            scale: 0.6,
        };
        let mut dram = DramModule::new(DramConfig::ddr3_1600())
            .unwrap()
            .with_latency_mode(mode);
        let geo = dram.config().geometry;
        let row_stride = geo.row_bytes
            * (geo.banks_per_group * geo.bank_groups * geo.ranks) as u64
            * geo.channels as u64;

        // Open row 0, conflict to row 1 (closing row 0), then re-open row 0.
        dram.access(PhysAddr::new(0), AccessKind::Read, Cycle::ZERO)
            .unwrap();
        dram.access(PhysAddr::new(row_stride), AccessKind::Read, Cycle::ZERO)
            .unwrap();
        let t0 = dram.ready_at(&dram.decode(PhysAddr::new(0)), &Command::Precharge);
        let reopen = dram.access(PhysAddr::new(0), AccessKind::Read, t0).unwrap();
        assert_eq!(reopen.outcome, RowBufferOutcome::Conflict);
        assert!(
            dram.charge_cache_hit_rate() > 0.0,
            "row 0 was recently closed"
        );
    }

    #[test]
    fn trace_captures_command_sequence_when_enabled() {
        let mut dram = module();
        dram.enable_trace(16);
        dram.access(PhysAddr::new(0), AccessKind::Read, Cycle::ZERO)
            .unwrap();
        let cmds: Vec<Command> = dram.trace().iter().map(|e| e.cmd).collect();
        assert_eq!(cmds.len(), 2, "miss = ACT then RD");
        assert!(matches!(cmds[0], Command::Activate { .. }));
        assert!(matches!(cmds[1], Command::Read { .. }));
        assert_eq!(dram.trace().dropped(), 0);
    }

    #[test]
    fn trace_is_off_by_default_and_bounded_when_on() {
        let mut dram = module();
        dram.access(PhysAddr::new(0), AccessKind::Read, Cycle::ZERO)
            .unwrap();
        assert!(dram.trace().is_empty());
        dram.enable_trace(2);
        for i in 0..8u64 {
            dram.access(PhysAddr::new(i * 64), AccessKind::Read, Cycle::ZERO)
                .unwrap();
        }
        assert_eq!(dram.trace().len(), 2, "ring stays bounded");
        assert!(dram.trace().dropped() > 0, "overwrites are counted");
    }

    #[test]
    fn injection_log_captures_activate_read_write_refresh() {
        let mut dram = module();
        assert!(!dram.injection_enabled());
        dram.access(PhysAddr::new(0), AccessKind::Read, Cycle::ZERO)
            .unwrap();
        let mut events = Vec::new();
        dram.drain_inject_events(&mut events);
        assert!(events.is_empty(), "off by default");

        dram.enable_injection();
        dram.access(PhysAddr::new(64), AccessKind::Read, Cycle::ZERO)
            .unwrap();
        dram.access(PhysAddr::new(128), AccessKind::Write, Cycle::ZERO)
            .unwrap();
        dram.refresh_rank(0, 0, Cycle::new(10_000)).unwrap();
        dram.drain_inject_events(&mut events);
        assert!(
            matches!(
                events[0],
                InjectEvent::Read {
                    row: 0,
                    column: 1,
                    ..
                }
            ),
            "row already open: read only — got {:?}",
            events[0]
        );
        assert!(matches!(
            events[1],
            InjectEvent::Write {
                row: 0,
                column: 2,
                ..
            }
        ));
        assert!(matches!(events.last(), Some(InjectEvent::Refresh { .. })));
        let drained = events.len();
        let mut again = Vec::new();
        dram.drain_inject_events(&mut again);
        assert!(again.is_empty(), "drain is destructive");
        assert!(drained >= 3);
    }

    #[test]
    fn module_exports_stats_energy_and_trace_counters() {
        let mut dram = module();
        dram.enable_trace(4);
        dram.access(PhysAddr::new(0), AccessKind::Write, Cycle::ZERO)
            .unwrap();
        let mut reg = ia_telemetry::Registry::new();
        reg.collect("dram", &dram);
        let snap = reg.snapshot(0);
        assert_eq!(snap.counter("dram.writes"), Some(1));
        assert_eq!(snap.counter("dram.energy.bursts"), Some(1));
        assert_eq!(snap.counter("dram.trace_recorded"), Some(2));
        assert!(snap.gauge("dram.energy.io_pj").unwrap() > 0.0);
    }

    #[test]
    fn invalid_config_is_rejected() {
        let mut cfg = DramConfig::ddr3_1600();
        cfg.geometry.channels = 0;
        assert!(DramModule::new(cfg).is_err());
    }

    #[test]
    fn access_loc_and_decode_agree() {
        let mut dram = module();
        let addr = PhysAddr::new(0x12340);
        let loc = dram.decode(addr);
        let a = dram
            .access_loc(&loc, AccessKind::Read, Cycle::ZERO)
            .unwrap();
        assert!(a.data_ready > Cycle::ZERO);
        assert_eq!(dram.open_row(&loc), Some(loc.row));
    }
}
