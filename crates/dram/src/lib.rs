//! # ia-dram — cycle-level DRAM timing and energy simulator
//!
//! The memory substrate for the `intelligent-arch` workspace, reproducing
//! the role Ramulator (Kim+, IEEE CAL 2015) plays in the literature the
//! paper builds on: a command-accurate model of banks, ranks, and channels
//! governed by JEDEC-style timing constraints, plus an energy model that
//! separates on-die array energy from off-chip I/O energy — the distinction
//! at the heart of the data-movement-bottleneck argument.
//!
//! ## Layering
//!
//! * [`BankStates`] — flat struct-of-arrays per-bank state (open rows,
//!   timing deadlines, activate counters) walked by the hot timing checks.
//! * [`Bank`] — open-row state machine, per-bank timing windows
//!   (tRCD/tRAS/tRP/tWR/tRTP/tCCD); a single-bank view over the flat state.
//! * [`Rank`] — activate throttling (tRRD, tFAW) and rank-wide refresh
//!   (tRFC).
//! * [`Channel`] — shared data-bus serialization and write→read turnaround.
//! * [`DramModule`] — address mapping, statistics, energy, and reduced
//!   latency modes (AL-DRAM, ChargeCache).
//!
//! ## Example
//!
//! ```
//! use ia_dram::{AccessKind, Cycle, DramConfig, DramModule, PhysAddr};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut dram = DramModule::new(DramConfig::ddr3_1600())?;
//! let first = dram.access(PhysAddr::new(0), AccessKind::Read, Cycle::ZERO)?;
//! let second = dram.access(PhysAddr::new(64), AccessKind::Read, first.data_ready)?;
//! // The second access hits the open row: much lower end-to-end latency.
//! let miss_latency = first.data_ready - Cycle::ZERO;
//! let hit_latency = second.data_ready - first.data_ready;
//! assert!(hit_latency < miss_latency);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod address;
mod bank;
mod channel;
mod config;
mod energy;
mod error;
mod flat;
mod inject;
mod latency;
mod module;
mod rank;
mod salp;
mod stats;
mod types;

pub use address::AddressMapping;
pub use bank::{Bank, IssueOutcome};
pub use channel::Channel;
pub use config::{DramConfig, DramConfigBuilder, EnergyParams, Geometry, TimingParams};
pub use energy::EnergyCounter;
pub use error::{ConfigError, IssueError, IssueErrorReason};
pub use flat::BankStates;
pub use inject::InjectEvent;
pub use latency::{ChargeCacheState, LatencyMode};
pub use module::{AccessResult, CommandEvent, DramModule};
pub use rank::Rank;
pub use salp::{serve_stream, BankOrganization, SalpBank};
pub use stats::DramStats;
pub use types::{AccessKind, BankGates, Command, Cycle, Location, PhysAddr, RowBufferOutcome};
