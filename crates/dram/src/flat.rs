//! Flat struct-of-arrays storage for per-bank protocol state.
//!
//! [`BankStates`] holds the open row, the per-command timing deadlines,
//! and the activate counters of every bank in a rank as parallel arrays
//! indexed by bank id. The hot controller queries (`row_buffer_outcome`,
//! `ready_at`) walk contiguous memory instead of chasing one heap object
//! per bank, and rank-wide predicates (`all_closed`, the refresh gate)
//! reduce over a single cache line's worth of deadlines.
//!
//! [`crate::Bank`] remains the public single-bank state machine; it is a
//! thin view over a one-element `BankStates`, so the transition logic
//! lives here exactly once.

use crate::error::{IssueError, IssueErrorReason};
use crate::{Command, Cycle, IssueOutcome, RowBufferOutcome, TimingParams};

/// Sentinel for "no row open". Row indices come from decoded physical
/// addresses and are bounded by `rows_per_bank`, so `u64::MAX` is never a
/// real row.
const NO_ROW: u64 = u64::MAX;

/// Per-bank protocol state for a whole rank, stored struct-of-arrays.
///
/// Each array is indexed by the flat bank id within the rank. All
/// methods taking a `bank` index panic if it is out of range, exactly as
/// indexing a `Vec<Bank>` did before the flattening.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BankStates {
    /// Open row per bank (`NO_ROW` = closed).
    open_row: Vec<u64>,
    /// Earliest legal activate (doubles as the refresh gate).
    next_act: Vec<Cycle>,
    /// Earliest legal precharge.
    next_pre: Vec<Cycle>,
    /// Earliest legal column command.
    next_col: Vec<Cycle>,
    /// Lifetime activate count per bank (RowHammer accounting).
    activations: Vec<u64>,
    /// Number of banks with an open row, kept in sync so rank-wide
    /// refresh eligibility is O(1) instead of a scan.
    open_banks: usize,
}

impl BankStates {
    /// Creates state for `banks` freshly powered-up banks: idle,
    /// everything legal at cycle zero.
    #[must_use]
    pub fn new(banks: usize) -> Self {
        BankStates {
            open_row: vec![NO_ROW; banks],
            next_act: vec![Cycle::ZERO; banks],
            next_pre: vec![Cycle::ZERO; banks],
            next_col: vec![Cycle::ZERO; banks],
            activations: vec![0; banks],
            open_banks: 0,
        }
    }

    /// Number of banks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.open_row.len()
    }

    /// True if there are no banks (degenerate but well-defined).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.open_row.is_empty()
    }

    /// The currently open row of `bank`, if any.
    #[must_use]
    pub fn open_row(&self, bank: usize) -> Option<u64> {
        let row = self.open_row[bank];
        (row != NO_ROW).then_some(row)
    }

    /// Lifetime activate count of `bank`.
    #[must_use]
    pub fn activations(&self, bank: usize) -> u64 {
        self.activations[bank]
    }

    /// Per-bank lifetime activate counts, in bank order.
    #[must_use]
    pub fn activation_counts(&self) -> Vec<u64> {
        self.activations.clone()
    }

    /// True if no bank has an open row.
    #[must_use]
    pub fn all_closed(&self) -> bool {
        self.open_banks == 0
    }

    /// Classifies a prospective access to `row` of `bank` against the
    /// row buffer.
    #[must_use]
    pub fn row_buffer_outcome(&self, bank: usize, row: u64) -> RowBufferOutcome {
        match self.open_row[bank] {
            open if open == row => RowBufferOutcome::Hit,
            NO_ROW => RowBufferOutcome::Miss,
            _ => RowBufferOutcome::Conflict,
        }
    }

    /// Earliest cycle at which `cmd` satisfies `bank`'s local timing
    /// (rank/channel constraints are layered on top by the callers).
    #[must_use]
    pub fn ready_at(&self, bank: usize, cmd: &Command) -> Cycle {
        match cmd {
            Command::Activate { .. } | Command::Refresh => self.next_act[bank],
            Command::Precharge => self.next_pre[bank],
            Command::Read { .. } | Command::Write { .. } => self.next_col[bank],
        }
    }

    /// All three bank-local command gates of `bank` in one indexed
    /// load: `(activate, precharge, column)`.
    #[must_use]
    pub fn command_gates(&self, bank: usize) -> (Cycle, Cycle, Cycle) {
        (
            self.next_act[bank],
            self.next_pre[bank],
            self.next_col[bank],
        )
    }

    /// The latest per-bank refresh gate: no rank refresh may issue
    /// before every bank is past its activate window.
    #[must_use]
    pub fn refresh_gate(&self) -> Cycle {
        self.next_act
            .iter()
            .copied()
            .fold(Cycle::ZERO, |acc, t| acc.max(t))
    }

    /// True if `cmd` is legal on `bank` at `now` with respect to
    /// bank-local state and timing.
    #[must_use]
    pub fn can_issue(&self, bank: usize, cmd: &Command, now: Cycle) -> bool {
        self.check(bank, cmd, now).is_ok()
    }

    pub(crate) fn check(
        &self,
        bank: usize,
        cmd: &Command,
        now: Cycle,
    ) -> Result<(), IssueErrorReason> {
        match cmd {
            Command::Activate { .. } => {
                if self.open_row[bank] != NO_ROW {
                    return Err(IssueErrorReason::BankAlreadyOpen);
                }
                if now < self.next_act[bank] {
                    return Err(IssueErrorReason::TooEarly(self.next_act[bank]));
                }
            }
            Command::Precharge => {
                if self.open_row[bank] == NO_ROW {
                    return Err(IssueErrorReason::BankClosed);
                }
                if now < self.next_pre[bank] {
                    return Err(IssueErrorReason::TooEarly(self.next_pre[bank]));
                }
            }
            Command::Read { .. } | Command::Write { .. } => {
                if self.open_row[bank] == NO_ROW {
                    return Err(IssueErrorReason::BankClosed);
                }
                if now < self.next_col[bank] {
                    return Err(IssueErrorReason::TooEarly(self.next_col[bank]));
                }
            }
            Command::Refresh => {
                if self.open_row[bank] != NO_ROW {
                    return Err(IssueErrorReason::RankNotIdle);
                }
                if now < self.next_act[bank] {
                    return Err(IssueErrorReason::TooEarly(self.next_act[bank]));
                }
            }
        }
        Ok(())
    }

    /// Issues `cmd` to `bank` at `now`, updating state and timing
    /// windows.
    ///
    /// # Errors
    ///
    /// Returns [`IssueError`] if the command violates the protocol
    /// (wrong bank state) or any bank-local timing constraint.
    pub fn issue(
        &mut self,
        bank: usize,
        cmd: Command,
        now: Cycle,
        timing: &TimingParams,
    ) -> Result<IssueOutcome, IssueError> {
        if let Err(reason) = self.check(bank, &cmd, now) {
            return Err(IssueError::new(cmd, now, reason));
        }
        match cmd {
            Command::Activate { row } => {
                let outcome = self.row_buffer_outcome(bank, row);
                self.open_row[bank] = row;
                self.open_banks += 1;
                self.activations[bank] += 1;
                self.next_col[bank] = now + timing.t_rcd;
                self.next_pre[bank] = now + timing.t_ras;
                self.next_act[bank] = now + timing.t_rc();
                Ok(IssueOutcome {
                    data_ready: None,
                    outcome: Some(outcome),
                })
            }
            Command::Precharge => {
                self.open_row[bank] = NO_ROW;
                self.open_banks -= 1;
                self.next_act[bank] = self.next_act[bank].max(now + timing.t_rp);
                Ok(IssueOutcome {
                    data_ready: None,
                    outcome: None,
                })
            }
            Command::Read { .. } => {
                let data_ready = now + timing.t_cl + timing.t_bl;
                self.next_col[bank] = now + timing.t_ccd;
                self.next_pre[bank] = self.next_pre[bank].max(now + timing.t_rtp);
                Ok(IssueOutcome {
                    data_ready: Some(data_ready),
                    outcome: None,
                })
            }
            Command::Write { .. } => {
                let data_end = now + timing.t_cwl + timing.t_bl;
                self.next_col[bank] = now + timing.t_ccd;
                self.next_pre[bank] = self.next_pre[bank].max(data_end + timing.t_wr);
                Ok(IssueOutcome {
                    data_ready: Some(data_end),
                    outcome: None,
                })
            }
            Command::Refresh => {
                // Refresh is rank-scoped; at the bank level it simply
                // blocks the bank for tRFC.
                self.next_act[bank] = now + timing.t_rfc;
                Ok(IssueOutcome {
                    data_ready: None,
                    outcome: None,
                })
            }
        }
    }

    /// Forces every bank closed and blocks activates until `until` (the
    /// rank applies this while a rank-wide refresh is in flight).
    pub(crate) fn block_all_until(&mut self, until: Cycle) {
        for row in &mut self.open_row {
            *row = NO_ROW;
        }
        self.open_banks = 0;
        for t in &mut self.next_act {
            *t = (*t).max(until);
        }
    }

    /// Forces one bank closed and blocks its activates until `until`.
    #[cfg(test)]
    pub(crate) fn block_until(&mut self, bank: usize, until: Cycle) {
        if self.open_row[bank] != NO_ROW {
            self.open_row[bank] = NO_ROW;
            self.open_banks -= 1;
        }
        self.next_act[bank] = self.next_act[bank].max(until);
    }

    /// Copies one bank's state out into a fresh single-bank store (the
    /// backing representation of a [`crate::Bank`] view).
    #[must_use]
    pub(crate) fn extract(&self, bank: usize) -> BankStates {
        BankStates {
            open_row: vec![self.open_row[bank]],
            next_act: vec![self.next_act[bank]],
            next_pre: vec![self.next_pre[bank]],
            next_col: vec![self.next_col[bank]],
            activations: vec![self.activations[bank]],
            open_banks: usize::from(self.open_row[bank] != NO_ROW),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DramConfig;

    fn t() -> TimingParams {
        DramConfig::ddr3_1600().timing
    }

    #[test]
    fn open_count_tracks_transitions() {
        let timing = t();
        let mut s = BankStates::new(4);
        assert!(s.all_closed());
        s.issue(0, Command::Activate { row: 1 }, Cycle::ZERO, &timing)
            .unwrap();
        s.issue(2, Command::Activate { row: 5 }, Cycle::ZERO, &timing)
            .unwrap();
        assert!(!s.all_closed());
        assert_eq!(s.open_row(0), Some(1));
        assert_eq!(s.open_row(1), None);
        let pre = s.ready_at(0, &Command::Precharge);
        s.issue(0, Command::Precharge, pre, &timing).unwrap();
        assert!(!s.all_closed());
        s.block_all_until(Cycle::new(10_000));
        assert!(s.all_closed());
        assert_eq!(
            s.ready_at(2, &Command::Activate { row: 0 }),
            Cycle::new(10_000)
        );
    }

    #[test]
    fn refresh_gate_is_max_over_banks() {
        let timing = t();
        let mut s = BankStates::new(2);
        s.issue(1, Command::Activate { row: 0 }, Cycle::new(7), &timing)
            .unwrap();
        assert_eq!(s.refresh_gate(), Cycle::new(7 + timing.t_rc()));
    }

    #[test]
    fn extract_matches_per_bank_state() {
        let timing = t();
        let mut s = BankStates::new(3);
        s.issue(1, Command::Activate { row: 9 }, Cycle::ZERO, &timing)
            .unwrap();
        let one = s.extract(1);
        assert_eq!(one.len(), 1);
        assert_eq!(one.open_row(0), Some(9));
        assert_eq!(one.activations(0), 1);
        assert!(!one.all_closed());
        assert!(s.extract(0).all_closed());
    }
}
