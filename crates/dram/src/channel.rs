//! Channel-level constraints: the shared command/data bus.

use crate::error::{IssueError, IssueErrorReason};
use crate::{AccessKind, BankGates, Command, Cycle, IssueOutcome, Rank, TimingParams};

/// A channel: ranks sharing one command/address/data bus.
///
/// The channel enforces data-bus serialization between column commands
/// (bursts are `tBL` long) and the write-to-read turnaround `tWTR`.
///
/// # Examples
///
/// ```
/// use ia_dram::{Channel, Command, Cycle, DramConfig};
/// let cfg = DramConfig::ddr3_1600();
/// let mut ch = Channel::new(cfg.geometry.ranks, cfg.geometry.banks_per_rank());
/// ch.issue(0, 0, Command::Activate { row: 0 }, Cycle::ZERO, &cfg.timing)?;
/// # Ok::<(), ia_dram::IssueError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Channel {
    ranks: Vec<Rank>,
    /// Earliest cycle the next column command may be issued (bus gap).
    next_col: Cycle,
    /// Kind of the last column operation, for turnaround penalties.
    last_col: Option<AccessKind>,
    /// When the last column operation's data burst finishes.
    last_data_end: Cycle,
}

impl Channel {
    /// Creates a channel with `ranks` ranks of `banks_per_rank` banks.
    #[must_use]
    pub fn new(ranks: usize, banks_per_rank: usize) -> Self {
        Channel {
            ranks: (0..ranks).map(|_| Rank::new(banks_per_rank)).collect(),
            next_col: Cycle::ZERO,
            last_col: None,
            last_data_end: Cycle::ZERO,
        }
    }

    /// Number of ranks on the channel.
    #[must_use]
    pub fn rank_count(&self) -> usize {
        self.ranks.len()
    }

    /// Immutable view of a rank.
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range.
    #[must_use]
    pub fn rank(&self, rank: usize) -> &Rank {
        &self.ranks[rank]
    }

    /// Mutable view of a rank (for refresh policies that need direct access).
    ///
    /// # Panics
    ///
    /// Panics if `rank` is out of range.
    pub fn rank_mut(&mut self, rank: usize) -> &mut Rank {
        &mut self.ranks[rank]
    }

    /// Earliest cycle the shared data bus can accept another column
    /// command (ignoring turnaround penalties). A next-event hint for the
    /// simulation engine.
    #[must_use]
    pub fn bus_free_at(&self) -> Cycle {
        self.next_col
    }

    fn bus_gate(&self, cmd: &Command, timing: &TimingParams) -> Cycle {
        match cmd {
            Command::Read { .. } => {
                let mut gate = self.next_col;
                if self.last_col == Some(AccessKind::Write) {
                    // Write data must drain, then tWTR, before a read command.
                    gate = gate.max(self.last_data_end + timing.t_wtr);
                }
                gate
            }
            Command::Write { .. } => self.next_col,
            _ => Cycle::ZERO,
        }
    }

    /// Earliest cycle at which `cmd` satisfies bank, rank, and bus timing.
    #[must_use]
    pub fn ready_at(
        &self,
        rank: usize,
        bank: usize,
        cmd: &Command,
        timing: &TimingParams,
    ) -> Cycle {
        self.ranks[rank]
            .ready_at(bank, cmd, timing)
            .max(self.bus_gate(cmd, timing))
    }

    /// The open row and every command gate of `(rank, bank)` in one
    /// hierarchy walk, bus constraints included. Gate for gate equal to
    /// [`Channel::ready_at`] per command kind.
    ///
    /// # Panics
    ///
    /// Panics if `rank` or `bank` is out of range.
    #[must_use]
    pub fn bank_gates(&self, rank: usize, bank: usize, timing: &TimingParams) -> BankGates {
        let (open_row, activate, precharge, col) = self.ranks[rank].bank_gates(bank, timing);
        let write = col.max(self.next_col);
        let read = if self.last_col == Some(AccessKind::Write) {
            // Write data must drain, then tWTR, before a read command.
            write.max(self.last_data_end + timing.t_wtr)
        } else {
            write
        };
        BankGates {
            open_row,
            read,
            write,
            activate,
            precharge,
        }
    }

    /// True if `cmd` is legal at `now` across all levels.
    #[must_use]
    pub fn can_issue(
        &self,
        rank: usize,
        bank: usize,
        cmd: &Command,
        now: Cycle,
        timing: &TimingParams,
    ) -> bool {
        now >= self.bus_gate(cmd, timing) && self.ranks[rank].can_issue(bank, cmd, now, timing)
    }

    /// Issues `cmd` at `now`, updating bus state on column commands.
    ///
    /// # Errors
    ///
    /// Returns [`IssueError`] on a timing or protocol violation at any
    /// level of the hierarchy.
    pub fn issue(
        &mut self,
        rank: usize,
        bank: usize,
        cmd: Command,
        now: Cycle,
        timing: &TimingParams,
    ) -> Result<IssueOutcome, IssueError> {
        if rank >= self.ranks.len() {
            return Err(IssueError::new(cmd, now, IssueErrorReason::OutOfRange));
        }
        let gate = self.bus_gate(&cmd, timing);
        if now < gate {
            return Err(IssueError::new(cmd, now, IssueErrorReason::TooEarly(gate)));
        }
        let out = self.ranks[rank].issue(bank, cmd, now, timing)?;
        match cmd {
            Command::Read { .. } => {
                self.next_col = now + timing.t_bl.max(timing.t_ccd);
                self.last_col = Some(AccessKind::Read);
                self.last_data_end = out.data_ready.unwrap_or(now);
            }
            Command::Write { .. } => {
                self.next_col = now + timing.t_bl.max(timing.t_ccd);
                self.last_col = Some(AccessKind::Write);
                self.last_data_end = out.data_ready.unwrap_or(now);
            }
            _ => {}
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DramConfig;

    fn setup() -> (Channel, TimingParams) {
        let cfg = DramConfig::ddr3_1600();
        (Channel::new(2, cfg.geometry.banks_per_rank()), cfg.timing)
    }

    #[test]
    fn bus_serializes_reads_across_ranks() {
        let (mut ch, t) = setup();
        ch.issue(0, 0, Command::Activate { row: 0 }, Cycle::ZERO, &t)
            .unwrap();
        ch.issue(1, 0, Command::Activate { row: 0 }, Cycle::ZERO, &t)
            .unwrap();
        let rd0 = ch.ready_at(0, 0, &Command::Read { column: 0 }, &t);
        ch.issue(0, 0, Command::Read { column: 0 }, rd0, &t)
            .unwrap();
        // Read on the other rank shares the data bus: must wait the burst gap.
        let rd1 = ch.ready_at(1, 0, &Command::Read { column: 0 }, &t);
        assert!(rd1 >= rd0 + t.t_bl.max(t.t_ccd));
        ch.issue(1, 0, Command::Read { column: 0 }, rd1, &t)
            .unwrap();
    }

    #[test]
    fn write_to_read_turnaround() {
        let (mut ch, t) = setup();
        ch.issue(0, 0, Command::Activate { row: 0 }, Cycle::ZERO, &t)
            .unwrap();
        let wr = ch.ready_at(0, 0, &Command::Write { column: 0 }, &t);
        let out = ch
            .issue(0, 0, Command::Write { column: 0 }, wr, &t)
            .unwrap();
        let data_end = out.data_ready.unwrap();
        let rd = ch.ready_at(0, 0, &Command::Read { column: 1 }, &t);
        assert!(
            rd >= data_end + t.t_wtr,
            "tWTR must separate WR data from the next RD"
        );
    }

    #[test]
    fn activates_ignore_the_data_bus() {
        let (mut ch, t) = setup();
        ch.issue(0, 0, Command::Activate { row: 0 }, Cycle::ZERO, &t)
            .unwrap();
        let rd = ch.ready_at(0, 0, &Command::Read { column: 0 }, &t);
        ch.issue(0, 0, Command::Read { column: 0 }, rd, &t).unwrap();
        // An activate on the other rank can go immediately (no bus conflict).
        assert!(ch.can_issue(1, 0, &Command::Activate { row: 0 }, rd, &t));
    }

    #[test]
    fn out_of_range_rank() {
        let (mut ch, t) = setup();
        let err = ch
            .issue(9, 0, Command::Precharge, Cycle::ZERO, &t)
            .unwrap_err();
        assert_eq!(err.reason(), IssueErrorReason::OutOfRange);
    }

    #[test]
    fn ready_at_never_lies() {
        // Whatever ready_at returns must be issuable at exactly that cycle.
        let (mut ch, t) = setup();
        let cmds = [
            (0usize, 0usize, Command::Activate { row: 3 }),
            (0, 0, Command::Read { column: 0 }),
            (0, 1, Command::Activate { row: 1 }),
            (0, 1, Command::Write { column: 2 }),
            (0, 0, Command::Read { column: 1 }),
            (0, 1, Command::Precharge),
            (0, 0, Command::Precharge),
        ];
        for (rank, bank, cmd) in cmds {
            let at = ch.ready_at(rank, bank, &cmd, &t);
            ch.issue(rank, bank, cmd, at, &t)
                .unwrap_or_else(|e| panic!("{cmd} not issuable at its own ready_at: {e}"));
        }
    }
}
