//! Error types for the DRAM simulator.

use std::error::Error;
use std::fmt;

use crate::{Command, Cycle};

/// An invalid [`crate::DramConfig`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigError {
    kind: ConfigErrorKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ConfigErrorKind {
    ZeroDimension(&'static str),
    NotPowerOfTwo(&'static str, u64),
    Inconsistent(&'static str),
}

impl ConfigError {
    pub(crate) fn zero_dimension(field: &'static str) -> Self {
        ConfigError {
            kind: ConfigErrorKind::ZeroDimension(field),
        }
    }

    pub(crate) fn not_power_of_two(field: &'static str, value: u64) -> Self {
        ConfigError {
            kind: ConfigErrorKind::NotPowerOfTwo(field, value),
        }
    }

    pub(crate) fn inconsistent(msg: &'static str) -> Self {
        ConfigError {
            kind: ConfigErrorKind::Inconsistent(msg),
        }
    }
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ConfigErrorKind::ZeroDimension(field) => {
                write!(f, "configuration field `{field}` must be non-zero")
            }
            ConfigErrorKind::NotPowerOfTwo(field, v) => {
                write!(
                    f,
                    "configuration field `{field}` must be a power of two, got {v}"
                )
            }
            ConfigErrorKind::Inconsistent(msg) => write!(f, "inconsistent configuration: {msg}"),
        }
    }
}

impl Error for ConfigError {}

/// A command issued in violation of the device protocol or timing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IssueError {
    command: Command,
    at: Cycle,
    reason: IssueErrorReason,
}

/// Why a command issue was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IssueErrorReason {
    /// A timing constraint is not yet satisfied; the command becomes legal
    /// at the contained cycle.
    TooEarly(Cycle),
    /// Column command or precharge to a bank with no open row.
    BankClosed,
    /// Activate to a bank that already has an open row.
    BankAlreadyOpen,
    /// Row or column index outside the device geometry.
    OutOfRange,
    /// Refresh issued while a row is open somewhere in the rank.
    RankNotIdle,
}

impl IssueError {
    pub(crate) fn new(command: Command, at: Cycle, reason: IssueErrorReason) -> Self {
        IssueError {
            command,
            at,
            reason,
        }
    }

    /// The offending command.
    #[must_use]
    pub fn command(&self) -> Command {
        self.command
    }

    /// When the issue was attempted.
    #[must_use]
    pub fn at(&self) -> Cycle {
        self.at
    }

    /// The protocol rule that was violated.
    #[must_use]
    pub fn reason(&self) -> IssueErrorReason {
        self.reason
    }

    /// For [`IssueErrorReason::TooEarly`], the first legal issue cycle.
    #[must_use]
    pub fn ready_at(&self) -> Option<Cycle> {
        match self.reason {
            IssueErrorReason::TooEarly(c) => Some(c),
            _ => None,
        }
    }
}

impl fmt::Display for IssueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.reason {
            IssueErrorReason::TooEarly(ready) => write!(
                f,
                "command {} issued at {} violates timing, legal at {ready}",
                self.command, self.at
            ),
            IssueErrorReason::BankClosed => {
                write!(
                    f,
                    "command {} at {} targets a closed bank",
                    self.command, self.at
                )
            }
            IssueErrorReason::BankAlreadyOpen => {
                write!(
                    f,
                    "activate {} at {} but a row is already open",
                    self.command, self.at
                )
            }
            IssueErrorReason::OutOfRange => {
                write!(
                    f,
                    "command {} at {} addresses outside the device",
                    self.command, self.at
                )
            }
            IssueErrorReason::RankNotIdle => {
                write!(f, "refresh at {} while rank has open rows", self.at)
            }
        }
    }
}

impl Error for IssueError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_error_messages() {
        assert!(ConfigError::zero_dimension("x").to_string().contains('x'));
        assert!(ConfigError::not_power_of_two("y", 3)
            .to_string()
            .contains('3'));
        assert!(ConfigError::inconsistent("z").to_string().contains('z'));
    }

    #[test]
    fn issue_error_accessors() {
        let e = IssueError::new(
            Command::Precharge,
            Cycle::new(5),
            IssueErrorReason::TooEarly(Cycle::new(9)),
        );
        assert_eq!(e.command(), Command::Precharge);
        assert_eq!(e.at(), Cycle::new(5));
        assert_eq!(e.ready_at(), Some(Cycle::new(9)));
        assert!(e.to_string().contains("legal at"));

        let e = IssueError::new(
            Command::Refresh,
            Cycle::new(1),
            IssueErrorReason::RankNotIdle,
        );
        assert_eq!(e.ready_at(), None);
        assert!(!e.to_string().is_empty());
    }

    #[test]
    fn errors_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ConfigError>();
        assert_send_sync::<IssueError>();
    }
}
