//! Energy accounting for DRAM operation and off-chip data movement.
//!
//! The counter attributes energy to the event classes that matter for the
//! paper's argument: row activation, column access in the array, off-chip
//! I/O (the data-movement cost), and refresh; plus background power
//! integrated over elapsed time.

use std::fmt;

use crate::{Command, Cycle, EnergyParams, TimingParams};

/// Accumulated DRAM energy, broken down by event class (all picojoules).
///
/// # Examples
///
/// ```
/// use ia_dram::{Command, Cycle, DramConfig, EnergyCounter};
/// let cfg = DramConfig::ddr3_1600();
/// let mut e = EnergyCounter::new();
/// e.record(&Command::Activate { row: 0 }, 64, &cfg.energy);
/// e.record(&Command::Read { column: 0 }, 64, &cfg.energy);
/// assert!(e.dynamic_pj() > 0.0);
/// assert!(e.io_pj > 0.0, "reads move data off-chip");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct EnergyCounter {
    /// Row activate + precharge energy.
    pub act_pre_pj: f64,
    /// Column access energy inside the array.
    pub array_pj: f64,
    /// Off-chip I/O energy (the "data movement" component).
    pub io_pj: f64,
    /// Refresh energy.
    pub refresh_pj: f64,
    /// Number of ACTs recorded (one ACT implies one eventual PRE).
    pub activates: u64,
    /// Column bursts recorded.
    pub bursts: u64,
    /// Refreshes recorded.
    pub refreshes: u64,
}

impl EnergyCounter {
    /// A zeroed counter.
    #[must_use]
    pub fn new() -> Self {
        EnergyCounter::default()
    }

    /// Records the energy of one command. `burst_bytes` is the data moved
    /// by a column command (ignored for others).
    pub fn record(&mut self, cmd: &Command, burst_bytes: u64, params: &EnergyParams) {
        match cmd {
            Command::Activate { .. } => {
                // The ACT/PRE pair is charged on ACT: every activate is
                // eventually closed, and charging eagerly keeps bulk-copy
                // style command sequences simple to account.
                self.act_pre_pj += params.act_pre_pj;
                self.activates += 1;
            }
            Command::Precharge => {}
            Command::Read { .. } => {
                self.array_pj += params.read_pj;
                self.io_pj += params.io_pj_per_bit * (burst_bytes * 8) as f64;
                self.bursts += 1;
            }
            Command::Write { .. } => {
                self.array_pj += params.write_pj;
                self.io_pj += params.io_pj_per_bit * (burst_bytes * 8) as f64;
                self.bursts += 1;
            }
            Command::Refresh => {
                self.refresh_pj += params.refresh_pj;
                self.refreshes += 1;
            }
        }
    }

    /// Records an on-die column access that does *not* cross the chip
    /// boundary (used by processing-using-memory operations, whose entire
    /// point is avoiding the I/O energy).
    pub fn record_internal_burst(&mut self, params: &EnergyParams) {
        self.array_pj += params.read_pj;
        self.bursts += 1;
    }

    /// Total dynamic energy (excludes background power).
    #[must_use]
    pub fn dynamic_pj(&self) -> f64 {
        self.act_pre_pj + self.array_pj + self.io_pj + self.refresh_pj
    }

    /// Background (standby) energy over an elapsed interval.
    #[must_use]
    pub fn background_pj(
        elapsed: Cycle,
        ranks: usize,
        timing: &TimingParams,
        params: &EnergyParams,
    ) -> f64 {
        let seconds = elapsed.as_u64() as f64 * timing.tck_ns() * 1e-9;
        // mW × s = mJ = 1e9 pJ
        params.background_mw * seconds * ranks as f64 * 1e9
    }

    /// Total energy including background power over `elapsed`.
    #[must_use]
    pub fn total_pj(
        &self,
        elapsed: Cycle,
        ranks: usize,
        timing: &TimingParams,
        params: &EnergyParams,
    ) -> f64 {
        self.dynamic_pj() + Self::background_pj(elapsed, ranks, timing, params)
    }

    /// Fraction of dynamic energy spent on off-chip data movement.
    ///
    /// Returns zero when no dynamic energy has been recorded.
    #[must_use]
    pub fn movement_fraction(&self) -> f64 {
        let total = self.dynamic_pj();
        if total == 0.0 {
            0.0
        } else {
            self.io_pj / total
        }
    }

    /// Merges another counter into this one.
    pub fn merge(&mut self, other: &EnergyCounter) {
        self.act_pre_pj += other.act_pre_pj;
        self.array_pj += other.array_pj;
        self.io_pj += other.io_pj;
        self.refresh_pj += other.refresh_pj;
        self.activates += other.activates;
        self.bursts += other.bursts;
        self.refreshes += other.refreshes;
    }
}

impl ia_telemetry::MetricSource for EnergyCounter {
    fn export_into(&self, scope: &mut ia_telemetry::Scope<'_>) {
        scope.set_gauge("act_pre_pj", self.act_pre_pj);
        scope.set_gauge("array_pj", self.array_pj);
        scope.set_gauge("io_pj", self.io_pj);
        scope.set_gauge("refresh_pj", self.refresh_pj);
        scope.set_gauge("dynamic_pj", self.dynamic_pj());
        scope.set_gauge("movement_fraction", self.movement_fraction());
        scope.set_counter("activates", self.activates);
        scope.set_counter("bursts", self.bursts);
        scope.set_counter("refreshes", self.refreshes);
    }
}

impl fmt::Display for EnergyCounter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "energy: act/pre {:.1} nJ, array {:.1} nJ, io {:.1} nJ, refresh {:.1} nJ ({} ACT, {} bursts, {} REF)",
            self.act_pre_pj / 1000.0,
            self.array_pj / 1000.0,
            self.io_pj / 1000.0,
            self.refresh_pj / 1000.0,
            self.activates,
            self.bursts,
            self.refreshes
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DramConfig;

    #[test]
    fn read_charges_array_and_io() {
        let p = DramConfig::ddr3_1600().energy;
        let mut e = EnergyCounter::new();
        e.record(&Command::Read { column: 0 }, 64, &p);
        assert!((e.array_pj - p.read_pj).abs() < 1e-9);
        assert!((e.io_pj - p.io_pj_per_bit * 512.0).abs() < 1e-9);
        assert_eq!(e.bursts, 1);
    }

    #[test]
    fn internal_burst_skips_io() {
        let p = DramConfig::ddr3_1600().energy;
        let mut e = EnergyCounter::new();
        e.record_internal_burst(&p);
        assert_eq!(e.io_pj, 0.0);
        assert!(e.array_pj > 0.0);
    }

    #[test]
    fn act_charged_once_per_pair() {
        let p = DramConfig::ddr3_1600().energy;
        let mut e = EnergyCounter::new();
        e.record(&Command::Activate { row: 0 }, 0, &p);
        e.record(&Command::Precharge, 0, &p);
        assert!((e.act_pre_pj - p.act_pre_pj).abs() < 1e-9);
        assert_eq!(e.activates, 1);
    }

    #[test]
    fn movement_fraction_bounds() {
        let p = DramConfig::ddr3_1600().energy;
        let mut e = EnergyCounter::new();
        assert_eq!(e.movement_fraction(), 0.0);
        e.record(&Command::Read { column: 0 }, 64, &p);
        let f = e.movement_fraction();
        assert!(f > 0.0 && f < 1.0);
    }

    #[test]
    fn background_scales_with_time_and_ranks() {
        let cfg = DramConfig::ddr3_1600();
        let one =
            EnergyCounter::background_pj(Cycle::new(800_000_000), 1, &cfg.timing, &cfg.energy);
        let two =
            EnergyCounter::background_pj(Cycle::new(800_000_000), 2, &cfg.timing, &cfg.energy);
        // 800M cycles at 1.25 ns = 1 second; 60 mW ≈ 60 mJ = 6e10 pJ.
        assert!((one - 6e10).abs() / 6e10 < 1e-6, "got {one}");
        assert!((two / one - 2.0).abs() < 1e-9);
    }

    #[test]
    fn merge_adds_fields() {
        let p = DramConfig::ddr3_1600().energy;
        let mut a = EnergyCounter::new();
        let mut b = EnergyCounter::new();
        a.record(&Command::Activate { row: 0 }, 0, &p);
        b.record(&Command::Refresh, 0, &p);
        a.merge(&b);
        assert_eq!(a.activates, 1);
        assert_eq!(a.refreshes, 1);
        assert!(a.dynamic_pj() > 0.0);
        assert!(!a.to_string().is_empty());
    }
}
