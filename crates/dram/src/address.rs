//! Physical-address to device-coordinate mapping.
//!
//! The mapping determines how much row-buffer locality and bank-level
//! parallelism a given access stream sees — one of the main levers the
//! data-centric experiments sweep.

use crate::{Geometry, Location, PhysAddr};

/// How physical addresses interleave across the device hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum AddressMapping {
    /// Consecutive cache lines fill a row before moving to the next bank:
    /// `row : rank : bank-group : bank : column : channel : offset`.
    /// Maximizes row-buffer locality for sequential streams (open-page
    /// friendly).
    #[default]
    RowInterleaved,
    /// Consecutive cache lines stripe across banks:
    /// `row : column : rank : bank-group : bank : channel : offset`.
    /// Maximizes bank-level parallelism for sequential streams.
    BankInterleaved,
}

impl AddressMapping {
    /// Decodes a physical byte address into device coordinates.
    ///
    /// Addresses beyond the module capacity wrap (the simulator treats the
    /// address space as the module, mirroring trace-driven methodology).
    ///
    /// # Examples
    ///
    /// ```
    /// use ia_dram::{AddressMapping, Geometry, PhysAddr};
    /// let geo = Geometry::default();
    /// let loc = AddressMapping::RowInterleaved.decode(PhysAddr::new(0), &geo);
    /// assert_eq!(loc.row, 0);
    /// assert_eq!(loc.column, 0);
    /// ```
    #[must_use]
    pub fn decode(self, addr: PhysAddr, geo: &Geometry) -> Location {
        let line = addr.as_u64() / geo.column_bytes;
        let (channel, rest) = split(line, geo.channels as u64);
        match self {
            AddressMapping::RowInterleaved => {
                let (column, rest) = split(rest, geo.columns_per_row());
                let (bank, rest) = split(rest, geo.banks_per_group as u64);
                let (bank_group, rest) = split(rest, geo.bank_groups as u64);
                let (rank, rest) = split(rest, geo.ranks as u64);
                let row = rest % geo.rows_per_bank;
                Location {
                    channel: channel as usize,
                    rank: rank as usize,
                    bank_group: bank_group as usize,
                    bank: bank as usize,
                    subarray: geo.subarray_of_row(row),
                    row,
                    column,
                }
            }
            AddressMapping::BankInterleaved => {
                let (bank, rest) = split(rest, geo.banks_per_group as u64);
                let (bank_group, rest) = split(rest, geo.bank_groups as u64);
                let (rank, rest) = split(rest, geo.ranks as u64);
                let (column, rest) = split(rest, geo.columns_per_row());
                let row = rest % geo.rows_per_bank;
                Location {
                    channel: channel as usize,
                    rank: rank as usize,
                    bank_group: bank_group as usize,
                    bank: bank as usize,
                    subarray: geo.subarray_of_row(row),
                    row,
                    column,
                }
            }
        }
    }

    /// Re-encodes device coordinates into the physical byte address that
    /// decodes to them (inverse of [`AddressMapping::decode`] for in-range
    /// locations).
    #[must_use]
    pub fn encode(self, loc: &Location, geo: &Geometry) -> PhysAddr {
        let line = match self {
            AddressMapping::RowInterleaved => {
                let mut v = loc.row;
                v = v * geo.ranks as u64 + loc.rank as u64;
                v = v * geo.bank_groups as u64 + loc.bank_group as u64;
                v = v * geo.banks_per_group as u64 + loc.bank as u64;
                v = v * geo.columns_per_row() + loc.column;
                v * geo.channels as u64 + loc.channel as u64
            }
            AddressMapping::BankInterleaved => {
                let mut v = loc.row;
                v = v * geo.columns_per_row() + loc.column;
                v = v * geo.ranks as u64 + loc.rank as u64;
                v = v * geo.bank_groups as u64 + loc.bank_group as u64;
                v = v * geo.banks_per_group as u64 + loc.bank as u64;
                v * geo.channels as u64 + loc.channel as u64
            }
        };
        PhysAddr::new(line * geo.column_bytes)
    }
}

fn split(value: u64, modulus: u64) -> (u64, u64) {
    (value % modulus, value / modulus)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geo() -> Geometry {
        Geometry::default()
    }

    #[test]
    fn sequential_lines_stay_in_row_with_row_interleaving() {
        let g = geo();
        let m = AddressMapping::RowInterleaved;
        let a = m.decode(PhysAddr::new(0), &g);
        let b = m.decode(PhysAddr::new(64), &g);
        assert!(a.same_bank(&b));
        assert_eq!(a.row, b.row);
        assert_eq!(b.column, a.column + 1);
    }

    #[test]
    fn sequential_lines_stripe_banks_with_bank_interleaving() {
        let g = geo();
        let m = AddressMapping::BankInterleaved;
        let a = m.decode(PhysAddr::new(0), &g);
        let b = m.decode(PhysAddr::new(64), &g);
        assert!(
            !a.same_bank(&b),
            "consecutive lines should hit different banks"
        );
    }

    #[test]
    fn roundtrip_row_interleaved() {
        let g = geo();
        let m = AddressMapping::RowInterleaved;
        for addr in [0u64, 64, 4096, 1 << 20, (1 << 30) + 640] {
            let loc = m.decode(PhysAddr::new(addr), &g);
            let back = m.encode(&loc, &g);
            assert_eq!(back.as_u64(), addr & !63, "addr {addr:#x}");
        }
    }

    #[test]
    fn roundtrip_bank_interleaved() {
        let g = geo();
        let m = AddressMapping::BankInterleaved;
        for addr in [0u64, 64, 8192, (1 << 22) + 128] {
            let loc = m.decode(PhysAddr::new(addr), &g);
            let back = m.encode(&loc, &g);
            assert_eq!(back.as_u64(), addr & !63, "addr {addr:#x}");
        }
    }

    #[test]
    fn subarray_tracks_row() {
        let g = geo();
        let m = AddressMapping::RowInterleaved;
        let loc = m.decode(PhysAddr::new(0), &g);
        assert_eq!(loc.subarray, g.subarray_of_row(loc.row));
    }

    #[test]
    fn decode_respects_geometry_bounds() {
        let g = geo();
        for m in [
            AddressMapping::RowInterleaved,
            AddressMapping::BankInterleaved,
        ] {
            for addr in (0..(1u64 << 33)).step_by(1 << 27) {
                let loc = m.decode(PhysAddr::new(addr), &g);
                assert!(loc.channel < g.channels);
                assert!(loc.rank < g.ranks);
                assert!(loc.bank_group < g.bank_groups);
                assert!(loc.bank < g.banks_per_group);
                assert!(loc.row < g.rows_per_bank);
                assert!(loc.column < g.columns_per_row());
            }
        }
    }
}
