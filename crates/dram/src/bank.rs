//! Per-bank protocol state machine with timing-window bookkeeping.
//!
//! Each [`Bank`] tracks its open row and the earliest cycle at which each
//! command class becomes legal, exactly the information a memory controller
//! needs to schedule commands (and the information Ramulator-class
//! simulators keep per bank).
//!
//! Since the struct-of-arrays refactor the transition logic lives in
//! [`crate::BankStates`] (the flat storage a [`crate::Rank`] walks on the
//! hot path); `Bank` is a thin single-bank view over it, kept as the
//! public teaching/testing interface.

use crate::error::IssueError;
use crate::flat::BankStates;
use crate::{Command, Cycle, RowBufferOutcome, TimingParams};

/// Result of successfully issuing a command to a bank.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IssueOutcome {
    /// For column commands, the cycle at which the data burst completes.
    pub data_ready: Option<Cycle>,
    /// Row-buffer classification for `Activate` (miss/conflict is decided
    /// by the caller since a conflict requires an explicit precharge first).
    pub outcome: Option<RowBufferOutcome>,
}

/// State machine for a single DRAM bank.
///
/// # Examples
///
/// ```
/// use ia_dram::{Bank, Command, Cycle, DramConfig};
/// let t = DramConfig::ddr3_1600().timing;
/// let mut bank = Bank::new();
/// let now = Cycle::ZERO;
/// bank.issue(Command::Activate { row: 7 }, now, &t)?;
/// let rd_at = bank.ready_at(&Command::Read { column: 0 }, &t);
/// let out = bank.issue(Command::Read { column: 0 }, rd_at, &t)?;
/// assert!(out.data_ready.expect("read returns data") > rd_at);
/// # Ok::<(), ia_dram::IssueError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Bank {
    state: BankStates,
}

impl Bank {
    /// A freshly powered-up bank: idle, everything legal at cycle zero.
    #[must_use]
    pub fn new() -> Self {
        Bank {
            state: BankStates::new(1),
        }
    }

    /// A view over one bank of a flat [`BankStates`] store.
    pub(crate) fn from_states(states: &BankStates, bank: usize) -> Self {
        Bank {
            state: states.extract(bank),
        }
    }

    /// The currently open row, if any.
    #[must_use]
    pub fn open_row(&self) -> Option<u64> {
        self.state.open_row(0)
    }

    /// Lifetime activate count (consumed by the RowHammer model).
    #[must_use]
    pub fn activations(&self) -> u64 {
        self.state.activations(0)
    }

    /// Classifies a prospective access to `row` against the row buffer.
    #[must_use]
    pub fn row_buffer_outcome(&self, row: u64) -> RowBufferOutcome {
        self.state.row_buffer_outcome(0, row)
    }

    /// Earliest cycle at which `cmd` satisfies this bank's local timing.
    ///
    /// This ignores rank/channel constraints (tRRD, tFAW, bus occupancy),
    /// which the [`crate::Rank`] and [`crate::Channel`] layers add on top.
    #[must_use]
    pub fn ready_at(&self, cmd: &Command, _timing: &TimingParams) -> Cycle {
        self.state.ready_at(0, cmd)
    }

    /// True if `cmd` is legal at `now` with respect to bank state + timing.
    #[must_use]
    pub fn can_issue(&self, cmd: &Command, now: Cycle, _timing: &TimingParams) -> bool {
        self.state.can_issue(0, cmd, now)
    }

    /// Issues `cmd` at `now`, updating the bank state and timing windows.
    ///
    /// # Errors
    ///
    /// Returns [`IssueError`] if the command violates the protocol (wrong
    /// bank state) or any bank-local timing constraint.
    pub fn issue(
        &mut self,
        cmd: Command,
        now: Cycle,
        timing: &TimingParams,
    ) -> Result<IssueOutcome, IssueError> {
        self.state.issue(0, cmd, now, timing)
    }

    /// Forces the bank closed and blocks it until `until` (used by the rank
    /// when a rank-wide refresh is in flight).
    #[cfg(test)]
    pub(crate) fn block_until(&mut self, until: Cycle) {
        self.state.block_until(0, until);
    }
}

impl Default for Bank {
    fn default() -> Self {
        Bank::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::IssueErrorReason;
    use crate::DramConfig;

    fn t() -> TimingParams {
        DramConfig::ddr3_1600().timing
    }

    #[test]
    fn fresh_bank_is_idle() {
        let bank = Bank::new();
        assert_eq!(bank.open_row(), None);
        assert_eq!(bank.activations(), 0);
        assert_eq!(bank.row_buffer_outcome(0), RowBufferOutcome::Miss);
    }

    #[test]
    fn activate_then_read_respects_trcd() {
        let timing = t();
        let mut bank = Bank::new();
        bank.issue(Command::Activate { row: 1 }, Cycle::ZERO, &timing)
            .unwrap();
        assert_eq!(bank.open_row(), Some(1));
        // Read too early must fail with the correct ready time.
        let err = bank
            .issue(
                Command::Read { column: 0 },
                Cycle::new(timing.t_rcd - 1),
                &timing,
            )
            .unwrap_err();
        assert_eq!(err.ready_at(), Some(Cycle::new(timing.t_rcd)));
        // Read exactly at tRCD succeeds.
        let out = bank
            .issue(
                Command::Read { column: 0 },
                Cycle::new(timing.t_rcd),
                &timing,
            )
            .unwrap();
        assert_eq!(
            out.data_ready,
            Some(Cycle::new(timing.t_rcd + timing.t_cl + timing.t_bl))
        );
    }

    #[test]
    fn precharge_respects_tras() {
        let timing = t();
        let mut bank = Bank::new();
        bank.issue(Command::Activate { row: 1 }, Cycle::ZERO, &timing)
            .unwrap();
        assert!(!bank.can_issue(&Command::Precharge, Cycle::new(timing.t_ras - 1), &timing));
        assert!(bank.can_issue(&Command::Precharge, Cycle::new(timing.t_ras), &timing));
        bank.issue(Command::Precharge, Cycle::new(timing.t_ras), &timing)
            .unwrap();
        assert_eq!(bank.open_row(), None);
        // Next activate gated by tRP after the precharge.
        assert_eq!(
            bank.ready_at(&Command::Activate { row: 2 }, &timing),
            Cycle::new(timing.t_ras + timing.t_rp)
        );
    }

    #[test]
    fn write_recovery_delays_precharge() {
        let timing = t();
        let mut bank = Bank::new();
        bank.issue(Command::Activate { row: 1 }, Cycle::ZERO, &timing)
            .unwrap();
        let wr_at = Cycle::new(timing.t_rcd);
        bank.issue(Command::Write { column: 0 }, wr_at, &timing)
            .unwrap();
        let expected_pre = wr_at + timing.t_cwl + timing.t_bl + timing.t_wr;
        assert_eq!(
            bank.ready_at(&Command::Precharge, &timing),
            expected_pre.max(Cycle::new(timing.t_ras))
        );
    }

    #[test]
    fn double_activate_is_rejected() {
        let timing = t();
        let mut bank = Bank::new();
        bank.issue(Command::Activate { row: 1 }, Cycle::ZERO, &timing)
            .unwrap();
        let err = bank
            .issue(Command::Activate { row: 2 }, Cycle::new(1000), &timing)
            .unwrap_err();
        assert_eq!(err.reason(), IssueErrorReason::BankAlreadyOpen);
    }

    #[test]
    fn column_to_closed_bank_is_rejected() {
        let timing = t();
        let mut bank = Bank::new();
        let err = bank
            .issue(Command::Read { column: 0 }, Cycle::ZERO, &timing)
            .unwrap_err();
        assert_eq!(err.reason(), IssueErrorReason::BankClosed);
    }

    #[test]
    fn row_buffer_outcomes() {
        let timing = t();
        let mut bank = Bank::new();
        assert_eq!(bank.row_buffer_outcome(5), RowBufferOutcome::Miss);
        bank.issue(Command::Activate { row: 5 }, Cycle::ZERO, &timing)
            .unwrap();
        assert_eq!(bank.row_buffer_outcome(5), RowBufferOutcome::Hit);
        assert_eq!(bank.row_buffer_outcome(6), RowBufferOutcome::Conflict);
    }

    #[test]
    fn activation_counter_increments() {
        let timing = t();
        let mut bank = Bank::new();
        for i in 0..3u64 {
            let act_at = bank.ready_at(&Command::Activate { row: i }, &timing);
            bank.issue(Command::Activate { row: i }, act_at, &timing)
                .unwrap();
            let pre_at = bank.ready_at(&Command::Precharge, &timing);
            bank.issue(Command::Precharge, pre_at, &timing).unwrap();
        }
        assert_eq!(bank.activations(), 3);
    }

    #[test]
    fn consecutive_reads_respect_tccd() {
        let timing = t();
        let mut bank = Bank::new();
        bank.issue(Command::Activate { row: 0 }, Cycle::ZERO, &timing)
            .unwrap();
        let first = Cycle::new(timing.t_rcd);
        bank.issue(Command::Read { column: 0 }, first, &timing)
            .unwrap();
        assert!(!bank.can_issue(
            &Command::Read { column: 1 },
            first + (timing.t_ccd - 1),
            &timing
        ));
        assert!(bank.can_issue(&Command::Read { column: 1 }, first + timing.t_ccd, &timing));
    }

    #[test]
    fn same_bank_act_to_act_is_trc() {
        let timing = t();
        let mut bank = Bank::new();
        bank.issue(Command::Activate { row: 0 }, Cycle::ZERO, &timing)
            .unwrap();
        bank.issue(Command::Precharge, Cycle::new(timing.t_ras), &timing)
            .unwrap();
        // tRC = tRAS + tRP must be enforced even with the early precharge.
        assert_eq!(
            bank.ready_at(&Command::Activate { row: 1 }, &timing),
            Cycle::new(timing.t_rc())
        );
    }

    #[test]
    fn block_until_closes_and_blocks() {
        let timing = t();
        let mut bank = Bank::new();
        bank.issue(Command::Activate { row: 0 }, Cycle::ZERO, &timing)
            .unwrap();
        bank.block_until(Cycle::new(50_000));
        assert_eq!(bank.open_row(), None);
        assert_eq!(
            bank.ready_at(&Command::Activate { row: 1 }, &timing),
            Cycle::new(50_000)
        );
    }
}
