//! CLI for the `ia-microbench` harness.
//!
//! ```text
//! microbench [--iters N] [--k N] [--threads N] [--json PATH]
//! ```
//!
//! Prints the median-of-k ns/op table to stdout; `--json` additionally
//! writes the byte-stable `BENCH_MICRO.json` document (deterministic
//! fields only — no wall-clock numbers). `--threads` is accepted for
//! pipeline symmetry with the experiment binaries and changes nothing:
//! every bench is single-threaded by design, which is what makes the
//! JSON byte-stable at any thread count. `--iters 1` is the CI smoke
//! setting.

fn main() {
    let mut iters: u64 = 4_096;
    let mut k: usize = 5;
    let mut json: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |flag: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("error: {flag} expects a value");
                std::process::exit(2);
            })
        };
        match arg.as_str() {
            "--iters" => {
                let v = value("--iters");
                iters = v.parse().ok().filter(|&n| n > 0).unwrap_or_else(|| {
                    eprintln!("error: --iters expects a positive integer, got `{v}`");
                    std::process::exit(2);
                });
            }
            "--k" => {
                let v = value("--k");
                k = v.parse().ok().filter(|&n| n > 0).unwrap_or_else(|| {
                    eprintln!("error: --k expects a positive integer, got `{v}`");
                    std::process::exit(2);
                });
            }
            "--threads" => {
                // Accepted, validated, ignored: the benches are
                // single-threaded so the JSON is thread-count-invariant.
                let v = value("--threads");
                if v.parse::<usize>().ok().filter(|&n| n > 0).is_none() {
                    eprintln!("error: --threads expects a positive integer, got `{v}`");
                    std::process::exit(2);
                }
            }
            "--json" => json = Some(value("--json")),
            "--help" | "-h" => {
                println!("usage: microbench [--iters N] [--k N] [--threads N] [--json PATH]");
                return;
            }
            other => {
                eprintln!("error: unknown argument `{other}`");
                std::process::exit(2);
            }
        }
    }

    let results = ia_microbench::run_all(iters, k);
    print!("{}", ia_microbench::to_table(&results));
    if let Some(path) = json {
        if let Err(e) = std::fs::write(&path, ia_microbench::to_json(&results)) {
            eprintln!("error: cannot write {path}: {e}");
            std::process::exit(1);
        }
    }
}
