//! # ia-microbench — deterministic per-op microbenchmarks
//!
//! The quick-suite wall clock (`BENCH_WALL.json`) is the headline perf
//! number, but it is noisy: process spawn, host load, and 24 binaries'
//! worth of variance hide per-op regressions smaller than a few
//! milliseconds. This crate benches the individual hot paths — the ones
//! the suite's time actually goes to — at nanosecond resolution:
//!
//! * **scheduler-pick** — one `build_view` + FR-FCFS `select` against an
//!   indexed [`RequestQueue`], at queue depth 8 and 256. The indexed
//!   queue's promise is depth-independence: both depths should cost the
//!   same per pick (the linear scan it replaced scaled 32×).
//! * **dram-timing-check** — one [`DramModule::bank_gates`] probe, the
//!   per-bank query `build_view` and `next_event_at` are built from.
//! * **wheel-insert-pop** — an [`EventWheel`] schedule/pop cycle, the
//!   engine's O(1) next-event machinery.
//! * **noc-route-flit** — one [`RouteTable`] XY lookup plus a
//!   productive-port query, the per-flit work of the mesh hot loop.
//! * **lint-parse-workspace** — one full ia-lint front-end pass (lex,
//!   comment-strip, item-parse) over a deterministic synthetic source
//!   file: the per-file cost behind the `ia-lint --check` wall-time
//!   budget in `scripts/ci.sh`.
//!
//! ## Determinism (lint D002)
//!
//! The measured regions contain *no wall-clock reads* — they fold pure
//! simulated state. The harness reads [`std::time::Instant`] only
//! around the measured loop, reports the **median of k** repetitions,
//! and keeps every nondeterministic number (the ns/op) out of
//! `BENCH_MICRO.json`: the JSON carries only the bench name, iteration
//! and op counts, and a checksum folded from the measured work, so the
//! file is byte-stable across runs, hosts, and `--threads` settings —
//! a regression in *behavior* shows up as a checksum diff, a regression
//! in *speed* shows up in the printed ns/op table.
//!
//! ## Example
//!
//! ```
//! let results = ia_microbench::run_all(16, 3);
//! assert!(results.len() >= 4);
//! let again = ia_microbench::run_all(16, 3);
//! for (a, b) in results.iter().zip(&again) {
//!     assert_eq!(a.checksum, b.checksum, "{} must be deterministic", a.name);
//! }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

// lint: allow(D002, a microbenchmark harness times the host by definition; checksums, not times, are the stable output)
use std::time::Instant;

use ia_dram::{Cycle, DramConfig, DramModule, PhysAddr};
use ia_lint::context::FileContext;
use ia_lint::lexer::tokenize;
use ia_lint::parser::{parse_items, Item};
use ia_memctrl::{FrFcfs, IssueView, MemRequest, Pending, RequestQueue, Scheduler, ViewMode};
use ia_noc::{MeshConfig, RouteTable};
use ia_sim::EventWheel;
use ia_telemetry::JsonValue;

/// One timed repetition: deterministic op count and checksum, plus the
/// harness-side wall time of the measured loop.
#[derive(Debug, Clone, Copy)]
pub struct Sample {
    /// Operations the measured loop performed.
    pub ops: u64,
    /// Order-sensitive fold of the loop's observable results.
    pub checksum: u64,
    /// Wall time of the measured loop (harness-side, display only).
    pub ns: u128,
}

/// A bench's aggregated result: the deterministic fields that go into
/// `BENCH_MICRO.json` plus the median ns/op for the human table.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Bench name (stable identifier).
    pub name: &'static str,
    /// Iterations of the measured loop per repetition.
    pub iters: u64,
    /// Operations per repetition (identical across repetitions).
    pub ops: u64,
    /// Checksum per repetition (identical across repetitions).
    pub checksum: u64,
    /// Median wall ns/op across the k repetitions. Display only —
    /// never serialized.
    pub ns_per_op: f64,
}

/// A registered microbench: a name and a runner mapping an iteration
/// count to one [`Sample`].
#[derive(Debug, Clone, Copy)]
pub struct Bench {
    /// Stable bench name (also the JSON key).
    pub name: &'static str,
    /// Runs setup (untimed) then the measured loop for `iters`
    /// iterations.
    pub run: fn(u64) -> Sample,
}

/// Splitmix64-style fold: order-sensitive, cheap, and good enough to
/// catch any behavioral drift in the measured loops.
fn fold(acc: u64, x: u64) -> u64 {
    (acc ^ x)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .rotate_left(17)
}

/// Builds a request queue of `depth` reads spread over the module's
/// banks, ids and arrivals monotone — the steady-state picture the
/// scheduler sees mid-run.
fn queue_of(depth: u64, dram: &DramModule) -> RequestQueue {
    let mut queue = RequestQueue::new();
    for i in 0..depth {
        // Stride one row-buffer's worth so consecutive requests land in
        // different banks under the row-interleaved mapping.
        let addr = i * dram.config().geometry.row_bytes;
        let request = MemRequest {
            id: i + 1,
            ..MemRequest::read(addr, (i % 8) as usize)
        };
        let p = Pending {
            request,
            loc: dram.decode(PhysAddr::new(addr)),
            arrival: Cycle::new(i),
            batched: false,
            started: false,
        };
        queue.insert(p, dram);
    }
    queue
}

/// scheduler-pick at a fixed queue depth: one Frontier `build_view` +
/// FR-FCFS `select` per iteration. The measured cost must track the
/// *occupied-bank* count, not the queue depth.
fn sched_pick(depth: u64, iters: u64) -> Sample {
    // lint: allow(P001, ddr3_1600 is a valid preset)
    let dram = DramModule::new(DramConfig::ddr3_1600()).expect("valid config");
    let mut queue = queue_of(depth, &dram);
    let mut view = IssueView::default();
    let mut sched = FrFcfs::new();
    let now = Cycle::new(1_000);
    let mut checksum = 0u64;
    // lint: allow(D002, harness timing around the measured region; JSON carries no wall-clock field)
    let start = Instant::now();
    for _ in 0..iters {
        queue.build_view(&dram, now, ViewMode::Frontier, &mut view);
        checksum = fold(checksum, view.ready.len() as u64 + 1);
        if let Some(id) = sched.select(&queue, &view) {
            checksum = fold(checksum, u64::from(id.index()) + 1);
        }
    }
    let ns = start.elapsed().as_nanos();
    Sample {
        ops: iters,
        checksum,
        ns,
    }
}

/// scheduler-pick at depth 8 (one request per bank).
fn sched_pick_depth8(iters: u64) -> Sample {
    sched_pick(8, iters)
}

/// scheduler-pick at depth 256 (deep, many requests per bank). Per-op
/// cost must match depth 8 up to the occupied-bank ratio.
fn sched_pick_depth256(iters: u64) -> Sample {
    sched_pick(256, iters)
}

/// One `bank_gates` probe per op: the open row plus all four command
/// gates in a single hierarchy walk.
fn dram_timing_check(iters: u64) -> Sample {
    // lint: allow(P001, ddr3_1600 is a valid preset)
    let mut dram = DramModule::new(DramConfig::ddr3_1600()).expect("valid config");
    // Touch a few rows so some banks are open and gates are non-zero.
    for i in 0..8u64 {
        let addr = i * dram.config().geometry.row_bytes;
        let _ = dram.access(
            PhysAddr::new(addr),
            ia_dram::AccessKind::Read,
            Cycle::new(i),
        );
    }
    let locs: Vec<_> = (0..16u64)
        .map(|i| dram.decode(PhysAddr::new(i * dram.config().geometry.row_bytes)))
        .collect();
    let mut checksum = 0u64;
    // lint: allow(D002, harness timing around the measured region; JSON carries no wall-clock field)
    let start = Instant::now();
    for i in 0..iters {
        let gates = dram.bank_gates(&locs[(i % locs.len() as u64) as usize]);
        checksum = fold(checksum, gates.read.as_u64());
        checksum = fold(checksum, gates.activate.as_u64());
    }
    let ns = start.elapsed().as_nanos();
    Sample {
        ops: iters,
        checksum,
        ns,
    }
}

/// One wheel pop + reschedule per iteration over a steady population of
/// 64 events — the engine's next-event machinery under load.
fn wheel_insert_pop(iters: u64) -> Sample {
    let mut wheel = EventWheel::new(4_096);
    for i in 0..64u64 {
        wheel.schedule(Cycle::new(i * 7 % 97), i as u32);
    }
    let mut due = Vec::new();
    let mut ops = 0u64;
    let mut checksum = 0u64;
    // lint: allow(D002, harness timing around the measured region; JSON carries no wall-clock field)
    let start = Instant::now();
    for _ in 0..iters {
        // lint: allow(P001, the population is rescheduled every pop, never empty)
        let at = wheel.next_event_at().expect("population never drains");
        due.clear();
        wheel.take_due(at, &mut due);
        for (j, &id) in due.iter().enumerate() {
            checksum = fold(checksum, u64::from(id));
            wheel.schedule(at + 3 + (u64::from(id) * 13 + j as u64) % 61, id);
        }
        ops += due.len() as u64;
    }
    let ns = start.elapsed().as_nanos();
    Sample { ops, checksum, ns }
}

/// One XY route lookup + productive-port query per op on an 8×8 mesh —
/// the per-flit work of the NoC hot loop.
fn noc_route_flit(iters: u64) -> Sample {
    // lint: allow(P001, 8x8 is a valid mesh)
    let mesh = MeshConfig::new(8, 8).expect("valid mesh");
    let table = RouteTable::new(mesh);
    let n = 64u64;
    let mut checksum = 0u64;
    // lint: allow(D002, harness timing around the measured region; JSON carries no wall-clock field)
    let start = Instant::now();
    for i in 0..iters {
        let src = ((i * 29) % n) as usize;
        let dst = ((i * 37 + 11) % n) as usize;
        if let Some(port) = table.xy_port(src, dst) {
            checksum = fold(checksum, port as u64);
        }
        checksum = fold(checksum, u64::from(table.productive_ports(src, dst).mask()));
    }
    let ns = start.elapsed().as_nanos();
    Sample {
        ops: iters,
        checksum,
        ns,
    }
}

/// One synthetic source file for the lint-parse kernel: Rust-like items
/// exercising the parser's shapes — impls, traits, modules, nested
/// generics, raw identifiers, doc comments — sized like a mid-size
/// workspace module. Deterministic in `i`, so the corpus (and the
/// checksum folded from parsing it) never varies.
fn synth_source(i: u64) -> String {
    use std::fmt::Write as _;
    let mut s = String::from("#![forbid(unsafe_code)]\nuse std::collections::BTreeMap;\n");
    for j in 0..6u64 {
        let _ = write!(
            s,
            "/// Doc line for item {j}.\n\
             pub struct S{i}x{j} {{ pub field: Vec<Vec<u64>>, r#type: BTreeMap<u64, u64> }}\n\
             impl Clocked for S{i}x{j} {{\n\
                 fn tick(&mut self, now: Cycle) {{ self.field.len(); helper_{j}(now); }}\n\
             }}\n\
             pub fn helper_{j}(x: u64) -> u64 {{ x.wrapping_mul({i} + {j}) }}\n\
             mod m{j} {{ pub fn inner() -> u32 {{ 7 }} }}\n"
        );
    }
    s
}

/// Folds an item tree's spans and names into the checksum, depth-first.
fn fold_items(mut acc: u64, items: &[Item]) -> u64 {
    for it in items {
        acc = fold(acc, it.toks.start as u64);
        acc = fold(acc, it.toks.end as u64);
        acc = fold(acc, it.name.len() as u64 + 1);
        acc = fold_items(acc, &it.children);
    }
    acc
}

/// One full ia-lint front-end pass per op — lex, comment-strip and
/// test-mark ([`FileContext::build`]), item-parse — cycling through an
/// 8-file deterministic corpus. This is the per-file cost of
/// `ia-lint --check`, which `scripts/ci.sh` budgets at under 2 seconds
/// for the whole workspace.
fn lint_parse_workspace(iters: u64) -> Sample {
    let corpus: Vec<String> = (0..8).map(synth_source).collect();
    let mut checksum = 0u64;
    // lint: allow(D002, harness timing around the measured region; JSON carries no wall-clock field)
    let start = Instant::now();
    for i in 0..iters {
        let src = &corpus[(i % corpus.len() as u64) as usize];
        let ctx = FileContext::build("crates/synth/src/module.rs", tokenize(src));
        let items = parse_items(&ctx.code);
        checksum = fold(checksum, ctx.code.len() as u64);
        checksum = fold_items(checksum, &items);
    }
    let ns = start.elapsed().as_nanos();
    Sample {
        ops: iters,
        checksum,
        ns,
    }
}

/// The registered benches, in report order.
#[must_use]
pub fn benches() -> Vec<Bench> {
    vec![
        Bench {
            name: "sched_pick_depth8",
            run: sched_pick_depth8,
        },
        Bench {
            name: "sched_pick_depth256",
            run: sched_pick_depth256,
        },
        Bench {
            name: "dram_timing_check",
            run: dram_timing_check,
        },
        Bench {
            name: "wheel_insert_pop",
            run: wheel_insert_pop,
        },
        Bench {
            name: "noc_route_flit",
            run: noc_route_flit,
        },
        Bench {
            name: "lint_parse_workspace",
            run: lint_parse_workspace,
        },
    ]
}

/// Runs every bench for `iters` iterations, `k` repetitions each, and
/// returns the median-of-k results. The deterministic fields (`ops`,
/// `checksum`) are asserted identical across repetitions — a divergence
/// means a bench broke its own determinism contract.
///
/// # Panics
///
/// Panics if a bench's op count or checksum differs between
/// repetitions.
#[must_use]
pub fn run_all(iters: u64, k: usize) -> Vec<BenchResult> {
    let k = k.max(1);
    benches()
        .into_iter()
        .map(|b| {
            let samples: Vec<Sample> = (0..k).map(|_| (b.run)(iters)).collect();
            let first = samples[0];
            for s in &samples {
                assert_eq!(s.ops, first.ops, "{}: ops must be deterministic", b.name);
                assert_eq!(
                    s.checksum, first.checksum,
                    "{}: checksum must be deterministic",
                    b.name
                );
            }
            let mut ns: Vec<u128> = samples.iter().map(|s| s.ns).collect();
            ns.sort_unstable();
            let median = ns[ns.len() / 2];
            BenchResult {
                name: b.name,
                iters,
                ops: first.ops,
                checksum: first.checksum,
                ns_per_op: median as f64 / first.ops.max(1) as f64,
            }
        })
        .collect()
}

/// Renders the byte-stable `BENCH_MICRO.json` document: bench name,
/// iteration/op counts, and the checksum (hex string — exact at any
/// width, unlike a JSON number). No timing fields: wall numbers are
/// host-dependent and belong in the printed table only.
#[must_use]
pub fn to_json(results: &[BenchResult]) -> String {
    let arr = JsonValue::Arr(
        results
            .iter()
            .map(|r| {
                JsonValue::obj(vec![
                    ("bench", JsonValue::Str(r.name.to_owned())),
                    ("iters", JsonValue::Num(r.iters as f64)),
                    ("ops", JsonValue::Num(r.ops as f64)),
                    ("checksum", JsonValue::Str(format!("{:#018x}", r.checksum))),
                ])
            })
            .collect(),
    );
    let mut text = arr.render();
    text.push('\n');
    text
}

/// Renders the human-readable ns/op table.
#[must_use]
pub fn to_table(results: &[BenchResult]) -> String {
    let mut out = String::from(
        "bench                 iters      ops   ns/op (median)  checksum\n\
         -----                 -----      ---   --------------  --------\n",
    );
    for r in results {
        out.push_str(&format!(
            "{:<20} {:>6} {:>8}   {:>14.1}  {:#018x}\n",
            r.name, r.iters, r.ops, r.ns_per_op, r.checksum
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_benches_run_and_are_deterministic() {
        let a = run_all(32, 2);
        let b = run_all(32, 2);
        assert!(a.len() >= 4, "acceptance: at least 4 microbenches");
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(x.ops, y.ops);
            assert_eq!(x.checksum, y.checksum);
        }
    }

    #[test]
    fn json_is_byte_stable_and_parses() {
        let a = to_json(&run_all(16, 2));
        let b = to_json(&run_all(16, 2));
        assert_eq!(a, b, "BENCH_MICRO.json must be byte-stable");
        let parsed = JsonValue::parse(&a).expect("own output parses");
        let arr = parsed.as_array().expect("top level is an array");
        assert!(arr.len() >= 4);
        for entry in arr {
            for key in ["bench", "iters", "ops", "checksum"] {
                assert!(entry.get(key).is_some(), "entry missing `{key}`");
            }
        }
    }

    #[test]
    fn iters_one_smoke() {
        // The CI smoke path: every bench must survive a single iteration.
        let r = run_all(1, 1);
        assert!(r.iter().all(|x| x.ops >= 1));
    }

    #[test]
    fn lint_parse_folds_real_items() {
        // The front-end must find items in every synthetic file (a zero
        // or corpus-size-only checksum would mean the parser bailed).
        let r = run_all(4, 2);
        let lp = r.iter().find(|x| x.name == "lint_parse_workspace").unwrap();
        assert_eq!(lp.ops, 4);
        assert_ne!(lp.checksum, 0);
    }

    #[test]
    fn sched_pick_folds_real_work() {
        // Both depths must emit candidates and pick a request every
        // iteration (a zero checksum would mean the view came up empty).
        // The checksums *matching* across depths is fine — the whole
        // point of the frontier view is that deeper queues over the same
        // banks produce the same candidate set.
        let r = run_all(8, 1);
        let d8 = r.iter().find(|x| x.name == "sched_pick_depth8").unwrap();
        let d256 = r.iter().find(|x| x.name == "sched_pick_depth256").unwrap();
        assert_eq!(d8.ops, 8);
        assert_eq!(d256.ops, 8);
        assert_ne!(d8.checksum, 0);
        assert_ne!(d256.checksum, 0);
    }
}
