//! The injector: executes a [`FaultPlan`] against the stream of DRAM
//! events and answers "which bits of this codeword are wrong right now?"

use std::collections::HashMap;
use std::fmt;

use crate::plan::{FaultKind, FaultPlan};
use crate::rng::{
    chance, fold, hash, unit, STREAM_DECAY, STREAM_HAMMER, STREAM_STUCK, STREAM_TRANSIENT,
    STREAM_WEAK,
};

/// Bits per protected word: 64 data + 8 SECDED check bits. Flip masks
/// index the same 0..72 space as `ia_reliability::ecc::inject_error`.
pub const CODEWORD_BITS: u32 = 72;

/// Identity of one DRAM row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RowSite {
    /// Channel index.
    pub channel: usize,
    /// Rank index within the channel.
    pub rank: usize,
    /// Bank index within the rank.
    pub bank: usize,
    /// Row index within the bank.
    pub row: u64,
}

impl RowSite {
    fn key(&self) -> RowKey {
        (self.channel, self.rank, self.bank, self.row)
    }

    fn folded(&self) -> u64 {
        fold(self.channel, self.rank, self.bank, self.row)
    }
}

type RowKey = (usize, usize, usize, u64);
type WordKey = (RowKey, u64);

/// Which bits of a 72-bit codeword read back flipped, and which of those
/// are transient (absent on a retry of the same read).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlipMask {
    /// Every flipped bit, persistent and transient combined.
    pub bits: u128,
    /// The subset of `bits` that a retry does not see.
    pub transient: u128,
}

impl FlipMask {
    /// No flips at all.
    pub const CLEAN: FlipMask = FlipMask {
        bits: 0,
        transient: 0,
    };

    /// True when nothing flipped.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.bits == 0
    }

    /// The bits a retry still sees: stuck-at and uncorrected soft flips.
    #[must_use]
    pub fn persistent(&self) -> u128 {
        self.bits & !self.transient
    }

    /// Number of flipped bits.
    #[must_use]
    pub fn flipped(&self) -> u32 {
        self.bits.count_ones()
    }
}

/// Lifetime counters for one injector, broken out per mechanism.
/// `ia-memctrl` mirrors these into its telemetry scope.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// RowHammer victim bits newly flipped.
    pub rowhammer_flips: u64,
    /// Retention bits newly flipped after a refresh-interval overrun.
    pub retention_flips: u64,
    /// Transient bus/command errors raised.
    pub transient_flips: u64,
    /// Stuck-at cells discovered (counted once each).
    pub stuck_cells: u64,
    /// Scripted faults that have manifested.
    pub scripted_applied: u64,
    /// Scrub writes observed (soft-flip clears).
    pub scrubs: u64,
    /// Targeted per-row refreshes observed (escalation/quarantine hook).
    pub row_refreshes: u64,
    /// Reads that returned a non-clean mask.
    pub reads_faulted: u64,
}

impl FaultStats {
    /// Total bits injected across every mechanism.
    #[must_use]
    pub fn injected(&self) -> u64 {
        self.rowhammer_flips
            + self.retention_flips
            + self.transient_flips
            + self.stuck_cells
            + self.scripted_applied
    }
}

impl fmt::Display for FaultStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} injected (rh {}, ret {}, bus {}, stuck {}, scripted {}), {} faulted reads, {} scrubs, {} row refreshes",
            self.injected(),
            self.rowhammer_flips,
            self.retention_flips,
            self.transient_flips,
            self.stuck_cells,
            self.scripted_applied,
            self.reads_faulted,
            self.scrubs,
            self.row_refreshes,
        )
    }
}

/// The hook a fault model exposes to the memory stack. `ia-dram` emits
/// the events; `ia-memctrl`'s reliability pipeline forwards them and
/// consumes the returned flip masks on reads.
///
/// The contract mirrors device physics:
///
/// * **activate** restores the opened row's charge (any overdue decay
///   materializes as flips *first*, because the decayed value is what
///   the sense amps latch) and disturbs the two neighbor rows.
/// * **read** returns the current flip mask for one codeword.
/// * **write** rewrites one codeword — the scrub path — clearing soft
///   flips but never stuck-at cells.
/// * **refresh** is the rank-level auto-refresh command stream.
/// * **row_refresh** is a targeted refresh of one row — the mitigation
///   feedback edge: refresh-rate escalation and victim-row care use it
///   to reset that row's decay clock and disturbance exposure.
pub trait Inject: fmt::Debug + Send {
    /// A row was activated at cycle `now`.
    fn on_activate(&mut self, site: &RowSite, now: u64);
    /// Word `word` of the given row is being read at cycle `now`.
    fn on_read(&mut self, site: &RowSite, word: u64, now: u64) -> FlipMask;
    /// Word `word` of the given row is being (re)written at cycle `now`.
    fn on_write(&mut self, site: &RowSite, word: u64, now: u64);
    /// A rank-level refresh command executed at cycle `now`.
    fn on_refresh(&mut self, channel: usize, rank: usize, now: u64);
    /// A targeted single-row refresh executed at cycle `now`.
    fn on_row_refresh(&mut self, site: &RowSite, now: u64);
    /// Lifetime injection counters.
    fn stats(&self) -> FaultStats {
        FaultStats::default()
    }
    /// Boxed deep copy — everything a fault process tracks (exposure,
    /// decay clocks, materialized flips, RNG position) — so the owning
    /// pipeline and controller can be snapshot/forked deterministically.
    fn clone_box(&self) -> Box<dyn Inject>;
}

impl Clone for Box<dyn Inject> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

/// A hook that never injects anything — the "fault-free device".
#[derive(Debug, Clone, Copy, Default)]
pub struct NoFaults;

impl Inject for NoFaults {
    fn on_activate(&mut self, _site: &RowSite, _now: u64) {}
    fn on_read(&mut self, _site: &RowSite, _word: u64, _now: u64) -> FlipMask {
        FlipMask::CLEAN
    }
    fn on_write(&mut self, _site: &RowSite, _word: u64, _now: u64) {}
    fn on_refresh(&mut self, _channel: usize, _rank: usize, _now: u64) {}
    fn on_row_refresh(&mut self, _site: &RowSite, _now: u64) {}
    fn clone_box(&self) -> Box<dyn Inject> {
        Box::new(*self)
    }
}

/// Executes a [`FaultPlan`]: tracks per-row disturbance exposure and
/// decay clocks, materializes flips per the plan's probabilistic model
/// plus its scripted list, and serves flip masks on reads.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    plan: FaultPlan,
    /// Soft (scrubbable) flips per codeword: RowHammer, retention,
    /// scripted soft faults.
    soft: HashMap<WordKey, u128>,
    /// Stuck-at masks per codeword, materialized lazily on first touch
    /// (`None` entries are never stored — absence means "not yet
    /// examined", zero means "examined, not stuck").
    stuck: HashMap<WordKey, u128>,
    /// Aggressor activations absorbed per victim row since its last
    /// refresh.
    exposure: HashMap<RowKey, u64>,
    /// Last cycle each row was individually restored (activate, write,
    /// or targeted refresh).
    row_restored: HashMap<RowKey, u64>,
    /// Last cycle a full refresh pass completed, per (channel, rank).
    rank_epoch: HashMap<(usize, usize), u64>,
    /// Rank-refresh commands seen so far, per (channel, rank).
    refresh_calls: HashMap<(usize, usize), u64>,
    /// Monotonic read counter — the transient-error decision key.
    reads: u64,
    /// Which scripted faults have manifested.
    scripted_done: Vec<bool>,
    stats: FaultStats,
}

impl FaultInjector {
    /// Builds an injector for the given plan (see [`FaultPlan::build`]).
    #[must_use]
    pub fn new(plan: FaultPlan) -> Self {
        let scripted_done = vec![false; plan.scripted.len()];
        FaultInjector {
            plan,
            soft: HashMap::new(),
            stuck: HashMap::new(),
            exposure: HashMap::new(),
            row_restored: HashMap::new(),
            rank_epoch: HashMap::new(),
            refresh_calls: HashMap::new(),
            reads: 0,
            scripted_done,
            stats: FaultStats::default(),
        }
    }

    /// The campaign this injector executes.
    #[must_use]
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// True for rows in the fault-immune spare pool.
    fn immune(&self, row: u64) -> bool {
        self.plan.spare_floor.is_some_and(|floor| row >= floor)
    }

    /// Last cycle this row's charge was known-good: the later of its
    /// individual restore and the last full rank refresh pass.
    fn last_restored(&self, key: RowKey) -> u64 {
        let rank_pass = self.rank_epoch.get(&(key.0, key.1)).copied().unwrap_or(0);
        let row = self.row_restored.get(&key).copied().unwrap_or(0);
        rank_pass.max(row)
    }

    /// The row's hash-drawn retention limit in cycles, or `None` if the
    /// row is not retention-weak (or retention is disabled).
    fn retention_limit(&self, site: &RowSite) -> Option<u64> {
        if self.plan.retention_weak_prob <= 0.0 || self.plan.refresh_window == 0 {
            return None;
        }
        let folded = site.folded();
        if !chance(
            hash(self.plan.seed, STREAM_WEAK, folded, 0),
            self.plan.retention_weak_prob,
        ) {
            return None;
        }
        // Weak limits span 25–90% of the nominal window: short enough to
        // overrun under baseline refresh, long enough that a 2x–4x
        // escalated rate always covers them.
        let frac = 0.25 + 0.65 * unit(hash(self.plan.seed, STREAM_WEAK, folded, 1));
        Some(((self.plan.refresh_window as f64 * frac) as u64).max(1))
    }

    /// Sets one soft flip bit, counting it only if newly set. Returns
    /// true when the bit was new.
    fn set_soft(&mut self, key: WordKey, bit: u32) -> bool {
        let slot = self.soft.entry(key).or_insert(0);
        let mask = 1u128 << bit;
        if *slot & mask == 0 {
            *slot |= mask;
            true
        } else {
            false
        }
    }

    /// Materializes (or recalls) the stuck-at mask for one codeword.
    fn stuck_mask(&mut self, site: &RowSite, word: u64) -> u128 {
        if self.plan.stuck_prob <= 0.0 {
            return self.stuck.get(&(site.key(), word)).copied().unwrap_or(0);
        }
        let key = (site.key(), word);
        if let Some(&mask) = self.stuck.get(&key) {
            return mask;
        }
        let folded = site.folded();
        let h = hash(self.plan.seed, STREAM_STUCK, folded, word);
        let mask = if chance(h, self.plan.stuck_prob) {
            let bit =
                hash(self.plan.seed, STREAM_STUCK, folded ^ h, word) % u64::from(CODEWORD_BITS);
            self.stats.stuck_cells += 1;
            1u128 << bit
        } else {
            0
        };
        self.stuck.insert(key, mask);
        mask
    }

    /// Applies any scripted faults targeting this codeword that are due.
    fn apply_scripted(&mut self, site: &RowSite, word: u64, now: u64) -> u128 {
        let mut transient = 0u128;
        for i in 0..self.plan.scripted.len() {
            if self.scripted_done[i] {
                continue;
            }
            let f = self.plan.scripted[i];
            let matches = f.channel == site.channel
                && f.rank == site.rank
                && f.bank == site.bank
                && f.row == site.row
                && f.word == word
                && now >= f.at;
            if !matches {
                continue;
            }
            self.scripted_done[i] = true;
            self.stats.scripted_applied += 1;
            let bit = u32::from(f.bit) % CODEWORD_BITS;
            match f.kind {
                FaultKind::StuckAt => {
                    *self.stuck.entry((site.key(), word)).or_insert(0) |= 1u128 << bit;
                }
                FaultKind::TransientBus => {
                    transient |= 1u128 << bit;
                }
                FaultKind::RowHammer | FaultKind::Retention => {
                    self.set_soft((site.key(), word), bit);
                }
            }
        }
        transient
    }

    /// Disturbs one neighbor of an activated aggressor row.
    fn hammer(&mut self, victim: RowSite) {
        if self.immune(victim.row) {
            return;
        }
        let key = victim.key();
        let count = self.exposure.entry(key).or_insert(0);
        *count += 1;
        if !(*count).is_multiple_of(self.plan.rowhammer_threshold) {
            return;
        }
        let trip = *count / self.plan.rowhammer_threshold;
        let folded = victim.folded();
        let h = hash(self.plan.seed, STREAM_HAMMER, folded, trip);
        if !chance(h, self.plan.rowhammer_flip_prob) {
            return;
        }
        let word = hash(self.plan.seed, STREAM_HAMMER, folded ^ h, trip) % self.plan.words_per_row;
        let bit = (hash(self.plan.seed, STREAM_HAMMER, folded.wrapping_add(h), trip)
            % u64::from(CODEWORD_BITS)) as u32;
        if self.set_soft((key, word), bit) {
            self.stats.rowhammer_flips += 1;
        }
    }
}

impl Inject for FaultInjector {
    fn clone_box(&self) -> Box<dyn Inject> {
        Box::new(self.clone())
    }

    fn on_activate(&mut self, site: &RowSite, now: u64) {
        if self.immune(site.row) {
            return;
        }
        let key = site.key();
        // Retention: the decayed value is latched before the activate
        // restores charge, so an overrun materializes a flip first.
        if let Some(limit) = self.retention_limit(site) {
            let restored = self.last_restored(key);
            if now.saturating_sub(restored) > limit {
                let folded = site.folded();
                let word =
                    hash(self.plan.seed, STREAM_DECAY, folded, restored) % self.plan.words_per_row;
                let bit = (hash(
                    self.plan.seed,
                    STREAM_DECAY,
                    folded ^ restored.wrapping_add(1),
                    1,
                ) % u64::from(CODEWORD_BITS)) as u32;
                if self.set_soft((key, word), bit) {
                    self.stats.retention_flips += 1;
                }
            }
        }
        self.row_restored.insert(key, now);
        // Disturbance: both physical neighbors absorb one exposure hit.
        if self.plan.rowhammer_threshold > 0 {
            if site.row > 0 {
                self.hammer(RowSite {
                    row: site.row - 1,
                    ..*site
                });
            }
            if site.row + 1 < self.plan.rows_per_bank {
                self.hammer(RowSite {
                    row: site.row + 1,
                    ..*site
                });
            }
        }
    }

    fn on_read(&mut self, site: &RowSite, word: u64, now: u64) -> FlipMask {
        if self.immune(site.row) {
            return FlipMask::CLEAN;
        }
        self.reads += 1;
        let mut transient = self.apply_scripted(site, word, now);
        let mut bits = self.stuck_mask(site, word);
        bits |= self.soft.get(&(site.key(), word)).copied().unwrap_or(0);
        if self.plan.transient_prob > 0.0 {
            let h = hash(self.plan.seed, STREAM_TRANSIENT, self.reads, 0);
            if chance(h, self.plan.transient_prob) {
                let bit = hash(self.plan.seed, STREAM_TRANSIENT, self.reads, 1)
                    % u64::from(CODEWORD_BITS);
                transient |= 1u128 << bit;
                self.stats.transient_flips += 1;
            }
        }
        bits |= transient;
        if bits != 0 {
            self.stats.reads_faulted += 1;
        }
        FlipMask { bits, transient }
    }

    fn on_write(&mut self, site: &RowSite, word: u64, now: u64) {
        if self.immune(site.row) {
            return;
        }
        let key = site.key();
        if self.soft.remove(&(key, word)).is_some() {
            self.stats.scrubs += 1;
        }
        // Writing implies the row is open: its charge is restored.
        self.row_restored.insert(key, now);
    }

    fn on_refresh(&mut self, channel: usize, rank: usize, now: u64) {
        let calls = self.refresh_calls.entry((channel, rank)).or_insert(0);
        *calls += 1;
        if (*calls).is_multiple_of(self.plan.slots_per_window) {
            // A full pass completed: every row in the rank is restored
            // and its disturbance exposure cleared.
            self.rank_epoch.insert((channel, rank), now);
            self.exposure
                .retain(|key, _| !(key.0 == channel && key.1 == rank));
        }
    }

    fn on_row_refresh(&mut self, site: &RowSite, now: u64) {
        self.row_restored.insert(site.key(), now);
        self.exposure.remove(&site.key());
        self.stats.row_refreshes += 1;
    }

    fn stats(&self) -> FaultStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::ScriptedFault;

    fn site(row: u64) -> RowSite {
        RowSite {
            channel: 0,
            rank: 0,
            bank: 0,
            row,
        }
    }

    #[test]
    fn unconfigured_plan_injects_nothing() {
        let mut inj = FaultPlan::new(1).build();
        for row in 0..64 {
            inj.on_activate(&site(row), row * 10);
            for word in 0..8 {
                assert!(inj.on_read(&site(row), word, row * 10 + 1).is_clean());
            }
        }
        assert_eq!(inj.stats().injected(), 0);
    }

    #[test]
    fn rowhammer_flips_keyed_to_activation_counts() {
        let mut inj = FaultPlan::new(7)
            .geometry(1 << 10, 8)
            .rowhammer(100, 1.0)
            .build();
        // Hammer row 5: rows 4 and 6 are the victims.
        for n in 0..1_000u64 {
            inj.on_activate(&site(5), n);
        }
        // 1000 activations / threshold 100 = 10 trips per victim at
        // p=1.0; each trip flips one (possibly repeated) bit.
        assert!(inj.stats().rowhammer_flips >= 2, "{}", inj.stats());
        // Flips land in the victims, not the aggressor.
        let mut victim_hit = false;
        for word in 0..8 {
            assert!(inj.on_read(&site(5), word, 1_000).is_clean());
            victim_hit |= !inj.on_read(&site(4), word, 1_000).is_clean();
            victim_hit |= !inj.on_read(&site(6), word, 1_000).is_clean();
        }
        assert!(victim_hit, "victim rows carry the flips");
    }

    #[test]
    fn rowhammer_exposure_resets_on_row_refresh() {
        let mut a = FaultPlan::new(7)
            .geometry(1 << 10, 8)
            .rowhammer(100, 1.0)
            .build();
        let mut b = FaultPlan::new(7)
            .geometry(1 << 10, 8)
            .rowhammer(100, 1.0)
            .build();
        for n in 0..990u64 {
            a.on_activate(&site(5), n);
            b.on_activate(&site(5), n);
            if n % 50 == 0 {
                // b's victims get targeted refreshes well under the
                // threshold cadence: exposure never reaches 100.
                b.on_row_refresh(&site(4), n);
                b.on_row_refresh(&site(6), n);
            }
        }
        assert!(a.stats().rowhammer_flips > 0);
        assert_eq!(b.stats().rowhammer_flips, 0, "quarantined victims survive");
    }

    #[test]
    fn retention_flip_requires_an_overrun_and_scrub_clears_it() {
        // weak_prob 1.0: every row is weak, limit in 25–90% of 1000.
        let plan = FaultPlan::new(3)
            .geometry(1 << 10, 4)
            .retention(1.0, 1000, 1);
        let mut inj = plan.build();
        inj.on_activate(&site(9), 0); // restore at t=0
        inj.on_activate(&site(9), 100); // 100 < limit: no decay
        assert_eq!(inj.stats().retention_flips, 0);
        inj.on_activate(&site(9), 5_000); // way past any limit: flip
        assert_eq!(inj.stats().retention_flips, 1);
        let flipped: Vec<u64> = (0..4)
            .filter(|&w| !inj.on_read(&site(9), w, 5_001).is_clean())
            .collect();
        assert_eq!(flipped.len(), 1);
        // Scrub the word: the flip is gone and the clock reset.
        inj.on_write(&site(9), flipped[0], 5_002);
        assert!(inj.on_read(&site(9), flipped[0], 5_003).is_clean());
        inj.on_activate(&site(9), 5_100); // fresh again: no new flip
        assert_eq!(inj.stats().retention_flips, 1);
    }

    #[test]
    fn escalated_row_refresh_prevents_retention_overruns() {
        let mut inj = FaultPlan::new(3)
            .geometry(1 << 10, 4)
            .retention(1.0, 1000, 1)
            .build();
        // Refresh row 9 every 200 cycles (< 250, the minimum limit):
        // even a 10-window idle stretch decays nothing.
        for t in (0..10_000u64).step_by(200) {
            inj.on_row_refresh(&site(9), t);
        }
        inj.on_activate(&site(9), 10_050);
        assert_eq!(inj.stats().retention_flips, 0);
    }

    #[test]
    fn transient_errors_vanish_on_retry_semantics() {
        let mut inj = FaultPlan::new(11)
            .geometry(1 << 10, 8)
            .transient(1.0)
            .build();
        let mask = inj.on_read(&site(0), 0, 10);
        assert!(!mask.is_clean());
        assert_eq!(mask.bits, mask.transient, "pure transient");
        assert_eq!(mask.persistent(), 0);
    }

    #[test]
    fn stuck_cells_survive_scrubbing() {
        // stuck_prob 1.0: every word has a stuck bit.
        let mut inj = FaultPlan::new(5).geometry(1 << 10, 8).stuck(1.0).build();
        let before = inj.on_read(&site(3), 2, 10);
        assert!(!before.is_clean());
        assert_eq!(before.transient, 0);
        inj.on_write(&site(3), 2, 11);
        let after = inj.on_read(&site(3), 2, 12);
        assert_eq!(after.bits, before.bits, "write does not heal stuck-at");
        assert_eq!(inj.stats().stuck_cells, 1, "counted once");
    }

    #[test]
    fn spare_rows_are_immune() {
        let mut inj = FaultPlan::new(9)
            .geometry(1 << 10, 8)
            .spare_floor(1000)
            .rowhammer(1, 1.0)
            .retention(1.0, 100, 1)
            .transient(1.0)
            .stuck(1.0)
            .build();
        inj.on_activate(&site(1001), 50_000);
        for word in 0..8 {
            assert!(inj.on_read(&site(1000), word, 50_001).is_clean());
            assert!(inj.on_read(&site(1023), word, 50_001).is_clean());
        }
        assert_eq!(inj.stats().injected(), 0);
    }

    #[test]
    fn scripted_faults_fire_once_at_their_cycle() {
        let fault = ScriptedFault {
            at: 100,
            channel: 0,
            rank: 0,
            bank: 0,
            row: 7,
            word: 3,
            bit: 42,
            kind: FaultKind::Retention,
        };
        let mut inj = FaultPlan::new(1).geometry(1 << 10, 8).script(fault).build();
        assert!(inj.on_read(&site(7), 3, 50).is_clean(), "not due yet");
        let mask = inj.on_read(&site(7), 3, 150);
        assert_eq!(mask.bits, 1u128 << 42);
        assert_eq!(inj.stats().scripted_applied, 1);
        inj.on_write(&site(7), 3, 160);
        assert!(inj.on_read(&site(7), 3, 170).is_clean(), "soft kind scrubs");
    }

    #[test]
    fn decisions_are_order_independent() {
        // Same plan, rows touched in opposite orders: each row's fate is
        // identical because decisions key on identity, not sequence.
        let plan = FaultPlan::new(42)
            .geometry(1 << 10, 8)
            .rowhammer(10, 0.5)
            .stuck(0.1);
        let mut fwd = plan.clone().build();
        let mut rev = plan.build();
        let rows: Vec<u64> = (0..50).collect();
        for &r in &rows {
            for n in 0..30u64 {
                fwd.on_activate(&site(r), n);
            }
        }
        for &r in rows.iter().rev() {
            for n in 0..30u64 {
                rev.on_activate(&site(r), n);
            }
        }
        for &r in &rows {
            for w in 0..8 {
                assert_eq!(
                    fwd.on_read(&site(r), w, 10_000).bits,
                    rev.on_read(&site(r), w, 10_000).bits,
                    "row {r} word {w}"
                );
            }
        }
    }

    #[test]
    fn rank_refresh_pass_restores_rows() {
        let mut inj = FaultPlan::new(3)
            .geometry(1 << 10, 4)
            .retention(1.0, 1000, 4)
            .build();
        // 4 slots per window: passes complete on calls 4, 8, ...
        for (i, t) in (0..8u64).map(|i| (i, i * 250)).collect::<Vec<_>>() {
            inj.on_refresh(0, 0, t);
            let _ = i;
        }
        // Last pass completed at t=1750; an activate at 2000 is only 250
        // cycles later — under every possible limit, so no flip.
        inj.on_activate(&site(77), 2_000);
        assert_eq!(inj.stats().retention_flips, 0);
        // But 5000 cycles after the pass is past every limit (max 900).
        let mut stale = FaultPlan::new(3)
            .geometry(1 << 10, 4)
            .retention(1.0, 1000, 4)
            .build();
        for t in 0..8u64 {
            stale.on_refresh(0, 0, t * 250);
        }
        stale.on_activate(&site(77), 6_750);
        assert_eq!(stale.stats().retention_flips, 1);
    }
}
