//! Counter-keyed deterministic randomness.
//!
//! The injector never holds a stateful RNG. Every probabilistic decision
//! is a pure function `hash(seed, stream, a, b)` of the campaign seed, a
//! per-fault-kind stream constant, and the *identity* of the decision
//! (which row, which word, which threshold trip). Two consequences:
//!
//! * **Order independence** — whether row A is activated before or after
//!   row B cannot change either row's fate, so campaign results survive
//!   refactors that reorder event delivery.
//! * **Replayability** — a single `u64` seed reproduces an entire
//!   campaign bit-for-bit, which is what lets `exp24` demand
//!   byte-identical JSON across `--threads`.
//!
//! The mixer is the splitmix64 finalizer (Steele et al.), the same
//! avalanche core `ia-rand` uses for seeding xoshiro256++.

/// Stream tag: is this row retention-weak, and how weak?
pub(crate) const STREAM_WEAK: u64 = 0x5245_5445;
/// Stream tag: RowHammer flip decisions per threshold trip.
pub(crate) const STREAM_HAMMER: u64 = 0x4841_4D52;
/// Stream tag: transient bus/command errors per read.
pub(crate) const STREAM_TRANSIENT: u64 = 0x5452_4E53;
/// Stream tag: stuck-at cell placement per (row, word).
pub(crate) const STREAM_STUCK: u64 = 0x5354_434B;
/// Stream tag: which word/bit a retention overrun corrupts.
pub(crate) const STREAM_DECAY: u64 = 0x4443_4159;

/// splitmix64 finalizer: full-avalanche 64-bit mixer.
#[inline]
#[must_use]
pub(crate) fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The decision hash: uniform `u64` from (seed, stream, a, b).
#[inline]
#[must_use]
pub(crate) fn hash(seed: u64, stream: u64, a: u64, b: u64) -> u64 {
    // Chained splitmix: each input passes through a full avalanche round
    // before combining, so low-entropy inputs (small row numbers, small
    // counters) still flip every output bit with probability ~1/2.
    mix(
        mix(mix(mix(seed ^ 0x9E37_79B9_7F4A_7C15).wrapping_add(stream)).wrapping_add(a))
            .wrapping_add(b),
    )
}

/// Folds a (channel, rank, bank, row) identity into one hash key.
#[inline]
#[must_use]
pub(crate) fn fold(channel: usize, rank: usize, bank: usize, row: u64) -> u64 {
    mix((channel as u64)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(mix((rank as u64) << 32 | bank as u64))
        .wrapping_add(mix(row)))
}

/// Maps a hash to the unit interval [0, 1) with 53 bits of precision.
#[inline]
#[must_use]
pub(crate) fn unit(h: u64) -> f64 {
    (h >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0)
}

/// Bernoulli trial: true with probability `p`.
#[inline]
#[must_use]
pub(crate) fn chance(h: u64, p: f64) -> bool {
    unit(h) < p
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic_and_input_sensitive() {
        assert_eq!(hash(1, 2, 3, 4), hash(1, 2, 3, 4));
        let base = hash(1, 2, 3, 4);
        assert_ne!(base, hash(2, 2, 3, 4));
        assert_ne!(base, hash(1, 3, 3, 4));
        assert_ne!(base, hash(1, 2, 4, 4));
        assert_ne!(base, hash(1, 2, 3, 5));
    }

    #[test]
    fn unit_stays_in_range_and_chance_tracks_probability() {
        let mut hits = 0u32;
        for i in 0..10_000u64 {
            let h = hash(7, STREAM_TRANSIENT, i, 0);
            let u = unit(h);
            assert!((0.0..1.0).contains(&u));
            if chance(h, 0.25) {
                hits += 1;
            }
        }
        // 10k trials at p=0.25: expect ~2500, allow generous slack.
        assert!((2000..3000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn fold_separates_nearby_sites() {
        let a = fold(0, 0, 0, 5);
        assert_ne!(a, fold(0, 0, 0, 6));
        assert_ne!(a, fold(0, 0, 1, 5));
        assert_ne!(a, fold(0, 1, 0, 5));
        assert_ne!(a, fold(1, 0, 0, 5));
    }
}
