//! Campaign description: which faults exist, at what rates, where.

/// The physical mechanism behind an injected fault. Mitigations key off
/// this: RowHammer flips respond to quarantine, retention flips to
/// refresh-rate escalation, transient errors to retry, stuck-at cells
/// only to remapping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// Disturbance flip in a victim row caused by aggressor activations.
    RowHammer,
    /// Charge-leak flip in a weak cell whose refresh interval was
    /// overrun.
    Retention,
    /// One-shot bus/command error: corrupts a single transfer, gone on
    /// retry.
    TransientBus,
    /// Permanently defective cell: reads wrong on every access, immune
    /// to scrubbing — only remapping helps.
    StuckAt,
}

/// One scripted fault: a deterministic event placed by hand rather than
/// drawn from the probabilistic model. Applied the first time the target
/// word is read at or after `at`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScriptedFault {
    /// Earliest cycle the fault may manifest.
    pub at: u64,
    /// Channel of the target row.
    pub channel: usize,
    /// Rank of the target row.
    pub rank: usize,
    /// Bank of the target row.
    pub bank: usize,
    /// Row index inside the bank.
    pub row: u64,
    /// Word index inside the row (one word = one 72-bit SECDED codeword).
    pub word: u64,
    /// Which codeword bit flips (0..72; 64+ are check bits).
    pub bit: u8,
    /// Mechanism — decides persistence semantics (see [`FaultKind`]).
    pub kind: FaultKind,
}

/// A seed-deterministic fault campaign: geometry, per-mechanism rates,
/// and an optional scripted fault list. `build()` produces the
/// [`FaultInjector`](crate::FaultInjector) that executes it.
///
/// All rates default to zero — an unconfigured plan injects nothing —
/// so callers opt into exactly the mechanisms a campaign studies.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    /// Campaign seed: every probabilistic decision is a pure function of
    /// this plus the decision's identity.
    pub seed: u64,
    /// Rows per bank (faultable address space per bank).
    pub rows_per_bank: u64,
    /// 64-bit words per row (each word carries its own SECDED codeword).
    pub words_per_row: u64,
    /// Rows at or above this index are fault-immune: the controller's
    /// spare-row pool, provisioned from screened strong cells.
    pub spare_floor: Option<u64>,
    /// Aggressor activations per victim before a flip opportunity
    /// (`0` disables RowHammer).
    pub rowhammer_threshold: u64,
    /// Probability a threshold trip actually flips a victim bit.
    pub rowhammer_flip_prob: f64,
    /// Probability any given row is retention-weak (`0` disables).
    pub retention_weak_prob: f64,
    /// Cycles for one full refresh pass over the array (the nominal
    /// retention window every cell must survive).
    pub refresh_window: u64,
    /// Rank-refresh commands per full pass; the injector counts
    /// `on_refresh` calls and completes a pass every this-many.
    pub slots_per_window: u64,
    /// Per-read probability of a transient bus/command error.
    pub transient_prob: f64,
    /// Per-(row, word) probability of a stuck-at cell.
    pub stuck_prob: f64,
    /// Hand-placed faults, applied on top of the probabilistic model.
    pub scripted: Vec<ScriptedFault>,
}

impl FaultPlan {
    /// A plan with the given seed and all mechanisms disabled.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            rows_per_bank: 1 << 15,
            words_per_row: 1024,
            spare_floor: None,
            rowhammer_threshold: 0,
            rowhammer_flip_prob: 0.0,
            retention_weak_prob: 0.0,
            refresh_window: 0,
            slots_per_window: 1,
            transient_prob: 0.0,
            stuck_prob: 0.0,
            scripted: Vec::new(),
        }
    }

    /// Sets the faultable geometry: rows per bank and words per row.
    #[must_use]
    pub fn geometry(mut self, rows_per_bank: u64, words_per_row: u64) -> Self {
        self.rows_per_bank = rows_per_bank;
        self.words_per_row = words_per_row.max(1);
        self
    }

    /// Marks rows at or above `floor` as the fault-immune spare pool.
    #[must_use]
    pub fn spare_floor(mut self, floor: u64) -> Self {
        self.spare_floor = Some(floor);
        self
    }

    /// Enables RowHammer: every `threshold` aggressor activations give
    /// each neighbor a `flip_prob` chance of one bit flip.
    #[must_use]
    pub fn rowhammer(mut self, threshold: u64, flip_prob: f64) -> Self {
        self.rowhammer_threshold = threshold;
        self.rowhammer_flip_prob = flip_prob;
        self
    }

    /// Enables retention faults: each row is weak with probability
    /// `weak_prob`; weak rows leak a bit whenever their refresh interval
    /// overruns their (hash-drawn, 25–90% of `refresh_window`) limit.
    /// `slots_per_window` rank-refresh commands complete one full pass.
    #[must_use]
    pub fn retention(mut self, weak_prob: f64, refresh_window: u64, slots_per_window: u64) -> Self {
        self.retention_weak_prob = weak_prob;
        self.refresh_window = refresh_window;
        self.slots_per_window = slots_per_window.max(1);
        self
    }

    /// Enables transient bus/command errors at `prob` per read.
    #[must_use]
    pub fn transient(mut self, prob: f64) -> Self {
        self.transient_prob = prob;
        self
    }

    /// Enables stuck-at cells at `prob` per (row, word).
    #[must_use]
    pub fn stuck(mut self, prob: f64) -> Self {
        self.stuck_prob = prob;
        self
    }

    /// Appends one scripted fault.
    #[must_use]
    pub fn script(mut self, fault: ScriptedFault) -> Self {
        self.scripted.push(fault);
        self
    }

    /// Builds the injector that executes this campaign.
    #[must_use]
    pub fn build(self) -> crate::FaultInjector {
        crate::FaultInjector::new(self)
    }
}
