//! # ia-faults — deterministic fault injection
//!
//! The paper's bottom-up argument is that technology scaling has made
//! DRAM *inherently* unreliable — RowHammer disturbance, retention
//! failures in weak cells, marginal timing — and that the economic
//! response is not perfect silicon but **intelligent controllers** that
//! detect, correct, and degrade gracefully. `ia-reliability` models
//! those mechanisms in isolation; this crate injects them into *live
//! simulated data* so the rest of the stack can prove it survives them.
//!
//! ## Design
//!
//! * [`FaultPlan`] describes a campaign: probabilistic rates per
//!   mechanism (RowHammer flips keyed to activation counts, retention
//!   flips keyed to refresh-interval overruns, transient bus errors,
//!   stuck-at cells) plus hand-placed [`ScriptedFault`]s.
//! * [`FaultInjector`] executes the plan behind the [`Inject`] hook
//!   trait: `ia-dram` reports activates/reads/writes/refreshes, and
//!   reads come back with a [`FlipMask`] of corrupted codeword bits that
//!   `ia-memctrl`'s reliability pipeline feeds through
//!   `ia_reliability::ecc`.
//! * Every probabilistic decision is a pure hash of `(seed, decision
//!   identity)` — no stateful RNG — so campaigns are order-independent
//!   and reproduce bit-for-bit from a single seed, which is what keeps
//!   `exp24_fault_injection` byte-identical across `--threads`.
//!
//! The crate is intentionally **zero-dependency** (std only): any layer
//! of the stack can host an injector without dependency cycles.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod inject;
mod plan;
mod rng;

pub use inject::{FaultInjector, FaultStats, FlipMask, Inject, NoFaults, RowSite, CODEWORD_BITS};
pub use plan::{FaultKind, FaultPlan, ScriptedFault};
