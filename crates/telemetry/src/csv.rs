//! Minimal RFC-4180-style CSV rendering for experiment reports.

/// Quotes a field when it contains a comma, quote, or newline.
#[must_use]
pub fn escape(field: &str) -> String {
    if field.contains(['"', ',', '\n', '\r']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_owned()
    }
}

/// Renders a header row plus data rows as CSV text (trailing newline
/// included). Rows shorter than the header are padded with empty fields;
/// longer rows are emitted in full.
#[must_use]
pub fn render(headers: &[String], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    write_row(&mut out, headers.iter().map(String::as_str));
    for row in rows {
        let pad = headers.len().saturating_sub(row.len());
        write_row(
            &mut out,
            row.iter()
                .map(String::as_str)
                .chain(std::iter::repeat_n("", pad)),
        );
    }
    out
}

fn write_row<'a>(out: &mut String, fields: impl Iterator<Item = &'a str>) {
    let mut first = true;
    for f in fields {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&escape(f));
    }
    out.push('\n');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_only_when_needed() {
        assert_eq!(escape("plain"), "plain");
        assert_eq!(escape("a,b"), "\"a,b\"");
        assert_eq!(escape("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn renders_padded_rows() {
        let headers = vec!["a".to_owned(), "b".to_owned()];
        let rows = vec![vec!["1".to_owned()], vec!["2".to_owned(), "x,y".to_owned()]];
        let out = render(&headers, &rows);
        assert_eq!(out, "a,b\n1,\n2,\"x,y\"\n");
    }
}
