//! The metrics [`Registry`]: named, hierarchically-scoped instruments.
//!
//! Registration allocates (name interning, index growth); every
//! subsequent operation is an index into a flat `Vec` — no hashing, no
//! atomics, no allocation — so handles can be used from cycle-level
//! loops.

use std::collections::BTreeMap;

use crate::instrument::{Gauge, Histogram};

/// A registered metric's current value.
//
// The Histogram variant dominates the enum's size, but boxing it would
// put a pointer chase on the per-sample record path — the exact hot loop
// this registry is designed to keep flat.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonically increasing event count.
    Counter(u64),
    /// Last-written measurement.
    Gauge(f64),
    /// Distribution of `u64` samples.
    Histogram(Histogram),
}

impl MetricValue {
    /// The value as a single number for flat emitters: the count for
    /// counters, the value for gauges, the mean for histograms.
    #[must_use]
    pub fn scalar(&self) -> f64 {
        match self {
            MetricValue::Counter(n) => *n as f64,
            MetricValue::Gauge(g) => *g,
            MetricValue::Histogram(h) => h.mean(),
        }
    }
}

/// Handle to a registered counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterId(usize);

/// Handle to a registered gauge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GaugeId(usize);

/// Handle to a registered histogram.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramId(usize);

/// A registry of named instruments.
///
/// Names are dot-separated paths (`"dram.cmd.activate"`); the
/// [`Registry::scope`] helper prefixes a subtree so exporters compose
/// hierarchically. Re-registering an existing name returns the existing
/// handle (idempotent), so exporters can run repeatedly.
///
/// # Examples
///
/// ```
/// use ia_telemetry::Registry;
/// let mut reg = Registry::new();
/// let reads = reg.counter("dram.reads");
/// reg.inc(reads, 3);
/// let lat = reg.histogram("ctrl.latency");
/// reg.observe(lat, 42);
/// assert_eq!(reg.snapshot(0).counter("dram.reads"), Some(3));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Registry {
    names: Vec<String>,
    values: Vec<MetricValue>,
    index: BTreeMap<String, usize>,
}

impl Registry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        Registry::default()
    }

    fn register(&mut self, name: &str, init: MetricValue) -> usize {
        if let Some(&i) = self.index.get(name) {
            return i;
        }
        let i = self.values.len();
        self.names.push(name.to_owned());
        self.values.push(init);
        self.index.insert(name.to_owned(), i);
        i
    }

    /// Registers (or finds) a counter.
    pub fn counter(&mut self, name: &str) -> CounterId {
        CounterId(self.register(name, MetricValue::Counter(0)))
    }

    /// Registers (or finds) a gauge.
    pub fn gauge(&mut self, name: &str) -> GaugeId {
        GaugeId(self.register(name, MetricValue::Gauge(0.0)))
    }

    /// Registers (or finds) a histogram.
    pub fn histogram(&mut self, name: &str) -> HistogramId {
        HistogramId(self.register(name, MetricValue::Histogram(Histogram::new())))
    }

    /// Adds `n` to a counter. No allocation; a single indexed add.
    pub fn inc(&mut self, id: CounterId, n: u64) {
        if let MetricValue::Counter(c) = &mut self.values[id.0] {
            *c += n;
        }
    }

    /// Overwrites a counter (for exporters copying an externally
    /// maintained total).
    pub fn set_counter(&mut self, id: CounterId, total: u64) {
        if let MetricValue::Counter(c) = &mut self.values[id.0] {
            *c = total;
        }
    }

    /// Sets a gauge.
    pub fn set_gauge(&mut self, id: GaugeId, v: f64) {
        if let MetricValue::Gauge(g) = &mut self.values[id.0] {
            *g = v;
        }
    }

    /// Records a histogram sample. No allocation; two indexed adds.
    pub fn observe(&mut self, id: HistogramId, sample: u64) {
        if let MetricValue::Histogram(h) = &mut self.values[id.0] {
            h.record(sample);
        }
    }

    /// Replaces a histogram wholesale (for exporters).
    pub fn set_histogram(&mut self, id: HistogramId, h: &Histogram) {
        self.values[id.0] = MetricValue::Histogram(h.clone());
    }

    /// Number of registered instruments.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when nothing is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Looks up a metric by full name.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.index.get(name).map(|&i| &self.values[i])
    }

    /// Iterates `(name, value)` pairs in registration order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.names
            .iter()
            .map(String::as_str)
            .zip(self.values.iter())
    }

    /// A scoped view that prefixes every name with `prefix` plus a dot.
    pub fn scope<'r>(&'r mut self, prefix: &str) -> Scope<'r> {
        Scope {
            reg: self,
            prefix: prefix.to_owned(),
        }
    }

    /// Runs an exporter under `prefix`.
    pub fn collect(&mut self, prefix: &str, source: &dyn MetricSource) {
        source.export_into(&mut self.scope(prefix));
    }

    /// Captures the registry's current values as an epoch snapshot
    /// labelled `at` (typically the simulated cycle).
    #[must_use]
    pub fn snapshot(&self, at: u64) -> crate::Snapshot {
        crate::Snapshot::from_iter(
            at,
            self.names.iter().cloned().zip(self.values.iter().cloned()),
        )
    }
}

/// A prefixed view of a [`Registry`], forming the hierarchy.
///
/// Exporters receive a `Scope` so they compose: a controller exports its
/// own counters and hands `scope.child("dram")` to its DRAM module.
#[derive(Debug)]
pub struct Scope<'r> {
    reg: &'r mut Registry,
    prefix: String,
}

impl Scope<'_> {
    fn full(&self, name: &str) -> String {
        if self.prefix.is_empty() {
            name.to_owned()
        } else {
            format!("{}.{}", self.prefix, name)
        }
    }

    /// A child scope `prefix.name`.
    pub fn child(&mut self, name: &str) -> Scope<'_> {
        let prefix = self.full(name);
        Scope {
            reg: self.reg,
            prefix,
        }
    }

    /// Registers-or-updates a counter to `total`.
    pub fn set_counter(&mut self, name: &str, total: u64) {
        let id = self.reg.counter(&self.full(name));
        self.reg.set_counter(id, total);
    }

    /// Registers-or-updates a gauge.
    pub fn set_gauge(&mut self, name: &str, v: f64) {
        let id = self.reg.gauge(&self.full(name));
        self.reg.set_gauge(id, v);
    }

    /// Registers-or-replaces a histogram.
    pub fn set_histogram(&mut self, name: &str, h: &Histogram) {
        let id = self.reg.histogram(&self.full(name));
        self.reg.set_histogram(id, h);
    }

    /// Runs a nested exporter under `prefix.name`.
    pub fn collect(&mut self, name: &str, source: &dyn MetricSource) {
        source.export_into(&mut self.child(name));
    }
}

/// Implemented by stats structs that can publish themselves into a
/// registry scope. This is the uniform export path the whole workspace
/// uses (`DramStats`, `CtrlStats`, `CacheStats`, `StackConfig`, …).
pub trait MetricSource {
    /// Writes every metric this source owns into `scope`.
    fn export_into(&self, scope: &mut Scope<'_>);
}

/// Standalone gauges also export themselves (handy for ad-hoc sources).
impl MetricSource for Gauge {
    fn export_into(&self, scope: &mut Scope<'_>) {
        scope.set_gauge("value", self.get());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Fake {
        hits: u64,
    }

    impl MetricSource for Fake {
        fn export_into(&self, scope: &mut Scope<'_>) {
            scope.set_counter("hits", self.hits);
            scope.set_gauge("ratio", 0.5);
            let mut inner = scope.child("nested");
            inner.set_counter("deep", 1);
        }
    }

    #[test]
    fn registration_is_idempotent() {
        let mut reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        assert_eq!(a, b);
        reg.inc(a, 2);
        reg.inc(b, 3);
        assert_eq!(reg.get("x"), Some(&MetricValue::Counter(5)));
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn scoped_export_builds_hierarchy() {
        let mut reg = Registry::new();
        reg.collect("cache.l2", &Fake { hits: 7 });
        assert_eq!(reg.get("cache.l2.hits"), Some(&MetricValue::Counter(7)));
        assert_eq!(
            reg.get("cache.l2.nested.deep"),
            Some(&MetricValue::Counter(1))
        );
        assert!(matches!(
            reg.get("cache.l2.ratio"),
            Some(MetricValue::Gauge(_))
        ));
        // Re-export overwrites in place without growing the registry.
        let before = reg.len();
        reg.collect("cache.l2", &Fake { hits: 9 });
        assert_eq!(reg.len(), before);
        assert_eq!(reg.get("cache.l2.hits"), Some(&MetricValue::Counter(9)));
    }

    #[test]
    fn histogram_observe_through_handles() {
        let mut reg = Registry::new();
        let h = reg.histogram("lat");
        for v in [10, 10, 1000] {
            reg.observe(h, v);
        }
        match reg.get("lat") {
            Some(MetricValue::Histogram(hist)) => {
                assert_eq!(hist.count(), 3);
                assert_eq!(hist.p50(), 15); // bucket [8,15]
            }
            other => panic!("wrong metric: {other:?}"),
        }
    }

    #[test]
    fn scalar_projection() {
        assert_eq!(MetricValue::Counter(4).scalar(), 4.0);
        assert_eq!(MetricValue::Gauge(0.25).scalar(), 0.25);
    }
}
