//! # ia-telemetry — workspace-wide metrics, tracing, and report emission
//!
//! The paper's *data-driven* principle says a system should observe its
//! own behaviour and feed those observations back into control decisions.
//! This crate is the observation substrate for the whole workspace:
//!
//! * [`Registry`] — named, hierarchically-scoped instruments
//!   ([`Counter`], [`Gauge`], log2 [`Histogram`] with p50/p95/p99), plain
//!   `u64`/`f64` cells with handle-based access: no atomics, no hashing,
//!   no allocation after registration.
//! * [`Snapshot`] — epoch captures with [`Snapshot::delta`] /
//!   [`Snapshot::merge`], so per-interval rates (row-hit rate per 100k
//!   cycles, requests per epoch) can be observed the same way the RL
//!   memory controller observes its state.
//! * [`TraceBuffer`] — a bounded ring buffer for command-level event
//!   tracing with drop counting; the disabled path is one branch on a
//!   `bool` and never allocates.
//! * [`JsonValue`] / [`csv`] — hand-rolled machine-readable emitters
//!   (and a JSON parser for round-trip verification); the build is
//!   offline, so serde is unavailable by design.
//!
//! Stats structs across the workspace implement [`MetricSource`] to
//! publish themselves into a registry scope; `ia_bench::report` turns a
//! registry snapshot plus experiment-specific metrics into the
//! `--json` / `--csv` artifacts every experiment binary emits.
//!
//! ## Example
//!
//! ```
//! use ia_telemetry::{MetricSource, Registry, Scope};
//!
//! struct MyStats { hits: u64, misses: u64 }
//!
//! impl MetricSource for MyStats {
//!     fn export_into(&self, scope: &mut Scope<'_>) {
//!         scope.set_counter("hits", self.hits);
//!         scope.set_counter("misses", self.misses);
//!         scope.set_gauge("hit_rate", self.hits as f64 / (self.hits + self.misses) as f64);
//!     }
//! }
//!
//! let mut reg = Registry::new();
//! reg.collect("cache.l1", &MyStats { hits: 90, misses: 10 });
//! let snap = reg.snapshot(1000);
//! assert_eq!(snap.counter("cache.l1.hits"), Some(90));
//! assert!(snap.to_json().render().contains("\"cache.l1.hit_rate\":0.9"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod csv;
mod instrument;
mod json;
mod registry;
mod snapshot;
mod trace;

pub use instrument::{Counter, Gauge, Histogram, HISTOGRAM_BUCKETS};
pub use json::{JsonError, JsonValue};
pub use registry::{CounterId, GaugeId, HistogramId, MetricSource, MetricValue, Registry, Scope};
pub use snapshot::{metric_json, Snapshot};
pub use trace::TraceBuffer;
