//! A hand-rolled JSON value, writer, and parser — the build is offline,
//! so serde is unavailable. Covers the full JSON grammar; numbers are
//! `f64` (integers round-trip exactly up to 2^53, far beyond any counter
//! this simulator produces in practice).

use std::fmt;

/// A JSON document node.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, JsonValue)>),
}

/// A parse failure with its byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset of the failure.
    pub at: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "JSON error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for JsonError {}

impl JsonValue {
    /// Convenience constructor for an object field list.
    #[must_use]
    pub fn obj(fields: Vec<(&str, JsonValue)>) -> JsonValue {
        JsonValue::Obj(fields.into_iter().map(|(k, v)| (k.to_owned(), v)).collect())
    }

    /// Field lookup on objects.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this node is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String value, if this node is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements, if this node is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[JsonValue]> {
        match self {
            JsonValue::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Serializes to compact JSON text.
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::Num(n) => write_number(*n, out),
            JsonValue::Str(s) => write_string(s, out),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write(out);
                }
                out.push(']');
            }
            JsonValue::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_string(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses JSON text.
    ///
    /// # Errors
    ///
    /// Returns [`JsonError`] on malformed input or trailing garbage.
    pub fn parse(text: &str) -> Result<JsonValue, JsonError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters"));
        }
        Ok(v)
    }
}

fn write_number(n: f64, out: &mut String) {
    if !n.is_finite() {
        // JSON has no NaN/Inf; emit null like other lenient writers.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9.007_199_254_740_992e15 {
        let _ = fmt::write(out, format_args!("{}", n as i64));
    } else {
        let _ = fmt::write(out, format_args!("{n}"));
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = fmt::write(out, format_args!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            at: self.pos,
            message: message.to_owned(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), JsonError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn eat_word(&mut self, word: &str) -> Result<(), JsonError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(())
        } else {
            Err(self.err(&format!("expected `{word}`")))
        }
    }

    fn value(&mut self) -> Result<JsonValue, JsonError> {
        match self.peek() {
            Some(b'n') => self.eat_word("null").map(|()| JsonValue::Null),
            Some(b't') => self.eat_word("true").map(|()| JsonValue::Bool(true)),
            Some(b'f') => self.eat_word("false").map(|()| JsonValue::Bool(false)),
            Some(b'"') => self.string().map(JsonValue::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<JsonValue, JsonError> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(JsonValue::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(JsonValue::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<JsonValue, JsonError> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(JsonValue::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let val = self.value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(JsonValue::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err(self.err("truncated \\u escape"));
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our
                            // writer; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<JsonValue, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|_| JsonError {
            at: start,
            message: "non-UTF-8 bytes in number".to_owned(),
        })?;
        text.parse::<f64>()
            .map(JsonValue::Num)
            .map_err(|_| JsonError {
                at: start,
                message: format!("bad number `{text}`"),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_document() {
        let doc = JsonValue::obj(vec![
            ("name", JsonValue::Str("exp02 \"rowclone\"\n".to_owned())),
            ("speedup", JsonValue::Num(11.25)),
            ("count", JsonValue::Num(100.0)),
            ("ok", JsonValue::Bool(true)),
            ("none", JsonValue::Null),
            (
                "rows",
                JsonValue::Arr(vec![
                    JsonValue::Num(-1.5),
                    JsonValue::Str("a,b".to_owned()),
                    JsonValue::Arr(vec![]),
                    JsonValue::Obj(vec![]),
                ]),
            ),
        ]);
        let text = doc.render();
        let back = JsonValue::parse(&text).expect("parses");
        assert_eq!(back, doc);
        // Integers render without a trailing `.0`.
        assert!(text.contains("\"count\":100"));
    }

    #[test]
    fn parses_whitespace_and_escapes() {
        let v = JsonValue::parse(" { \"a\\u0041\" : [ 1 , 2.5e1 , \"x\\ty\" ] } ").unwrap();
        assert_eq!(
            v.get("aA").unwrap().as_array().unwrap()[1].as_f64(),
            Some(25.0)
        );
        assert_eq!(
            v.get("aA").unwrap().as_array().unwrap()[2].as_str(),
            Some("x\ty")
        );
    }

    #[test]
    fn rejects_garbage() {
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1,]").is_err());
        assert!(JsonValue::parse("12 34").is_err());
        assert!(JsonValue::parse("\"open").is_err());
        assert!(JsonValue::parse("nul").is_err());
    }

    #[test]
    fn nonfinite_numbers_become_null() {
        assert_eq!(JsonValue::Num(f64::NAN).render(), "null");
        assert_eq!(JsonValue::Num(f64::INFINITY).render(), "null");
    }
}
