//! Epoch [`Snapshot`]s of a registry, with delta and merge. Deltas give
//! per-interval rates (row-hit rate per 100k cycles, requests per epoch)
//! — the same windowed view a self-optimizing controller observes.

use std::collections::BTreeMap;

use crate::json::JsonValue;
use crate::registry::MetricValue;

/// An immutable capture of every registered metric at one instant.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Snapshot {
    /// Epoch label, typically the simulated cycle the capture was taken.
    pub at: u64,
    values: BTreeMap<String, MetricValue>,
}

impl Snapshot {
    /// An empty snapshot labelled `at`.
    #[must_use]
    pub fn new(at: u64) -> Self {
        Snapshot {
            at,
            values: BTreeMap::new(),
        }
    }

    /// Builds a snapshot from `(name, value)` pairs.
    pub fn from_iter(at: u64, pairs: impl IntoIterator<Item = (String, MetricValue)>) -> Self {
        Snapshot {
            at,
            values: pairs.into_iter().collect(),
        }
    }

    /// Number of metrics captured.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when nothing was captured.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Looks up a metric.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.values.get(name)
    }

    /// Counter value by name, if the metric is a counter.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.values.get(name) {
            Some(MetricValue::Counter(n)) => Some(*n),
            _ => None,
        }
    }

    /// Gauge value by name, if the metric is a gauge.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<f64> {
        match self.values.get(name) {
            Some(MetricValue::Gauge(g)) => Some(*g),
            _ => None,
        }
    }

    /// Iterates `(name, value)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.values.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// The change since `earlier`: counters and histograms subtract
    /// (saturating — a delta **never underflows**, even against a later
    /// snapshot), gauges keep `self`'s value. Metrics present in only one
    /// operand are kept as-is. The label becomes the epoch length
    /// `self.at - earlier.at` (saturating).
    #[must_use]
    pub fn delta(&self, earlier: &Snapshot) -> Snapshot {
        let mut out = BTreeMap::new();
        for (name, v) in &self.values {
            let dv = match (v, earlier.values.get(name)) {
                (MetricValue::Counter(n), Some(MetricValue::Counter(m))) => {
                    MetricValue::Counter(n.saturating_sub(*m))
                }
                (MetricValue::Histogram(h), Some(MetricValue::Histogram(g))) => {
                    MetricValue::Histogram(h.delta(g))
                }
                // Gauges are instantaneous; mismatched kinds keep `self`.
                (v, _) => v.clone(),
            };
            out.insert(name.clone(), dv);
        }
        Snapshot {
            at: self.at.saturating_sub(earlier.at),
            values: out,
        }
    }

    /// Combines two snapshots: counters add, histograms merge
    /// bucket-wise, gauges take the max. All three combinators are
    /// associative **and commutative**, so reducing any number of
    /// per-worker snapshots gives the same result in any order — the
    /// property a parallel sweep needs for its merged report to be
    /// byte-identical to the serial run (see `ia-par`). The label takes
    /// the max. A name bound to different metric kinds in the two
    /// operands keeps `other`'s value (last-wins) — per-worker
    /// registries built by the same code never hit that case.
    #[must_use]
    pub fn merge(&self, other: &Snapshot) -> Snapshot {
        let mut out = self.values.clone();
        for (name, v) in &other.values {
            match (out.get_mut(name), v) {
                (Some(MetricValue::Counter(a)), MetricValue::Counter(b)) => *a += b,
                (Some(MetricValue::Histogram(a)), MetricValue::Histogram(b)) => a.merge(b),
                (Some(MetricValue::Gauge(a)), MetricValue::Gauge(b)) => *a = a.max(*b),
                (slot, v) => {
                    if let Some(slot) = slot {
                        *slot = v.clone();
                    } else {
                        out.insert(name.clone(), v.clone());
                    }
                }
            }
        }
        Snapshot {
            at: self.at.max(other.at),
            values: out,
        }
    }

    /// Reduces per-worker snapshots into one, folding left in iteration
    /// order. [`merge`](Snapshot::merge) is order-insensitive, so any
    /// fixed order works; callers conventionally pass snapshots in
    /// worker-index order (which `ia_par::par_map` already guarantees
    /// for its output) to make the reduction auditable.
    #[must_use]
    pub fn merge_all(snapshots: impl IntoIterator<Item = Snapshot>) -> Snapshot {
        snapshots
            .into_iter()
            .fold(Snapshot::default(), |acc, s| acc.merge(&s))
    }

    /// Renders as a JSON object `{ "at": n, "metrics": { name: value } }`.
    /// Histograms expand to `{count, sum, max, mean, p50, p95, p99}`.
    #[must_use]
    pub fn to_json(&self) -> JsonValue {
        let metrics = self
            .values
            .iter()
            .map(|(k, v)| (k.clone(), metric_json(v)))
            .collect();
        JsonValue::Obj(vec![
            ("at".to_owned(), JsonValue::Num(self.at as f64)),
            ("metrics".to_owned(), JsonValue::Obj(metrics)),
        ])
    }

    /// Renders as two-column CSV (`metric,value`), histograms flattened to
    /// their summary statistics.
    #[must_use]
    pub fn to_csv(&self) -> String {
        let mut rows: Vec<Vec<String>> = vec![];
        for (name, v) in &self.values {
            match v {
                MetricValue::Counter(n) => rows.push(vec![name.clone(), n.to_string()]),
                MetricValue::Gauge(g) => rows.push(vec![name.clone(), format!("{g}")]),
                MetricValue::Histogram(h) => {
                    rows.push(vec![format!("{name}.count"), h.count().to_string()]);
                    rows.push(vec![format!("{name}.mean"), format!("{}", h.mean())]);
                    rows.push(vec![format!("{name}.p50"), h.p50().to_string()]);
                    rows.push(vec![format!("{name}.p95"), h.p95().to_string()]);
                    rows.push(vec![format!("{name}.p99"), h.p99().to_string()]);
                }
            }
        }
        crate::csv::render(&["metric".to_owned(), "value".to_owned()], &rows)
    }
}

/// JSON encoding for one metric value.
#[must_use]
pub fn metric_json(v: &MetricValue) -> JsonValue {
    match v {
        MetricValue::Counter(n) => JsonValue::Num(*n as f64),
        MetricValue::Gauge(g) => JsonValue::Num(*g),
        MetricValue::Histogram(h) => JsonValue::Obj(vec![
            ("count".to_owned(), JsonValue::Num(h.count() as f64)),
            ("sum".to_owned(), JsonValue::Num(h.sum() as f64)),
            ("max".to_owned(), JsonValue::Num(h.max() as f64)),
            ("mean".to_owned(), JsonValue::Num(h.mean())),
            ("p50".to_owned(), JsonValue::Num(h.p50() as f64)),
            ("p95".to_owned(), JsonValue::Num(h.p95() as f64)),
            ("p99".to_owned(), JsonValue::Num(h.p99() as f64)),
        ]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn snap(at: u64, pairs: &[(&str, u64)]) -> Snapshot {
        Snapshot::from_iter(
            at,
            pairs
                .iter()
                .map(|(k, v)| ((*k).to_owned(), MetricValue::Counter(*v))),
        )
    }

    #[test]
    fn delta_computes_epoch_rates() {
        let a = snap(100_000, &[("reads", 400)]);
        let b = snap(200_000, &[("reads", 1000)]);
        let d = b.delta(&a);
        assert_eq!(d.at, 100_000);
        assert_eq!(d.counter("reads"), Some(600));
    }

    #[test]
    fn delta_saturates_instead_of_underflowing() {
        let big = snap(0, &[("x", 10)]);
        let small = snap(5, &[("x", 3)]);
        let d = small.delta(&big);
        assert_eq!(d.counter("x"), Some(0));
        assert_eq!(d.at, 5);
    }

    #[test]
    fn merge_adds_counters() {
        let m = snap(1, &[("x", 2)]).merge(&snap(9, &[("x", 3), ("y", 1)]));
        assert_eq!(m.counter("x"), Some(5));
        assert_eq!(m.counter("y"), Some(1));
        assert_eq!(m.at, 9);
    }

    #[test]
    fn merge_takes_gauge_max_commutatively() {
        let a = Snapshot::from_iter(1, [("g".to_owned(), MetricValue::Gauge(2.5))]);
        let b = Snapshot::from_iter(2, [("g".to_owned(), MetricValue::Gauge(7.0))]);
        assert_eq!(a.merge(&b).gauge("g"), Some(7.0));
        assert_eq!(b.merge(&a).gauge("g"), Some(7.0));
    }

    #[test]
    fn merge_all_reduces_worker_snapshots_in_order() {
        let workers = vec![
            snap(10, &[("reads", 4)]),
            snap(30, &[("reads", 6), ("writes", 1)]),
            snap(20, &[("writes", 2)]),
        ];
        let m = Snapshot::merge_all(workers);
        assert_eq!(m.counter("reads"), Some(10));
        assert_eq!(m.counter("writes"), Some(3));
        assert_eq!(m.at, 30);
        assert!(Snapshot::merge_all(std::iter::empty()).is_empty());
    }

    #[test]
    fn registry_snapshot_roundtrip() {
        let mut reg = Registry::new();
        let c = reg.counter("a.b");
        reg.inc(c, 4);
        let h = reg.histogram("lat");
        reg.observe(h, 31);
        let s = reg.snapshot(77);
        assert_eq!(s.at, 77);
        assert_eq!(s.counter("a.b"), Some(4));
        let json = s.to_json().render();
        assert!(json.contains("\"a.b\""));
        assert!(json.contains("\"p99\""));
        let csv = s.to_csv();
        assert!(csv.contains("lat.p50,31"));
    }
}
