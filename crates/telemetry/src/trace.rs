//! A bounded ring-buffer [`TraceBuffer`] for command-level event tracing
//! (DRAM command, cycle, bank/row …) with drop counting.
//!
//! The disabled path is one branch on a `bool` — no allocation, no event
//! construction cost when used through [`TraceBuffer::record_with`] — so
//! a trace point can sit inside the per-cycle hot loop.

/// A fixed-capacity ring buffer of trace events.
///
/// When full, the oldest event is overwritten and the drop counter
/// increments; `capacity` bounds memory forever (allocation happens once,
/// at construction).
///
/// # Examples
///
/// ```
/// use ia_telemetry::TraceBuffer;
/// let mut t = TraceBuffer::new(2);
/// t.push((0u64, "ACT"));
/// t.push((5u64, "RD"));
/// t.push((9u64, "PRE")); // overwrites (0, "ACT")
/// assert_eq!(t.dropped(), 1);
/// assert_eq!(t.iter().map(|e| e.1).collect::<Vec<_>>(), ["RD", "PRE"]);
/// ```
#[derive(Debug, Clone)]
pub struct TraceBuffer<T> {
    buf: Vec<T>,
    /// Index of the oldest element once the buffer has wrapped.
    head: usize,
    capacity: usize,
    enabled: bool,
    dropped: u64,
    recorded: u64,
}

impl<T> Default for TraceBuffer<T> {
    fn default() -> Self {
        TraceBuffer::disabled()
    }
}

impl<T> TraceBuffer<T> {
    /// An enabled buffer holding at most `capacity` events.
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        TraceBuffer {
            buf: Vec::with_capacity(capacity),
            head: 0,
            capacity,
            enabled: capacity > 0,
            dropped: 0,
            recorded: 0,
        }
    }

    /// A disabled, zero-capacity buffer: recording is a single branch and
    /// allocates nothing, ever.
    #[must_use]
    pub fn disabled() -> Self {
        TraceBuffer {
            buf: Vec::new(),
            head: 0,
            capacity: 0,
            enabled: false,
            dropped: 0,
            recorded: 0,
        }
    }

    /// Whether events are currently captured. Check this before building
    /// an expensive event by hand; [`TraceBuffer::record_with`] does it
    /// for you.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Pauses / resumes capture (capacity is kept).
    pub fn set_enabled(&mut self, on: bool) {
        self.enabled = on && self.capacity > 0;
    }

    /// Records an already-built event.
    pub fn push(&mut self, event: T) {
        if !self.enabled {
            return;
        }
        if self.buf.len() < self.capacity {
            self.buf.push(event);
        } else {
            self.buf[self.head] = event;
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
        self.recorded += 1;
    }

    /// Records the event produced by `make` — but only calls `make` when
    /// enabled, keeping the disabled path to one branch.
    pub fn record_with(&mut self, make: impl FnOnce() -> T) {
        if self.enabled {
            self.push(make());
        }
    }

    /// Events currently held (≤ capacity).
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when no events are held.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Maximum events held at once.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events overwritten because the buffer was full.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total events ever recorded (held + dropped).
    #[must_use]
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Bytes of heap backing the buffer (test hook: the disabled path
    /// must never allocate).
    #[must_use]
    pub fn heap_capacity(&self) -> usize {
        self.buf.capacity()
    }

    /// Iterates events oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &T> {
        let (wrapped, linear) = self.buf.split_at(self.head.min(self.buf.len()));
        linear.iter().chain(wrapped.iter())
    }

    /// Clears held events (drop/record totals are kept).
    pub fn clear(&mut self) {
        self.buf.clear();
        self.head = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_newest_and_counts_drops() {
        let mut t = TraceBuffer::new(3);
        for i in 0..7u64 {
            t.push(i);
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 4);
        assert_eq!(t.recorded(), 7);
        assert_eq!(t.iter().copied().collect::<Vec<_>>(), vec![4, 5, 6]);
    }

    #[test]
    fn disabled_path_never_allocates() {
        let mut t: TraceBuffer<[u64; 4]> = TraceBuffer::disabled();
        for i in 0..1_000_000u64 {
            t.record_with(|| [i; 4]);
        }
        assert_eq!(t.heap_capacity(), 0, "disabled buffer must not allocate");
        assert_eq!(t.len(), 0);
        assert_eq!(t.recorded(), 0);
        assert!(!t.is_enabled());
    }

    #[test]
    fn enable_disable_toggles_capture() {
        let mut t = TraceBuffer::new(4);
        t.push(1u32);
        t.set_enabled(false);
        t.push(2);
        t.set_enabled(true);
        t.push(3);
        assert_eq!(t.iter().copied().collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn zero_capacity_stays_disabled() {
        let mut t = TraceBuffer::new(0);
        t.set_enabled(true); // cannot enable without capacity
        t.push(9u8);
        assert!(t.is_empty());
        assert!(!t.is_enabled());
    }

    #[test]
    fn iteration_before_wrap_is_in_order() {
        let mut t = TraceBuffer::new(8);
        t.push(1u8);
        t.push(2);
        assert_eq!(t.iter().copied().collect::<Vec<_>>(), vec![1, 2]);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.recorded(), 2);
    }

    #[test]
    fn refill_after_wrap_and_clear_iterates_in_order() {
        let mut t = TraceBuffer::new(3);
        for i in 0..5u64 {
            t.push(i); // wraps: head is mid-buffer
        }
        t.clear();
        assert!(t.is_empty());
        // A refill after clearing a wrapped buffer must start from a
        // reset head, not the stale wrap point.
        for i in 10..15u64 {
            t.push(i);
        }
        assert_eq!(t.iter().copied().collect::<Vec<_>>(), vec![12, 13, 14]);
        assert_eq!(t.recorded(), 10);
        assert_eq!(t.dropped(), 4, "2 before clear + 2 after");
    }

    #[test]
    fn iteration_at_exactly_full_boundary_is_in_order() {
        // Exactly full, head still at 0: the split-at-head iterator must
        // yield all elements once, oldest first, with zero drops.
        let mut t = TraceBuffer::new(4);
        for i in 0..4u64 {
            t.push(i);
        }
        assert_eq!(t.len(), t.capacity());
        assert_eq!(t.dropped(), 0);
        assert_eq!(t.iter().copied().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
        // One more push tips it over: exactly one drop, order preserved.
        t.push(4);
        assert_eq!(t.dropped(), 1);
        assert_eq!(t.iter().copied().collect::<Vec<_>>(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn drop_accounting_survives_disable_and_reenable() {
        let mut t = TraceBuffer::new(2);
        for i in 0..5u64 {
            t.push(i); // 3 drops
        }
        t.set_enabled(false);
        t.push(99); // ignored: neither recorded nor dropped
        assert_eq!(t.recorded(), 5);
        assert_eq!(t.dropped(), 3);
        t.set_enabled(true);
        t.push(6);
        t.push(7);
        assert_eq!(t.recorded(), 7);
        assert_eq!(t.dropped(), 5, "totals keep accumulating after re-enable");
        assert_eq!(t.iter().copied().collect::<Vec<_>>(), vec![6, 7]);
    }
}
