//! The three instrument kinds: [`Counter`], [`Gauge`], and a fixed-bucket
//! log2 [`Histogram`]. All are plain cells — no atomics, no heap
//! allocation, no branches beyond the arithmetic itself — so they are
//! cheap enough to live inside cycle-level hot loops.

/// Number of histogram buckets: bucket 0 holds the value `0`, bucket
/// `k >= 1` holds values in `[2^(k-1), 2^k - 1]`, so 65 buckets cover the
/// whole `u64` domain with no saturation surprises.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A monotonically increasing `u64` event count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// A zeroed counter.
    #[must_use]
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Adds one.
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Adds `n`.
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    #[must_use]
    pub const fn get(&self) -> u64 {
        self.0
    }
}

/// A last-written-wins measurement (queue depth, rate, ratio).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Gauge(f64);

impl Gauge {
    /// A zeroed gauge.
    #[must_use]
    pub const fn new() -> Self {
        Gauge(0.0)
    }

    /// Overwrites the value.
    pub fn set(&mut self, v: f64) {
        self.0 = v;
    }

    /// Current value.
    #[must_use]
    pub const fn get(&self) -> f64 {
        self.0
    }
}

/// A fixed-bucket log2 histogram of `u64` samples with quantile
/// estimation.
///
/// Bucket `k >= 1` covers `[2^(k-1), 2^k - 1]`; bucket 0 covers exactly
/// `{0}`. A quantile is reported as the **upper bound** of the bucket it
/// falls in, so distributions concentrated on values of the form
/// `2^k - 1` are reported exactly. Recording is two array index
/// increments plus three scalar updates: suitable for per-request hot
/// paths.
///
/// # Examples
///
/// ```
/// use ia_telemetry::Histogram;
/// let mut h = Histogram::new();
/// for _ in 0..99 {
///     h.record(7);
/// }
/// h.record(1023);
/// assert_eq!(h.p50(), 7);
/// assert_eq!(h.quantile(0.999), 1023);
/// assert_eq!(h.count(), 100);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    buckets: [u64; HISTOGRAM_BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub const fn new() -> Self {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Bucket index for a sample.
    #[must_use]
    pub const fn bucket_of(value: u64) -> usize {
        if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        }
    }

    /// Upper bound (largest representable sample) of bucket `k`.
    #[must_use]
    pub const fn bucket_upper(k: usize) -> u64 {
        if k == 0 {
            0
        } else if k >= 64 {
            u64::MAX
        } else {
            (1u64 << k) - 1
        }
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        self.buckets[Self::bucket_of(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        if value > self.max {
            self.max = value;
        }
    }

    /// Records the same sample `n` times in O(1) — equivalent to calling
    /// [`Histogram::record`] `n` times. Lets cycle-skipping simulators
    /// account for a span of identical idle-cycle samples in bulk.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.buckets[Self::bucket_of(value)] += n;
        self.count += n;
        self.sum = self.sum.saturating_add(value.saturating_mul(n));
        if value > self.max {
            self.max = value;
        }
    }

    /// Number of recorded samples.
    #[must_use]
    pub const fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded samples (saturating).
    #[must_use]
    pub const fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest recorded sample.
    #[must_use]
    pub const fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded samples, 0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Raw bucket counts.
    #[must_use]
    pub fn buckets(&self) -> &[u64; HISTOGRAM_BUCKETS] {
        &self.buckets
    }

    /// Estimated `q`-quantile (`0.0 ..= 1.0`): the upper bound of the
    /// first bucket at which the cumulative count reaches
    /// `ceil(q * count)`. Returns 0 for an empty histogram. The estimate
    /// never exceeds [`Histogram::max`].
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (k, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Self::bucket_upper(k).min(self.max);
            }
        }
        self.max
    }

    /// Median estimate.
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th-percentile estimate.
    #[must_use]
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th-percentile estimate.
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Merges another histogram into this one (bucket-wise addition).
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Bucket-wise saturating difference `self - earlier`, for epoch
    /// deltas. `count` is recomputed from the subtracted buckets so the
    /// bucket-sum == count invariant holds even when the operands are not
    /// from the same run; `max` keeps the later histogram's value (a
    /// high-water mark cannot be differenced).
    #[must_use]
    pub fn delta(&self, earlier: &Histogram) -> Histogram {
        let mut out = Histogram::new();
        for (o, (a, b)) in out
            .buckets
            .iter_mut()
            .zip(self.buckets.iter().zip(&earlier.buckets))
        {
            *o = a.saturating_sub(*b);
        }
        out.count = out.buckets.iter().sum();
        out.sum = self.sum.saturating_sub(earlier.sum);
        out.max = self.max;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let mut c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let mut g = Gauge::new();
        g.set(2.5);
        assert!((g.get() - 2.5).abs() < f64::EPSILON);
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(Histogram::bucket_of(0), 0);
        assert_eq!(Histogram::bucket_of(1), 1);
        assert_eq!(Histogram::bucket_of(2), 2);
        assert_eq!(Histogram::bucket_of(3), 2);
        assert_eq!(Histogram::bucket_of(4), 3);
        assert_eq!(Histogram::bucket_of(u64::MAX), 64);
        assert_eq!(Histogram::bucket_upper(0), 0);
        assert_eq!(Histogram::bucket_upper(3), 7);
        assert_eq!(Histogram::bucket_upper(64), u64::MAX);
    }

    #[test]
    fn record_n_matches_repeated_record() {
        let mut bulk = Histogram::new();
        let mut loops = Histogram::new();
        for (value, n) in [(0u64, 3u64), (7, 10), (1000, 1), (42, 0)] {
            bulk.record_n(value, n);
            for _ in 0..n {
                loops.record(value);
            }
        }
        assert_eq!(bulk.buckets(), loops.buckets());
        assert_eq!(bulk.count(), loops.count());
        assert_eq!(bulk.sum(), loops.sum());
        assert_eq!(bulk.max(), loops.max());
        assert_eq!(bulk.p50(), loops.p50());
    }

    #[test]
    fn quantiles_exact_on_known_distribution() {
        // 90 samples of 15 (bucket 4), 9 of 255 (bucket 8), 1 of 4095.
        let mut h = Histogram::new();
        for _ in 0..90 {
            h.record(15);
        }
        for _ in 0..9 {
            h.record(255);
        }
        h.record(4095);
        assert_eq!(h.p50(), 15);
        assert_eq!(h.quantile(0.90), 15);
        assert_eq!(h.p95(), 255);
        assert_eq!(h.p99(), 255);
        assert_eq!(h.quantile(1.0), 4095);
        assert_eq!(h.max(), 4095);
        assert_eq!(h.count(), 100);
        assert_eq!(h.sum(), 90 * 15 + 9 * 255 + 4095);
    }

    #[test]
    fn quantile_saturates_at_top_bucket() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 5);
        assert_eq!(h.bucket_count_at(64), 2);
        assert_eq!(h.p50(), u64::MAX);
        assert_eq!(h.quantile(1.0), u64::MAX);
    }

    impl Histogram {
        fn bucket_count_at(&self, k: usize) -> u64 {
            self.buckets[k]
        }
    }

    #[test]
    fn empty_histogram_is_zero() {
        let h = Histogram::new();
        assert_eq!(h.p50(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn quantile_never_exceeds_max() {
        let mut h = Histogram::new();
        h.record(1000); // bucket 10 upper bound is 1023
        assert_eq!(h.quantile(1.0), 1000);
    }

    #[test]
    fn merge_and_delta_roundtrip() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        for v in [1, 7, 100] {
            a.record(v);
        }
        for v in [3, 3000] {
            b.record(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged.count(), 5);
        let back = merged.delta(&a);
        assert_eq!(back.count(), b.count());
        assert_eq!(back.sum(), b.sum());
        assert_eq!(back.buckets(), b.buckets());
    }

    #[test]
    fn delta_never_underflows() {
        let mut small = Histogram::new();
        small.record(4);
        let mut big = Histogram::new();
        for _ in 0..10 {
            big.record(4);
        }
        let d = small.delta(&big);
        assert_eq!(d.count(), 0);
        assert!(d.buckets().iter().all(|&n| n == 0));
    }
}
