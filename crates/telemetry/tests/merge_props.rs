//! Property tests for [`Snapshot::merge`]: the reduction a parallel
//! sweep folds over per-worker registries must be associative and
//! commutative, or merge order would leak into the experiment report
//! and break the `--threads N` byte-identity guarantee.
//!
//! Names are drawn from a fixed pool where each name is permanently
//! bound to one metric kind — exactly the shape per-worker registries
//! built by the same experiment code produce.

use ia_telemetry::{Histogram, MetricValue, Snapshot};
use proptest::prelude::*;

/// One generated metric entry: `(name index, value, histogram extras)`.
type Entry = (u8, u64, u64);

/// Builds a snapshot from generated entries. `name_idx % 3` fixes the
/// kind (counter / gauge / histogram), so a name never changes kind
/// across workers.
fn build(at: u64, entries: &[Entry]) -> Snapshot {
    let mut pairs: Vec<(String, MetricValue)> = Vec::new();
    for &(name_idx, value, extra) in entries {
        let slot = name_idx % 12;
        let (prefix, metric) = match slot % 3 {
            0 => ("counter", MetricValue::Counter(value)),
            1 => ("gauge", MetricValue::Gauge(value as f64)),
            _ => {
                let mut h = Histogram::new();
                h.record(value);
                h.record_n(extra, extra % 5);
                ("hist", MetricValue::Histogram(h))
            }
        };
        pairs.push((format!("{prefix}.{slot}"), metric));
    }
    Snapshot::from_iter(at, pairs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn merge_is_commutative(
        a in prop::collection::vec((0u8..24, 0u64..100_000, 0u64..64), 0..10),
        b in prop::collection::vec((0u8..24, 0u64..100_000, 0u64..64), 0..10),
        (at_a, at_b) in (0u64..1000, 0u64..1000),
    ) {
        let (a, b) = (build(at_a, &a), build(at_b, &b));
        prop_assert_eq!(a.merge(&b), b.merge(&a));
    }

    #[test]
    fn merge_is_associative(
        a in prop::collection::vec((0u8..24, 0u64..100_000, 0u64..64), 0..8),
        b in prop::collection::vec((0u8..24, 0u64..100_000, 0u64..64), 0..8),
        c in prop::collection::vec((0u8..24, 0u64..100_000, 0u64..64), 0..8),
    ) {
        let (a, b, c) = (build(1, &a), build(2, &b), build(3, &c));
        prop_assert_eq!(a.merge(&b).merge(&c), a.merge(&b.merge(&c)));
    }

    #[test]
    fn merge_all_matches_any_pairing(
        workers in prop::collection::vec(
            prop::collection::vec((0u8..24, 0u64..100_000, 0u64..64), 0..6),
            0..6,
        ),
    ) {
        let snaps: Vec<Snapshot> = workers
            .iter()
            .enumerate()
            .map(|(i, w)| build(i as u64, w))
            .collect();
        let folded = Snapshot::merge_all(snaps.clone());
        // Reverse reduction order: identical result.
        let reversed = Snapshot::merge_all(snaps.into_iter().rev());
        prop_assert_eq!(folded, reversed);
    }
}
