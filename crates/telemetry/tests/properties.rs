//! Property-based tests of the telemetry algebra: snapshot delta + merge
//! are associative, never underflow, and histogram quantiles stay within
//! the recorded range.

use ia_telemetry::{Histogram, MetricValue, Registry, Snapshot};
use proptest::prelude::*;

/// Builds a snapshot from generated counters, a gauge, and a histogram.
fn build(at: u64, counters: &[(u8, u64)], gauge: f64, samples: &[u64]) -> Snapshot {
    let mut reg = Registry::new();
    for (slot, v) in counters {
        let id = reg.counter(&format!("c{}", slot % 4));
        reg.inc(id, *v);
    }
    let g = reg.gauge("g");
    reg.set_gauge(g, gauge);
    let h = reg.histogram("h");
    for &s in samples {
        reg.observe(h, s);
    }
    reg.snapshot(at)
}

fn counters_of(s: &Snapshot) -> Vec<(String, u64)> {
    s.iter()
        .filter_map(|(k, v)| match v {
            MetricValue::Counter(n) => Some((k.to_owned(), *n)),
            _ => None,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Merge is associative: (a ⊕ b) ⊕ c == a ⊕ (b ⊕ c).
    #[test]
    fn merge_is_associative(
        ca in prop::collection::vec((0u8..4, 0u64..1_000_000), 0..6),
        cb in prop::collection::vec((0u8..4, 0u64..1_000_000), 0..6),
        cc in prop::collection::vec((0u8..4, 0u64..1_000_000), 0..6),
        sa in prop::collection::vec(0u64..100_000, 0..20),
        sb in prop::collection::vec(0u64..100_000, 0..20),
        sc in prop::collection::vec(0u64..100_000, 0..20),
        ta in 0u64..1000, tb in 0u64..1000, tc in 0u64..1000,
    ) {
        let a = build(ta, &ca, 0.25, &sa);
        let b = build(tb, &cb, 0.50, &sb);
        let c = build(tc, &cc, 0.75, &sc);
        prop_assert_eq!(a.merge(&b).merge(&c), a.merge(&b.merge(&c)));
    }

    /// Delta of a merge against one operand recovers the other operand's
    /// counters (delta is merge's inverse on counters).
    #[test]
    fn delta_inverts_merge_on_counters(
        ca in prop::collection::vec((0u8..4, 0u64..1_000_000), 0..6),
        cb in prop::collection::vec((0u8..4, 0u64..1_000_000), 0..6),
        sa in prop::collection::vec(0u64..100_000, 0..20),
    ) {
        let a = build(10, &ca, 0.1, &sa);
        let b = build(20, &cb, 0.2, &[]);
        let recovered = a.merge(&b).delta(&a);
        for (name, v) in counters_of(&b) {
            prop_assert_eq!(recovered.counter(&name), Some(v), "counter {}", name);
        }
    }

    /// Delta never underflows, even when the "later" snapshot is smaller
    /// in every metric (e.g. snapshots taken from different runs).
    #[test]
    fn delta_never_underflows(
        ca in prop::collection::vec((0u8..4, 0u64..1_000_000), 0..8),
        cb in prop::collection::vec((0u8..4, 0u64..1_000_000), 0..8),
        sa in prop::collection::vec(0u64..100_000, 0..30),
        sb in prop::collection::vec(0u64..100_000, 0..30),
        ta in 0u64..5000, tb in 0u64..5000,
    ) {
        let a = build(ta, &ca, 0.0, &sa);
        let b = build(tb, &cb, 1.0, &sb);
        for (x, y) in [(&a, &b), (&b, &a)] {
            let d = x.delta(y);
            for (name, v) in d.iter() {
                match v {
                    // Counter underflow would wrap to a huge value; the
                    // left-operand bound below catches that.
                    MetricValue::Counter(_) => {}
                    MetricValue::Histogram(h) => {
                        // Bucket-wise non-negative by construction; the
                        // count must equal the bucket sum (consistency).
                        let total: u64 = h.buckets().iter().sum();
                        prop_assert_eq!(total, h.count(), "histogram {} inconsistent", name);
                    }
                    MetricValue::Gauge(_) => {}
                }
            }
            // Counters in the delta never exceed the left operand.
            for (name, v) in counters_of(x) {
                prop_assert!(d.counter(&name).unwrap_or(0) <= v);
            }
        }
    }

    /// Histogram quantiles are monotone in q and bounded by max().
    #[test]
    fn quantiles_are_monotone_and_bounded(
        samples in prop::collection::vec(0u64..1_000_000_000, 1..200),
        qa in 0.0f64..1.0, qb in 0.0f64..1.0,
    ) {
        let mut h = Histogram::new();
        for &s in &samples {
            h.record(s);
        }
        let (lo, hi) = if qa <= qb { (qa, qb) } else { (qb, qa) };
        prop_assert!(h.quantile(lo) <= h.quantile(hi));
        prop_assert!(h.quantile(hi) <= h.max());
        prop_assert_eq!(h.count(), samples.len() as u64);
    }

    /// Histogram merge agrees with recording the concatenated stream.
    #[test]
    fn histogram_merge_matches_concatenation(
        xs in prop::collection::vec(0u64..1_000_000, 0..50),
        ys in prop::collection::vec(0u64..1_000_000, 0..50),
    ) {
        let mut a = Histogram::new();
        for &v in &xs { a.record(v); }
        let mut b = Histogram::new();
        for &v in &ys { b.record(v); }
        a.merge(&b);
        let mut both = Histogram::new();
        for &v in xs.iter().chain(&ys) { both.record(v); }
        prop_assert_eq!(a, both);
    }
}
